"""Benchmark package (enables the relative conftest imports)."""
