"""Backend benchmark: compiled flat-array diagnosis vs the object reference path.

Two modes:

* under pytest (``pytest benchmarks -o python_files='bench_*.py'``) the
  compiled and uncompiled paths are benchmarked on a 12-cube with
  ``pytest-benchmark`` statistics;
* as a script (``PYTHONPATH=src python benchmarks/bench_backend.py``) it
  measures the 14-cube head-to-head the tentpole targets — legacy
  ``TableSyndrome`` + object traversal vs ``ArraySyndrome`` + compiled CSR —
  and writes the result to ``BENCH_e1.json`` at the repository root, seeding
  the performance trajectory for subsequent PRs.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import pytest

from repro.core.diagnosis import GeneralDiagnoser
from repro.core.faults import random_faults
from repro.core.syndrome import generate_syndrome
from repro.networks.registry import compiled_network


def _instance(backend: str):
    cube, _ = compiled_network("hypercube", dimension=12)
    faults = random_faults(cube, 12, seed=12)
    return cube, faults, generate_syndrome(cube, faults, seed=12, backend=backend)


def test_compiled_diagnosis(benchmark):
    cube, faults, syndrome = _instance("array")
    diagnoser = GeneralDiagnoser(cube)

    result = benchmark(diagnoser.diagnose, syndrome)

    assert result.faulty == faults
    benchmark.extra_info["experiment"] = "E1-backend"
    benchmark.extra_info["path"] = "compiled"


def test_uncompiled_diagnosis(benchmark):
    cube, faults, syndrome = _instance("table")
    diagnoser = GeneralDiagnoser(cube, compiled=False)

    result = benchmark(diagnoser.diagnose, syndrome)

    assert result.faulty == faults
    benchmark.extra_info["experiment"] = "E1-backend"
    benchmark.extra_info["path"] = "uncompiled"


def test_array_syndrome_generation(benchmark):
    cube, csr = compiled_network("hypercube", dimension=12)
    faults = random_faults(cube, 12, seed=12)
    from repro.backend import ArraySyndrome

    syndrome = benchmark(ArraySyndrome.from_faults, csr, faults, seed=12)
    assert len(syndrome) == csr.num_pairs


def test_distributed_engine_run(benchmark):
    from repro.distributed import ProtocolEngine, derived_run_stats

    cube, faults, syndrome = _instance("array")
    root = next(v for v in range(cube.num_nodes) if v not in faults)
    engine = ProtocolEngine(cube)

    outcome = benchmark(engine.run_set_builder, syndrome, root)

    legacy = derived_run_stats(cube, syndrome, root)
    assert (outcome.rounds, outcome.messages) == (legacy.rounds, legacy.messages)
    benchmark.extra_info["experiment"] = "E9-engine"
    benchmark.extra_info["path"] = "event-driven"


# ----------------------------------------------------------------- script mode
def _best_of(fn, repetitions: int) -> float:
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_dimension(n: int, *, seed: int = 1, repetitions: int = 5) -> dict:
    """Head-to-head legacy vs compiled diagnosis on ``Q_n`` with ``n`` faults."""
    cube, csr = compiled_network("hypercube", dimension=n)
    faults = random_faults(cube, n, seed=seed)

    table_start = time.perf_counter()
    table = generate_syndrome(cube, faults, seed=seed, full_table=True)
    table_generation_s = time.perf_counter() - table_start

    array_start = time.perf_counter()
    array = generate_syndrome(cube, faults, seed=seed, backend="array")
    array_generation_s = time.perf_counter() - array_start

    legacy = GeneralDiagnoser(cube, compiled=False)
    compiled = GeneralDiagnoser(cube)
    reference = legacy.diagnose(table)
    fast = compiled.diagnose(array)
    assert reference.faulty == fast.faulty == faults
    assert reference.lookups == fast.lookups

    legacy_s = _best_of(lambda: legacy.diagnose(table), max(2, repetitions // 2))
    compiled_s = _best_of(lambda: compiled.diagnose(array), repetitions)
    return {
        "dimension": n,
        "num_nodes": cube.num_nodes,
        "num_faults": len(faults),
        "lookups": fast.lookups,
        "legacy_diagnose_ms": round(legacy_s * 1e3, 3),
        "compiled_diagnose_ms": round(compiled_s * 1e3, 3),
        "diagnose_speedup": round(legacy_s / compiled_s, 2),
        "legacy_syndrome_generation_ms": round(table_generation_s * 1e3, 3),
        "array_syndrome_generation_ms": round(array_generation_s * 1e3, 3),
        "syndrome_generation_speedup": round(table_generation_s / array_generation_s, 1),
    }


def measure_distributed(n: int, *, seed: int = 1, repetitions: int = 5) -> dict:
    """Event-driven engine vs the legacy analytical simulator on ``Q_n``.

    Both produce identical statistics on the default channel (asserted); the
    entry records what actually simulating every message costs relative to
    deriving the counts from one sequential ``Set_Builder`` run.
    """
    from repro.distributed import ProtocolEngine, derived_run_stats

    cube, csr = compiled_network("hypercube", dimension=n)
    faults = random_faults(cube, n, seed=seed)
    syndrome = generate_syndrome(cube, faults, seed=seed, backend="array")
    root = next(v for v in range(cube.num_nodes) if v not in faults)
    engine = ProtocolEngine(csr)

    legacy = derived_run_stats(cube, syndrome, root)
    outcome = engine.run_set_builder(syndrome, root)
    assert (outcome.rounds, outcome.messages, outcome.tree_size) == \
        (legacy.rounds, legacy.messages, legacy.tree_size)

    legacy_s = _best_of(lambda: derived_run_stats(cube, syndrome, root), repetitions)
    engine_s = _best_of(lambda: engine.run_set_builder(syndrome, root), repetitions)
    return {
        "dimension": n,
        "rounds": outcome.rounds,
        "messages": outcome.messages,
        "legacy_simulator_ms": round(legacy_s * 1e3, 3),
        "engine_ms": round(engine_s * 1e3, 3),
        "engine_overhead": round(engine_s / legacy_s, 2),
    }


def main(argv: list[str] | None = None) -> int:
    dimensions = [int(a) for a in (argv or [])] or [12, 14]
    results = [measure_dimension(n) for n in dimensions]
    distributed = measure_distributed(dimensions[-1])
    headline = results[-1]
    payload = {
        "benchmark": "bench_backend",
        "experiment": "E1",
        "description": (
            "GeneralDiagnoser.diagnose head-to-head: object path + dict table "
            "syndrome (pre-backend baseline) vs compiled CSR + flat ArraySyndrome"
        ),
        "target_speedup": 5.0,
        "headline_dimension": headline["dimension"],
        "headline_speedup": headline["diagnose_speedup"],
        "target_met": headline["diagnose_speedup"] >= 5.0,
        "python": sys.version.split()[0],
        "results": results,
        "distributed_engine": {
            "description": (
                "ProtocolEngine.run_set_builder (real event-driven messages) "
                "vs the legacy analytical derivation, identical statistics "
                "asserted on the reliable unit-latency channel"
            ),
            **distributed,
        },
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_e1.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    for row in results:
        print(
            f"Q_{row['dimension']}: legacy {row['legacy_diagnose_ms']:.1f} ms, "
            f"compiled {row['compiled_diagnose_ms']:.1f} ms "
            f"({row['diagnose_speedup']}x); syndrome generation "
            f"{row['syndrome_generation_speedup']}x faster"
        )
    print(
        f"Q_{distributed['dimension']} distributed: engine "
        f"{distributed['engine_ms']:.1f} ms vs derived "
        f"{distributed['legacy_simulator_ms']:.1f} ms "
        f"({distributed['engine_overhead']}x for real messages)"
    )
    print(f"wrote {out}")
    return 0 if payload["target_met"] else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main(sys.argv[1:]))
