"""Backend benchmark: compiled flat-array diagnosis vs the object reference path.

Two modes:

* under pytest (``pytest benchmarks -o python_files='bench_*.py'``) the
  compiled and uncompiled paths are benchmarked on a 12-cube with
  ``pytest-benchmark`` statistics;
* as a script (``PYTHONPATH=src python benchmarks/bench_backend.py``) it
  measures the tracked numbers of ``BENCH_e1.json`` at the repository root:
  the 12/14-cube legacy-vs-compiled head-to-head, the compiled-only frontier
  (Q_16 and Q_18 — the legacy dict-table path is too slow to field there,
  which is itself the datum), the k-ary and star family rows, the distributed
  engine overhead, and the shared-memory sharded-sweep comparison (serial vs
  worker pool vs the old per-worker-recompilation fan-out).

The sharded sweep is measured *first* and its recompilation baseline runs
before the coordinator ever compiles the topology: workers are forked, so a
parent-side compile would be inherited and silently hide the recompilation
cost being measured.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import pytest

from repro.core.diagnosis import GeneralDiagnoser
from repro.core.faults import random_faults
from repro.core.syndrome import generate_syndrome
from repro.networks.registry import compiled_network


def _instance(backend: str):
    cube, _ = compiled_network("hypercube", dimension=12)
    faults = random_faults(cube, 12, seed=12)
    return cube, faults, generate_syndrome(cube, faults, seed=12, backend=backend)


def test_compiled_diagnosis(benchmark):
    cube, faults, syndrome = _instance("array")
    diagnoser = GeneralDiagnoser(cube)

    result = benchmark(diagnoser.diagnose, syndrome)

    assert result.faulty == faults
    benchmark.extra_info["experiment"] = "E1-backend"
    benchmark.extra_info["path"] = "compiled"


def test_uncompiled_diagnosis(benchmark):
    cube, faults, syndrome = _instance("table")
    diagnoser = GeneralDiagnoser(cube, compiled=False)

    result = benchmark(diagnoser.diagnose, syndrome)

    assert result.faulty == faults
    benchmark.extra_info["experiment"] = "E1-backend"
    benchmark.extra_info["path"] = "uncompiled"


def test_array_syndrome_generation(benchmark):
    cube, csr = compiled_network("hypercube", dimension=12)
    faults = random_faults(cube, 12, seed=12)
    from repro.backend import ArraySyndrome

    syndrome = benchmark(ArraySyndrome.from_faults, csr, faults, seed=12)
    assert len(syndrome) == csr.num_pairs


def test_sharded_diagnosis(benchmark):
    from repro.parallel import ShardedSetBuilder

    cube, faults, syndrome = _instance("array")
    sharder = ShardedSetBuilder(cube, num_shards=4)
    diagnoser = GeneralDiagnoser(cube, sharder=sharder)

    result = benchmark(diagnoser.diagnose, syndrome)

    assert result.faulty == faults
    benchmark.extra_info["experiment"] = "E1-sharded"
    benchmark.extra_info["path"] = "sharded-4"


def test_distributed_engine_run(benchmark):
    from repro.distributed import ProtocolEngine, derived_run_stats

    cube, faults, syndrome = _instance("array")
    root = next(v for v in range(cube.num_nodes) if v not in faults)
    engine = ProtocolEngine(cube)

    outcome = benchmark(engine.run_set_builder, syndrome, root)

    legacy = derived_run_stats(cube, syndrome, root)
    assert (outcome.rounds, outcome.messages) == (legacy.rounds, legacy.messages)
    benchmark.extra_info["experiment"] = "E9-engine"
    benchmark.extra_info["path"] = "event-driven"


# ----------------------------------------------------------------- script mode
def _best_of(fn, repetitions: int) -> float:
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_dimension(n: int, *, seed: int = 1, repetitions: int = 5) -> dict:
    """Head-to-head legacy vs compiled diagnosis on ``Q_n`` with ``n`` faults."""
    cube, csr = compiled_network("hypercube", dimension=n)
    faults = random_faults(cube, n, seed=seed)

    table_start = time.perf_counter()
    table = generate_syndrome(cube, faults, seed=seed, full_table=True)
    table_generation_s = time.perf_counter() - table_start

    array_start = time.perf_counter()
    array = generate_syndrome(cube, faults, seed=seed, backend="array")
    array_generation_s = time.perf_counter() - array_start

    legacy = GeneralDiagnoser(cube, compiled=False)
    compiled = GeneralDiagnoser(cube)
    reference = legacy.diagnose(table)
    fast = compiled.diagnose(array)
    assert reference.faulty == fast.faulty == faults
    assert reference.lookups == fast.lookups

    legacy_s = _best_of(lambda: legacy.diagnose(table), max(2, repetitions // 2))
    compiled_s = _best_of(lambda: compiled.diagnose(array), repetitions)
    return {
        "dimension": n,
        "num_nodes": cube.num_nodes,
        "num_faults": len(faults),
        "lookups": fast.lookups,
        "legacy_diagnose_ms": round(legacy_s * 1e3, 3),
        "compiled_diagnose_ms": round(compiled_s * 1e3, 3),
        "diagnose_speedup": round(legacy_s / compiled_s, 2),
        "legacy_syndrome_generation_ms": round(table_generation_s * 1e3, 3),
        "array_syndrome_generation_ms": round(array_generation_s * 1e3, 3),
        "syndrome_generation_speedup": round(table_generation_s / array_generation_s, 1),
    }


def measure_compiled_frontier(n: int, *, seed: int = 1, repetitions: int = 3) -> dict:
    """Compiled-only measurement for dimensions past the legacy path's reach.

    At Q_16+ the pre-backend baseline (dict-table syndrome + object
    traversal) takes minutes just to *generate* its syndrome, so the frontier
    rows track the compiled pipeline alone: one-time compile cost, vectorised
    syndrome generation, and the diagnose hot path.
    """
    from repro.backend import ArraySyndrome
    from repro.networks.registry import create_network

    build_start = time.perf_counter()
    cube = create_network("hypercube", dimension=n)
    from repro.backend.csr import CSRAdjacency

    csr = CSRAdjacency.from_network(cube)
    cube._csr_adjacency = csr
    compile_s = time.perf_counter() - build_start

    faults = random_faults(cube, n, seed=seed)
    generation_s = _best_of(
        lambda: ArraySyndrome.from_faults(csr, faults, seed=seed), repetitions
    )
    syndrome = ArraySyndrome.from_faults(csr, faults, seed=seed)
    diagnoser = GeneralDiagnoser(cube)
    result = diagnoser.diagnose(syndrome)
    assert result.faulty == faults
    diagnose_s = _best_of(lambda: diagnoser.diagnose(syndrome), repetitions)
    return {
        "dimension": n,
        "num_nodes": cube.num_nodes,
        "num_faults": len(faults),
        "lookups": result.lookups,
        "compile_ms": round(compile_s * 1e3, 3),
        "array_syndrome_generation_ms": round(generation_s * 1e3, 3),
        "compiled_diagnose_ms": round(diagnose_s * 1e3, 3),
    }


def _available_memory_gib() -> float:
    """Best-effort MemAvailable in GiB (0.0 when unreadable)."""
    try:
        with open("/proc/meminfo") as handle:
            for line in handle:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) / (1024 * 1024)
    except OSError:
        pass
    return 0.0


def measure_shm_frontier(n: int, *, seed: int = 1) -> dict:
    """``Q_n`` through the pooled shared-memory path, end to end.

    The coordinator compiles ``Q_n`` once (pair members included), publishes
    the topology *and* the syndrome buffer to shared memory, and ships a
    single explicit-syndrome request as one :func:`run_batch_task` — exactly
    the serving path's pooled dispatch.  The worker maps both segments
    zero-copy and runs the stacked kernel; the task's compile/pair-build
    deltas are asserted zero, which is what makes dimensions this size
    practical: a per-worker topology walk + compile at ``Q_20`` costs more
    than the diagnosis itself, and the pair arrays alone are hundreds of MB.

    The response is verified against a coordinator-side
    ``GeneralDiagnoser.diagnose`` run on the same syndrome.
    """
    from repro.backend import ArraySyndrome
    from repro.backend.csr import CSRAdjacency
    from repro.networks.registry import create_network
    from repro.parallel import WorkerPool
    from repro.service.executor import run_batch_task
    from repro.service.requests import DiagnosisRequest

    build_start = time.perf_counter()
    cube = create_network("hypercube", dimension=n)
    csr = CSRAdjacency.from_network(cube)
    cube._csr_adjacency = csr
    csr.pair_members()  # coordinator-side warm-up, published with the topology
    compile_s = time.perf_counter() - build_start

    faults = random_faults(cube, n, seed=seed)
    generation_start = time.perf_counter()
    syndrome = ArraySyndrome.from_faults(csr, faults, seed=seed)
    generation_s = time.perf_counter() - generation_start

    # The syndrome travels out-of-band (the span below), so the request
    # carries no bytes of its own — the wire form the service dispatches.
    params = (("dimension", n),)
    request = DiagnosisRequest(family="hypercube", params=params)
    with WorkerPool(max_workers=1) as pool:
        publish_start = time.perf_counter()
        topology_handle = pool.publish_topology(csr, include_pair_members=True)
        syndrome_handle = pool.publish_buffer(syndrome.values_array)
        publish_s = time.perf_counter() - publish_start
        task_start = time.perf_counter()
        responses, stats = pool.submit(
            run_batch_task, topology_handle, "hypercube", params, [request],
            syndrome_handle, [(0, 0, csr.num_pairs)],
        ).result()
        task_s = time.perf_counter() - task_start
        pool.release(syndrome_handle)

    assert stats["compiles"] == 0, "worker recompiled a published topology"
    assert stats["pair_builds"] == 0, "worker rebuilt published pair arrays"
    assert stats["kernel_width"] == 1
    response = responses[0]
    assert response.error is None, response.error
    assert set(response.faulty) == faults

    reference = GeneralDiagnoser(cube).diagnose(
        ArraySyndrome.from_faults(csr, faults, seed=seed)
    )
    assert set(response.faulty) == reference.faulty
    assert response.healthy_root == reference.healthy_root
    assert response.lookups == reference.lookups
    return {
        "dimension": n,
        "num_nodes": cube.num_nodes,
        "num_pairs": csr.num_pairs,
        "num_faults": len(faults),
        "lookups": response.lookups,
        "compile_ms": round(compile_s * 1e3, 3),
        "array_syndrome_generation_ms": round(generation_s * 1e3, 3),
        "shm_publish_ms": round(publish_s * 1e3, 3),
        "pooled_diagnose_ms": round(task_s * 1e3, 3),
        "worker_compiles": stats["compiles"],
        "worker_pair_builds": stats["pair_builds"],
        "verified_against_direct": True,
    }


#: Family frontier rows: the k-ary and star-family instances tracked
#: alongside the hypercube numbers (labels follow the experiment tables).
FAMILY_FRONTIER: list[tuple[str, str, dict]] = [
    ("Q^8_3", "kary_ncube", {"n": 3, "k": 8}),
    ("Q^16_2", "kary_ncube", {"n": 2, "k": 16}),
    ("S_7", "star", {"n": 7}),
    ("S_7,4", "nk_star", {"n": 7, "k": 4}),
]


def measure_families(*, seed: int = 1, repetitions: int = 3) -> list[dict]:
    """Compiled diagnosis numbers for the k-ary and star family frontier."""
    from repro.backend import ArraySyndrome

    rows = []
    for label, family, params in FAMILY_FRONTIER:
        network, csr = compiled_network(family, **params)
        delta = network.diagnosability()
        faults = random_faults(network, delta, seed=seed)
        generation_s = _best_of(
            lambda: ArraySyndrome.from_faults(csr, faults, seed=seed), repetitions
        )
        syndrome = ArraySyndrome.from_faults(csr, faults, seed=seed)
        diagnoser = GeneralDiagnoser(network)
        result = diagnoser.diagnose(syndrome)
        assert result.faulty == faults
        diagnose_s = _best_of(lambda: diagnoser.diagnose(syndrome), repetitions)
        rows.append({
            "instance": label,
            "family": family,
            "num_nodes": network.num_nodes,
            "num_faults": len(faults),
            "lookups": result.lookups,
            "array_syndrome_generation_ms": round(generation_s * 1e3, 3),
            "compiled_diagnose_ms": round(diagnose_s * 1e3, 3),
        })
    return rows


def measure_sharded_sweep(n: int, *, workers: int = 4, trials: int = 6,
                          base_seed: int = 16) -> dict:
    """A Q_n sweep: serial vs shared-memory pool vs per-worker recompilation.

    Three phases over the identical trial table (results are bit-identical —
    asserted — because every trial self-seeds):

    1. ``respawn``: chunked fan-out with ``share_topology=False``, the old
       cost model — every worker walks and compiles the topology itself.
       Measured first, before this process ever compiles Q_n, because forked
       workers inherit the parent's caches and would otherwise skip the very
       recompilation being measured.
    2. ``serial``: the plain in-process run, measured after one unmeasured
       warm-up pass so one-time costs (compile, pair layout, row
       materialisation) do not bias the serial number upward — forked pool
       workers would inherit that warm state anyway.
    3. ``pool``: chunked fan-out over the shared-memory worker pool — one
       coordinator-side compile, zero worker-side compiles (asserted from the
       per-chunk worker diagnostics).

    The recorded ``speedup_vs_serial`` is honest wall-clock on the current
    machine — ``cpu_count`` is recorded next to it because process-level
    parallelism cannot beat a warm serial run on a single core;
    ``speedup_vs_respawn`` isolates what the persistent shared-memory pool
    buys over the old fan-out at equal worker count, which is visible on any
    core count.
    """
    import dataclasses
    import os

    from repro.experiments.trials import TrialPlan, TrialSpec
    from repro.parallel import WorkerPool

    from repro.backend import csr as csr_backend

    plan = TrialPlan(
        TrialSpec(label=f"Q_{n}", family="hypercube", params=(("dimension", n),),
                  placement="random", fault_count=n, seed=base_seed + i)
        for i in range(trials)
    )

    def norm(results):
        return [dataclasses.replace(r, elapsed_seconds=0.0) for r in results]

    assert csr_backend.compile_count() == 0, (
        "the sharded sweep must run before anything compiles in this process"
    )
    with WorkerPool(max_workers=workers) as pool:
        respawn_start = time.perf_counter()
        respawn_results = plan.run(pool=pool, share_topology=False)
        respawn_s = time.perf_counter() - respawn_start
        respawn_compiles = plan.last_run_stats["worker_compiles"]
    assert respawn_compiles > 0

    plan.run()  # warm-up: compile + pair layout + rows, outside the timing
    serial_start = time.perf_counter()
    serial_results = plan.run()
    serial_s = time.perf_counter() - serial_start

    with WorkerPool(max_workers=workers) as pool:
        pool_start = time.perf_counter()
        pool_results = plan.run(pool=pool)
        pool_s = time.perf_counter() - pool_start
        pool_stats = dict(plan.last_run_stats)

    assert norm(serial_results) == norm(pool_results) == norm(respawn_results)
    assert pool_stats["worker_compiles"] == 0
    assert all(r.exact for r in serial_results)

    speedup_vs_serial = round(serial_s / pool_s, 2)
    return {
        "description": (
            f"Q_{n} sweep, {trials} trials, --workers {workers}: serial vs "
            "persistent shared-memory pool vs the old per-worker-recompilation "
            "fan-out (identical results asserted across all three)"
        ),
        "dimension": n,
        "trials": trials,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 3),
        "pool_s": round(pool_s, 3),
        "respawn_s": round(respawn_s, 3),
        "worker_compiles_pool": pool_stats["worker_compiles"],
        "worker_compiles_respawn": respawn_compiles,
        "chunks": pool_stats["chunks"],
        "speedup_vs_serial": speedup_vs_serial,
        "speedup_vs_respawn": round(respawn_s / pool_s, 2),
        "target_speedup_vs_serial": 2.0,
        "target_met": speedup_vs_serial >= 2.0,
        "note": (
            "speedup_vs_serial needs >= workers physical cores to reach the "
            "target; on fewer cores the pool can only tie a warm serial run, "
            "and speedup_vs_respawn is the meaningful number"
        ),
    }


def measure_distributed(n: int, *, seed: int = 1, repetitions: int = 5) -> dict:
    """Event-driven engine vs the legacy analytical simulator on ``Q_n``.

    Both produce identical statistics on the default channel (asserted); the
    entry records what actually simulating every message costs relative to
    deriving the counts from one sequential ``Set_Builder`` run.
    """
    from repro.distributed import ProtocolEngine, derived_run_stats

    cube, csr = compiled_network("hypercube", dimension=n)
    faults = random_faults(cube, n, seed=seed)
    syndrome = generate_syndrome(cube, faults, seed=seed, backend="array")
    root = next(v for v in range(cube.num_nodes) if v not in faults)
    engine = ProtocolEngine(csr)

    legacy = derived_run_stats(cube, syndrome, root)
    outcome = engine.run_set_builder(syndrome, root)
    assert (outcome.rounds, outcome.messages, outcome.tree_size) == \
        (legacy.rounds, legacy.messages, legacy.tree_size)

    legacy_s = _best_of(lambda: derived_run_stats(cube, syndrome, root), repetitions)
    engine_s = _best_of(lambda: engine.run_set_builder(syndrome, root), repetitions)
    return {
        "dimension": n,
        "rounds": outcome.rounds,
        "messages": outcome.messages,
        "legacy_simulator_ms": round(legacy_s * 1e3, 3),
        "engine_ms": round(engine_s * 1e3, 3),
        "engine_overhead": round(engine_s / legacy_s, 2),
    }


def main(argv: list[str] | None = None) -> int:
    dimensions = [int(a) for a in (argv or [])] or [12, 14]
    reduced = max(dimensions) < 14  # CI smoke: skip the expensive frontier

    # The sharded sweep must come first: its recompilation baseline is only
    # honest while nothing has compiled in this process (see its docstring).
    sharded = measure_sharded_sweep(
        16 if not reduced else max(dimensions),
        workers=4,
        trials=6 if not reduced else 3,
    )
    results = [measure_dimension(n) for n in dimensions]
    frontier = [] if reduced else [measure_compiled_frontier(n) for n in (16, 18)]
    # Q_20 needs the shared-memory path (publishing the pair arrays once
    # instead of rebuilding them per worker); Q_22 only where memory allows —
    # its pair arrays and syndrome buffer run to several GiB.
    shm_dimensions = [] if reduced else [20]
    if not reduced and _available_memory_gib() >= 32.0:
        shm_dimensions.append(22)
    shm_frontier = [measure_shm_frontier(n) for n in shm_dimensions]
    families = [] if reduced else measure_families()
    distributed = measure_distributed(dimensions[-1])
    headline = results[-1]
    payload = {
        "benchmark": "bench_backend",
        "experiment": "E1",
        "description": (
            "GeneralDiagnoser.diagnose head-to-head: object path + dict table "
            "syndrome (pre-backend baseline) vs compiled CSR + flat ArraySyndrome"
        ),
        "target_speedup": 5.0,
        "headline_dimension": headline["dimension"],
        "headline_speedup": headline["diagnose_speedup"],
        "target_met": headline["diagnose_speedup"] >= 5.0,
        "python": sys.version.split()[0],
        "results": results,
        "compiled_frontier": {
            "description": (
                "compiled-only rows past the legacy path's reach (its dict-table "
                "syndrome generation alone takes minutes at Q_16+)"
            ),
            "results": frontier,
        },
        "shm_frontier": {
            "description": (
                "pooled shared-memory rows past the single-process frontier: "
                "topology + pair arrays + syndrome buffer published once, one "
                "run_batch_task per diagnosis, zero worker-side compiles and "
                "pair builds asserted, response verified against a direct "
                "coordinator-side diagnose"
            ),
            "results": shm_frontier,
        },
        "family_frontier": {
            "description": (
                "k-ary and star family instances on the compiled pipeline "
                "(labels follow the experiment tables)"
            ),
            "results": families,
        },
        "sharded_sweep": sharded,
        "distributed_engine": {
            "description": (
                "ProtocolEngine.run_set_builder (real event-driven messages) "
                "vs the legacy analytical derivation, identical statistics "
                "asserted on the reliable unit-latency channel"
            ),
            **distributed,
        },
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_e1.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    for row in results:
        print(
            f"Q_{row['dimension']}: legacy {row['legacy_diagnose_ms']:.1f} ms, "
            f"compiled {row['compiled_diagnose_ms']:.1f} ms "
            f"({row['diagnose_speedup']}x); syndrome generation "
            f"{row['syndrome_generation_speedup']}x faster"
        )
    for row in frontier:
        print(
            f"Q_{row['dimension']} (frontier): compile {row['compile_ms']:.0f} ms, "
            f"syndrome {row['array_syndrome_generation_ms']:.0f} ms, "
            f"diagnose {row['compiled_diagnose_ms']:.0f} ms"
        )
    for row in shm_frontier:
        print(
            f"Q_{row['dimension']} (shm frontier): compile "
            f"{row['compile_ms']:.0f} ms, syndrome "
            f"{row['array_syndrome_generation_ms']:.0f} ms, publish "
            f"{row['shm_publish_ms']:.0f} ms, pooled diagnose "
            f"{row['pooled_diagnose_ms']:.0f} ms "
            f"(worker compiles {row['worker_compiles']}, pair builds "
            f"{row['worker_pair_builds']})"
        )
    for row in families:
        print(
            f"{row['instance']} (N={row['num_nodes']}): diagnose "
            f"{row['compiled_diagnose_ms']:.1f} ms, {row['lookups']} lookups"
        )
    print(
        f"Q_{sharded['dimension']} sweep x{sharded['trials']} with "
        f"--workers {sharded['workers']} (cpu_count {sharded['cpu_count']}): "
        f"serial {sharded['serial_s']:.2f} s, pool {sharded['pool_s']:.2f} s "
        f"({sharded['speedup_vs_serial']}x), respawn baseline "
        f"{sharded['respawn_s']:.2f} s ({sharded['speedup_vs_respawn']}x vs pool); "
        f"worker compiles: pool {sharded['worker_compiles_pool']}, "
        f"respawn {sharded['worker_compiles_respawn']}"
    )
    print(
        f"Q_{distributed['dimension']} distributed: engine "
        f"{distributed['engine_ms']:.1f} ms vs derived "
        f"{distributed['legacy_simulator_ms']:.1f} ms "
        f"({distributed['engine_overhead']}x for real messages)"
    )
    print(f"wrote {out}")
    return 0 if payload["target_met"] else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main(sys.argv[1:]))
