"""Experiment E1 (Theorem 2): exact diagnosis on hypercubes and O(n·2^n) scaling.

Paper claim: for a set of at most ``n`` faults in ``Q_n`` there is an
algorithm running in ``O(n·2^n)`` time that returns exactly the fault set.

The benchmark measures the diagnosis time for ``n = 7 .. 11`` with the maximum
number of faults and verifies (a) exactness on every run and (b) that the
measured times grow no faster than the ``n·2^n`` model (fitted exponent ≈ 1,
recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.core.diagnosis import GeneralDiagnoser
from repro.networks import Hypercube

from .conftest import prepared_instance

DIMENSIONS = [7, 8, 9, 10, 11]


@pytest.mark.parametrize("n", DIMENSIONS)
def test_hypercube_diagnosis_scaling(benchmark, n):
    cube = Hypercube(n)
    faults, syndrome = prepared_instance(cube, seed=n)
    diagnoser = GeneralDiagnoser(cube)

    result = benchmark(diagnoser.diagnose, syndrome)

    assert result.faulty == faults
    benchmark.extra_info["experiment"] = "E1"
    benchmark.extra_info["n"] = n
    benchmark.extra_info["N"] = cube.num_nodes
    benchmark.extra_info["model_n_2n"] = n * 2**n
    benchmark.extra_info["faults"] = len(faults)
    benchmark.extra_info["lookups"] = result.lookups


@pytest.mark.parametrize("behavior", ["all_zero", "mimic"])
def test_hypercube_diagnosis_adversarial_testers(benchmark, behavior):
    """Worst-case faulty-tester behaviours do not change the outcome or the cost class."""
    cube = Hypercube(10)
    faults, syndrome = prepared_instance(cube, seed=3, behavior=behavior)
    diagnoser = GeneralDiagnoser(cube)

    result = benchmark(diagnoser.diagnose, syndrome)

    assert result.faulty == faults
    benchmark.extra_info["experiment"] = "E1"
    benchmark.extra_info["behavior"] = behavior
