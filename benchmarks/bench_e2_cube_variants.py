"""Experiment E2 (Theorem 3): exact diagnosis on the hypercube variants.

Paper claim: for CQ_n, TQ_n, FQ_n, Q_{n,m}, AQ_n, SQ_n and TQ'_n with at most
δ faults (δ = the family's diagnosability) there is an O(n·2^n) algorithm
returning exactly the fault set.  One benchmark per variant, at the maximum
fault count, with exactness asserted.
"""

from __future__ import annotations

import pytest

from repro.core.diagnosis import GeneralDiagnoser
from repro.workloads.sweeps import cube_variant_sweep

from .conftest import prepared_instance

POINTS = {point.label: point for point in cube_variant_sweep(seed=2)}


@pytest.mark.parametrize("label", sorted(POINTS))
def test_cube_variant_diagnosis(benchmark, label):
    point = POINTS[label]
    network = point.network
    faults = point.scenarios[0].faults  # random placement at |F| = δ
    _, syndrome = prepared_instance(network, faults=faults, seed=2)
    diagnoser = GeneralDiagnoser(network)

    result = benchmark(diagnoser.diagnose, syndrome)

    assert result.faulty == faults
    benchmark.extra_info["experiment"] = "E2"
    benchmark.extra_info["variant"] = label
    benchmark.extra_info["N"] = network.num_nodes
    benchmark.extra_info["delta"] = network.diagnosability()
    benchmark.extra_info["lookups"] = result.lookups


@pytest.mark.parametrize("label", ["CQ_10", "AQ_9"])
def test_cube_variant_clustered_faults(benchmark, label):
    """Clustered fault placements (whole sub-cubes knocked out) remain exact."""
    point = POINTS[label]
    network = point.network
    faults = point.scenarios[1].faults  # clustered placement
    _, syndrome = prepared_instance(network, faults=faults, seed=2)
    diagnoser = GeneralDiagnoser(network)

    result = benchmark(diagnoser.diagnose, syndrome)

    assert result.faulty == faults
    benchmark.extra_info["experiment"] = "E2"
    benchmark.extra_info["variant"] = f"{label}-clustered"
