"""Experiment E3 (Theorem 4): k-ary n-cubes and augmented k-ary n-cubes.

Paper claim: at most ``2n`` faults in ``Q^k_n`` (resp. ``4n - 2`` in
``AQ_{n,k}``) are identified exactly by an ``O(n·k^n)`` algorithm.  Each
benchmark diagnoses a maximum-size random fault set; exactness is asserted and
the ``n·k^n`` model value is recorded so EXPERIMENTS.md can report the fitted
scaling shape.
"""

from __future__ import annotations

import pytest

from repro.core.diagnosis import GeneralDiagnoser
from repro.workloads.sweeps import kary_sweep

from .conftest import prepared_instance

POINTS = {point.label: point for point in kary_sweep(seed=5)}


@pytest.mark.parametrize("label", sorted(POINTS))
def test_kary_diagnosis(benchmark, label):
    point = POINTS[label]
    network = point.network
    faults = point.scenarios[0].faults
    _, syndrome = prepared_instance(network, faults=faults, seed=5)
    diagnoser = GeneralDiagnoser(network)

    result = benchmark(diagnoser.diagnose, syndrome)

    assert result.faulty == faults
    benchmark.extra_info["experiment"] = "E3"
    benchmark.extra_info["instance"] = label
    benchmark.extra_info["N"] = network.num_nodes
    benchmark.extra_info["delta"] = network.diagnosability()
    benchmark.extra_info["model_n_kn"] = network.dimension * network.num_nodes
    benchmark.extra_info["lookups"] = result.lookups
