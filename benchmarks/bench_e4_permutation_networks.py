"""Experiment E4 (Theorems 5–7): (n,k)-stars, stars, pancakes, arrangement graphs.

Paper claims:

* Theorem 5 — at most ``n - 1`` faults in ``S_{n,k}`` identified in
  ``O(n!·n / (n-k)!)`` time;
* Theorem 6 — at most ``n - 1`` faults in ``P_n`` identified in ``O(n!·n)``
  time;
* Theorem 7 — at most ``k(n-k)`` faults in ``A_{n,k}`` identified in
  ``O(n!·k(n-k) / (n-k)!)`` time.

Each benchmark diagnoses a maximum-size random fault set and asserts
exactness.  The arrangement-graph instances also exercise the driver's
fallback probing, because the paper's "enough classes" assumption does not
hold there (see EXPERIMENTS.md, Deviations).
"""

from __future__ import annotations

import pytest

from repro.core.diagnosis import GeneralDiagnoser
from repro.workloads.sweeps import permutation_sweep

from .conftest import prepared_instance

POINTS = {point.label: point for point in permutation_sweep(seed=7)}


@pytest.mark.parametrize("label", sorted(POINTS))
def test_permutation_network_diagnosis(benchmark, label):
    point = POINTS[label]
    network = point.network
    faults = point.scenarios[0].faults
    _, syndrome = prepared_instance(network, faults=faults, seed=7)
    diagnoser = GeneralDiagnoser(network)

    result = benchmark(diagnoser.diagnose, syndrome)

    assert result.faulty == faults
    benchmark.extra_info["experiment"] = "E4"
    benchmark.extra_info["instance"] = label
    benchmark.extra_info["N"] = network.num_nodes
    benchmark.extra_info["delta"] = network.diagnosability()
    benchmark.extra_info["model_delta_N"] = network.max_degree * network.num_nodes
    benchmark.extra_info["lookups"] = result.lookups
