"""Experiment E5 (Sections 4.2 and 6): syndrome-lookup accounting.

Paper claims:

* a single ``Set_Builder(u0)`` run consults at most
  ``(Δ - 1)(Δ/2 + |U_r| - 1)`` syndrome entries;
* this is "far less" than the complete syndrome table
  (``Σ_u C(deg(u), 2)`` entries), which algorithms in the style of Chiang &
  Tan must consult.

Each benchmark runs the final (unrestricted) ``Set_Builder`` from a healthy
root, times it, and asserts both halves of the claim.  The measured
lookups-to-table ratio is recorded for EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.analysis import full_table_size, set_builder_lookup_bound
from repro.core.set_builder import set_builder
from repro.networks.registry import create_network

from .conftest import prepared_instance

INSTANCES = {
    "Q_10": ("hypercube", {"dimension": 10}),
    "CQ_10": ("crossed_cube", {"dimension": 10}),
    "AQ_9": ("augmented_cube", {"dimension": 9}),
    "Q^8_3": ("kary_ncube", {"n": 3, "k": 8}),
    "S_7": ("star", {"n": 7}),
    "P_7": ("pancake", {"n": 7}),
    "A_7,3": ("arrangement", {"n": 7, "k": 3}),
}


@pytest.mark.parametrize("label", sorted(INSTANCES))
def test_set_builder_lookup_accounting(benchmark, label):
    family, params = INSTANCES[label]
    network = create_network(family, **params)
    faults, syndrome = prepared_instance(network, seed=13)
    healthy_root = next(v for v in range(network.num_nodes) if v not in faults)
    delta = network.diagnosability()

    def final_run():
        syndrome.reset_lookups()
        return set_builder(network, syndrome, healthy_root, diagnosability=delta)

    result = benchmark(final_run)

    table = full_table_size(network)
    bound = set_builder_lookup_bound(network.max_degree, result.size)
    root_tests = network.max_degree * (network.max_degree - 1) / 2
    # Claim 1: the Section 6 bound (plus the root's own pair scan) holds.
    assert result.lookups <= bound + root_tests
    # Claim 2: far fewer lookups than the full table.
    assert result.lookups < table / 2

    benchmark.extra_info["experiment"] = "E5"
    benchmark.extra_info["instance"] = label
    benchmark.extra_info["lookups"] = result.lookups
    benchmark.extra_info["section6_bound"] = int(bound)
    benchmark.extra_info["full_table"] = table
    benchmark.extra_info["lookup_fraction_of_table"] = round(result.lookups / table, 4)
