"""Experiment E6 (Sections 3 and 6): head-to-head algorithm comparison on hypercubes.

Paper claims:

* the general algorithm matches the ``O(Δ·N)`` time complexity of Chiang &
  Tan's extended-star algorithm and beats Yang's ``O(n²·2^n)`` cycle
  algorithm's bound;
* it consults markedly fewer syndrome-table entries than Chiang & Tan's
  approach (which reads essentially the whole table);
* (Fig. 1 / Fig. 2) the comparator structures — the cycle decomposition and
  the extended stars — are exactly what the baselines build.

For ``Q_8``–``Q_10`` the three diagnosers run on identical syndromes; all must
return the injected fault set, and the recorded lookups demonstrate the
ordering  Stewart ≪ Yang < extended-star ≈ full table.
"""

from __future__ import annotations

import pytest

from repro.baselines import ExtendedStarDiagnoser, YangCycleDiagnoser
from repro.core.diagnosis import GeneralDiagnoser
from repro.core.syndrome import syndrome_table_size
from repro.networks import Hypercube

from .conftest import prepared_instance

DIMENSIONS = [8, 9, 10]


def _prepared(n):
    cube = Hypercube(n)
    faults, syndrome = prepared_instance(cube, seed=17)
    return cube, faults, syndrome


@pytest.mark.parametrize("n", DIMENSIONS)
def test_stewart_general_algorithm(benchmark, n):
    cube, faults, syndrome = _prepared(n)
    diagnoser = GeneralDiagnoser(cube)

    def run():
        syndrome.reset_lookups()
        return diagnoser.diagnose(syndrome)

    result = benchmark(run)
    assert result.faulty == faults
    benchmark.extra_info["experiment"] = "E6"
    benchmark.extra_info["algorithm"] = "stewart"
    benchmark.extra_info["n"] = n
    benchmark.extra_info["lookups"] = result.lookups
    benchmark.extra_info["full_table"] = syndrome_table_size(cube)


@pytest.mark.parametrize("n", DIMENSIONS)
def test_yang_cycle_algorithm(benchmark, n):
    cube, faults, syndrome = _prepared(n)
    diagnoser = YangCycleDiagnoser(cube)

    def run():
        syndrome.reset_lookups()
        return diagnoser.diagnose(syndrome)

    result = benchmark(run)
    assert result.faulty == faults
    benchmark.extra_info["experiment"] = "E6"
    benchmark.extra_info["algorithm"] = "yang"
    benchmark.extra_info["n"] = n
    benchmark.extra_info["lookups"] = result.lookups


@pytest.mark.parametrize("n", DIMENSIONS)
def test_extended_star_algorithm(benchmark, n):
    cube, faults, syndrome = _prepared(n)
    diagnoser = ExtendedStarDiagnoser(cube)

    def run():
        syndrome.reset_lookups()
        return diagnoser.diagnose(syndrome)

    result = benchmark(run)
    assert result.faulty == faults
    benchmark.extra_info["experiment"] = "E6"
    benchmark.extra_info["algorithm"] = "extended_star"
    benchmark.extra_info["n"] = n
    benchmark.extra_info["lookups"] = result.lookups


@pytest.mark.parametrize("n", [9])
def test_lookup_ordering_claim(benchmark, n):
    """Stewart consults far fewer entries than the extended-star comparator."""
    cube, faults, syndrome = _prepared(n)
    stewart = GeneralDiagnoser(cube)
    extended = ExtendedStarDiagnoser(cube)

    def run():
        syndrome.reset_lookups()
        a = stewart.diagnose(syndrome)
        stewart_lookups = syndrome.lookups
        syndrome.reset_lookups()
        b = extended.diagnose(syndrome)
        extended_lookups = syndrome.lookups
        return a, b, stewart_lookups, extended_lookups

    a, b, stewart_lookups, extended_lookups = benchmark(run)
    assert a.faulty == b.faulty == faults
    assert stewart_lookups * 2 < extended_lookups
    benchmark.extra_info["experiment"] = "E6"
    benchmark.extra_info["stewart_lookups"] = stewart_lookups
    benchmark.extra_info["extended_star_lookups"] = extended_lookups
    benchmark.extra_info["full_table"] = syndrome_table_size(cube)
