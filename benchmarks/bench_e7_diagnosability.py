"""Experiment E7 (Section 2 and reference [6]): diagnosability bounds.

Regenerated claims:

* the quoted diagnosability of every Section 5 family equals its degree-based
  value and never exceeds the minimum-degree upper bound;
* the Chang–Lai–Tan–Hsu condition (regular of degree n, connectivity n,
  ≥ 2n + 3 nodes) applies to the zoo instances and yields exactly the quoted
  value;
* the Section 2 witness (N(u) vs N(u) ∪ {u}) is indistinguishable, i.e. the
  bound is tight;
* on a graph small enough for exhaustive search (the Petersen graph) the
  brute-force diagnosability matches the Chang value.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.diagnosability import (
    chang_condition,
    exact_diagnosability,
    indistinguishable_witness,
    min_degree_upper_bound,
)
from repro.diagnosability.search import are_indistinguishable
from repro.networks import ExplicitNetwork
from repro.networks.registry import FAMILIES

ZOO = ["hypercube", "crossed_cube", "folded_hypercube", "augmented_cube",
       "kary_ncube", "star", "pancake", "nk_star", "arrangement"]


@pytest.mark.parametrize("family", ZOO)
def test_chang_condition_reproduces_quoted_diagnosability(benchmark, family):
    spec = FAMILIES[family]
    network = spec.constructor(**spec.small)

    report = benchmark(chang_condition, network)

    quoted = network.diagnosability()
    assert quoted <= min_degree_upper_bound(network)
    if report.applies:
        assert report.implied_diagnosability == quoted
    benchmark.extra_info["experiment"] = "E7"
    benchmark.extra_info["family"] = family
    benchmark.extra_info["quoted_delta"] = quoted
    benchmark.extra_info["chang_applies"] = report.applies


@pytest.mark.parametrize("family", ["hypercube", "star", "kary_ncube"])
def test_min_degree_witness_is_indistinguishable(benchmark, family):
    spec = FAMILIES[family]
    network = spec.constructor(**spec.small)

    def witness_check():
        without, with_center = indistinguishable_witness(network)
        return are_indistinguishable(network, without, with_center)

    assert benchmark(witness_check)
    benchmark.extra_info["experiment"] = "E7"
    benchmark.extra_info["family"] = family


def test_exhaustive_diagnosability_matches_chang_on_petersen(benchmark):
    network = ExplicitNetwork.from_networkx(nx.petersen_graph())
    report = chang_condition(network, connectivity=3)
    assert report.applies and report.implied_diagnosability == 3

    value = benchmark(exact_diagnosability, network)

    assert value == 3
    benchmark.extra_info["experiment"] = "E7"
    benchmark.extra_info["graph"] = "petersen"
    benchmark.extra_info["exact_diagnosability"] = value
