"""Experiment E8 (ablation, DESIGN.md §4.5): partition class size vs. certificate.

The paper chooses the smallest sub-network with more nodes than the
diagnosability (e.g. the minimal ``m`` with ``2^m > n`` for ``Q_m ⊂ Q_n``) and
assumes the restricted ``Set_Builder`` run on a fault-free class reaches the
``all_healthy`` certificate.  The reproduction finds that this class size is
one doubling too small: on a fault-free ``Q_m`` the builder tree has exactly
``2^{m-1}`` internal nodes, so the certificate needs ``2^m > 2n``.

The ablation measures the cost of the three driver configurations:

* ``paper`` — partition probing starting from the paper's level-0 classes
  (the driver escalates automatically when level 0 cannot certify);
* ``exact`` — partition probing starting directly at the minimal certifying
  level (what the paper intended);
* ``no-partition`` — the fallback that skips partitions and probes arbitrary
  nodes with a budgeted unrestricted run.

All three are exact; the timings and probe counts quantify the cost of the
paper's gap.
"""

from __future__ import annotations

import pytest

from repro.core.diagnosis import GeneralDiagnoser
from repro.core.partitions import class_certifies_when_fault_free, minimal_certifying_level
from repro.networks import Hypercube

from .conftest import prepared_instance

DIMENSION = 10


def _diagnoser(mode: str) -> GeneralDiagnoser:
    cube = Hypercube(DIMENSION)
    if mode == "no-partition":
        return GeneralDiagnoser(cube, use_partition=False)
    return GeneralDiagnoser(cube)


@pytest.mark.parametrize("mode", ["paper", "no-partition"])
def test_driver_configuration_cost(benchmark, mode):
    cube = Hypercube(DIMENSION)
    faults, syndrome = prepared_instance(cube, seed=29)
    diagnoser = _diagnoser(mode)

    def run():
        syndrome.reset_lookups()
        return diagnoser.diagnose(syndrome)

    result = benchmark(run)
    assert result.faulty == faults
    benchmark.extra_info["experiment"] = "E8"
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["probes"] = result.num_probes
    benchmark.extra_info["lookups"] = result.lookups


def test_certificate_threshold_table(benchmark):
    """Regenerate the paper-choice-vs-required-size table for Q_7 .. Q_12."""

    def build_table():
        rows = []
        for n in range(7, 13):
            cube = Hypercube(n)
            level0 = cube.partition_scheme(0).first(1)[0]
            rows.append(
                (
                    n,
                    level0.size,
                    class_certifies_when_fault_free(cube, level0),
                    minimal_certifying_level(cube),
                )
            )
        return rows

    rows = benchmark(build_table)

    for n, paper_size, paper_certifies, min_level in rows:
        # The reproduction's finding: the paper's minimal class never
        # certifies, one doubling always does.
        assert paper_size <= 2 * n
        assert not paper_certifies
        assert min_level == 1
    benchmark.extra_info["experiment"] = "E8"
    benchmark.extra_info["rows"] = [list(map(str, row)) for row in rows]
