"""Experiment E9 (the paper's further-research section): distributed self-diagnosis.

Paper claim (qualitative): "a distributed implementation of our algorithm in
hypercubes has a significantly improved time complexity when compared to a
distributed implementation of Chiang and Tan's algorithm."

Both sides now run on the event-driven protocol engine: the paper's protocol
floods real invitations/acceptances and convergecasts reports, the comparator
floods every node's extended-star test data over the same channel model.  The
benchmarks measure the engine on the reliable baseline (where its statistics
provably equal the legacy analytical model) and under message loss with the
ARQ sublayer active.
"""

from __future__ import annotations

import pytest

from repro.core.diagnosis import GeneralDiagnoser
from repro.distributed import ChannelConfig, ProtocolEngine, spread_roots
from repro.networks import Hypercube, KAryNCube

from .conftest import prepared_instance

INSTANCES = {
    "Q_9": Hypercube(9),
    "Q_10": Hypercube(10),
    "Q^8_3": KAryNCube(3, 8),
}


@pytest.mark.parametrize("label", sorted(INSTANCES))
def test_distributed_set_builder(benchmark, label):
    network = INSTANCES[label]
    faults, syndrome = prepared_instance(network, seed=31)
    root = GeneralDiagnoser(network).diagnose(syndrome).healthy_root
    engine = ProtocolEngine(network)

    outcome = benchmark(engine.run_set_builder, syndrome, root)

    assert outcome.faults_found == len(faults)
    gossip = engine.run_gossip(3)
    # The qualitative claim: fewer messages than the extended-star data
    # dissemination, with rounds growing with the diameter rather than N.
    assert outcome.messages < gossip.messages
    benchmark.extra_info["experiment"] = "E9"
    benchmark.extra_info["instance"] = label
    benchmark.extra_info["rounds"] = outcome.rounds
    benchmark.extra_info["messages"] = outcome.messages
    benchmark.extra_info["gossip_rounds"] = gossip.rounds
    benchmark.extra_info["gossip_messages"] = gossip.messages


@pytest.mark.parametrize("label", ["Q_9"])
def test_engine_under_loss(benchmark, label):
    """The ARQ path: 10% loss still terminates and never accuses healthy nodes."""
    network = INSTANCES[label]
    faults, syndrome = prepared_instance(network, seed=31)
    root = GeneralDiagnoser(network).diagnose(syndrome).healthy_root
    engine = ProtocolEngine(
        network, config=ChannelConfig(loss_rate=0.1, seed=31)
    )

    outcome = benchmark(engine.run_set_builder, syndrome, root)

    assert not outcome.faulty - faults
    assert outcome.retries > 0
    benchmark.extra_info["experiment"] = "E9-loss"
    benchmark.extra_info["drops"] = outcome.drops
    benchmark.extra_info["retries"] = outcome.retries


@pytest.mark.parametrize("label", ["Q_10"])
def test_engine_concurrent_roots(benchmark, label):
    """Four concurrent roots: same coverage, depth-limited rounds, merged trees."""
    network = INSTANCES[label]
    faults, syndrome = prepared_instance(network, seed=31)
    healthy = [v for v in range(network.num_nodes) if v not in faults]
    roots = spread_roots(healthy, 4)
    engine = ProtocolEngine(network)

    outcome = benchmark(engine.run_set_builder, syndrome, roots)

    assert outcome.faults_found == len(faults)
    assert sum(outcome.per_root_sizes.values()) == outcome.tree_size
    benchmark.extra_info["experiment"] = "E9-multiroot"
    benchmark.extra_info["rounds"] = outcome.rounds
    benchmark.extra_info["merges"] = outcome.merges
