"""Experiment E9 (the paper's further-research section): distributed self-diagnosis.

Paper claim (qualitative): "a distributed implementation of our algorithm in
hypercubes has a significantly improved time complexity when compared to a
distributed implementation of Chiang and Tan's algorithm."

The benchmark simulates the distributed ``Set_Builder`` (rounds proportional
to the tree depth, messages proportional to the number of edges inside the
healthy region) and compares it against the communication needed merely to
assemble every node's extended-star test data (a radius-3 flood).  Both the
round and the message counts of the distributed general algorithm must come
out lower.
"""

from __future__ import annotations

import pytest

from repro.core.diagnosis import GeneralDiagnoser
from repro.distributed import DistributedSetBuilder, extended_star_gossip_cost
from repro.networks import Hypercube, KAryNCube

from .conftest import prepared_instance

INSTANCES = {
    "Q_9": Hypercube(9),
    "Q_10": Hypercube(10),
    "Q^8_3": KAryNCube(3, 8),
}


@pytest.mark.parametrize("label", sorted(INSTANCES))
def test_distributed_set_builder(benchmark, label):
    network = INSTANCES[label]
    faults, syndrome = prepared_instance(network, seed=31)
    root = GeneralDiagnoser(network).diagnose(syndrome).healthy_root
    simulator = DistributedSetBuilder(network)

    stats = benchmark(simulator.run, syndrome, root)

    assert stats.faults_found == len(faults)
    gossip_rounds, gossip_messages = extended_star_gossip_cost(network, radius=3)
    # The qualitative claim: fewer messages than the extended-star data
    # dissemination, with rounds growing with the diameter rather than N.
    assert stats.messages < gossip_messages
    benchmark.extra_info["experiment"] = "E9"
    benchmark.extra_info["instance"] = label
    benchmark.extra_info["rounds"] = stats.rounds
    benchmark.extra_info["messages"] = stats.messages
    benchmark.extra_info["gossip_rounds"] = gossip_rounds
    benchmark.extra_info["gossip_messages"] = gossip_messages
