#!/usr/bin/env python
"""Serving-layer benchmark: coalesced-batched vs naive one-at-a-time.

Drives the seeded closed-loop load generator (`repro.service.loadgen`)
against three service configurations on the acceptance workload — a mixed
Q_12 / Q_14 / S_7 request stream with repeats:

* **naive** — no coalescing, no topology cache, no store: every request
  resolves (constructs + compiles) its topology from scratch and runs alone,
  the way a fresh CLI invocation serves one request;
* **batched** — the coalescing service with its bounded topology LRU and a
  result store, batches executed in-process;
* **batched_pooled** — the same, with batches dispatched as single
  shared-memory `WorkerPool` tasks (pair members shipped, so workers neither
  compile nor rebuild pair arrays — the reported deltas prove it);
* **batched_http** — the batched service behind the stdlib HTTP/JSON
  frontend (`repro.service.http`), clients driving the real wire path
  (keep-alive connections, JSON bodies) so the transport tax is measured,
  not guessed.

Two further rows gate different properties: **batched_kernel** times one
stacked `diagnose_many` call against the sequential loop, and **fairness**
runs the adversarial multi-tenant mix (hot open-loop burst vs cold
closed-loop tenants under a per-tenant quota) twice, requiring a
byte-identical shed split and 100% cold-tenant completion.

Every batched response is verified bit-identical to the direct
`GeneralDiagnoser` pipeline before any number is recorded.  Results land in
``BENCH_service.json``; the acceptance target is **>= 3x** batched-over-naive
throughput with zero worker-side compiles.

Run with:  PYTHONPATH=src python benchmarks/bench_service.py
(--smoke shrinks the mix for CI and skips the JSON write).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro.service import LoadSpec, ResultStore, run_load_sync
from repro.service.loadgen import DEFAULT_MIX

SMOKE_MIX = (
    ("hypercube", {"dimension": 8}),
    ("star", {"n": 5}),
)


def _mode_entry(name: str, report, *, verified: bool) -> dict:
    stats = report.stats
    return {
        "mode": name,
        "wall_seconds": round(report.wall_seconds, 3),
        "throughput_rps": round(report.throughput_rps, 2),
        "sources": report.source_counts(),
        "errors": report.errors,
        "rejections": report.rejections,
        "verified_bit_identical": verified and report.mismatches == 0,
        "batches": stats["batches"],
        "coalesced_batches": stats["coalesced_batches"],
        "mean_batch_size": stats["mean_batch_size"],
        "worker_compiles": stats["worker_compiles"],
        "worker_pair_builds": stats["worker_pair_builds"],
        "topology_resolutions": stats["topology_cache"]["misses"],
        "store_hits": stats["store_hits"],
        "coalesced_duplicates": stats["coalesced_duplicates"],
        "latency_ms": stats["latency_ms"],
    }


def measure(spec: LoadSpec, *, workers: int, verify: bool) -> list[dict]:
    from repro.parallel import WorkerPool
    from repro.service import (
        BackgroundHttpServer,
        DiagnosisService,
        run_load_http_sync,
    )

    naive = run_load_sync(spec, naive=True, verify=verify)
    batched = run_load_sync(spec, store=ResultStore(), verify=verify)
    with WorkerPool(max_workers=workers) as pool:
        pooled = run_load_sync(spec, pool=pool, store=ResultStore(), verify=verify)
    # The HTTP row serves the identical batched configuration over the wire
    # (store built inside the server's thread: SQLite is thread-affine).
    with BackgroundHttpServer(
        lambda: DiagnosisService(store=ResultStore())
    ) as server:
        http = run_load_http_sync(spec, server.address, verify=verify)
    return [
        _mode_entry("naive", naive, verified=verify),
        _mode_entry("batched", batched, verified=verify),
        _mode_entry("batched_pooled", pooled, verified=verify),
        _mode_entry("batched_http", http, verified=verify),
    ]


def measure_fairness(*, smoke: bool) -> dict:
    """The ``fairness`` row: the adversarial multi-tenant mix.

    One hot tenant bursts open-loop into a per-tenant quota while cold
    tenants trickle closed-loop.  The row runs the identical spec twice and
    records whether the shed splits agreed byte for byte (admission is a
    pure function of submission order) and whether every cold request
    completed while the hot tenant was being shed."""
    from repro.service import FairnessSpec, run_fairness_sync

    spec = FairnessSpec.from_mix(
        SMOKE_MIX if smoke else DEFAULT_MIX,
        hot_requests=16 if smoke else 48,
        cold_tenants=3 if smoke else 6,
        cold_requests_per_tenant=3 if smoke else 6,
        max_queue_per_tenant=4,
        seed=0,
        seed_pool=64,  # distinct syndromes: no coalescing shortcut softens the burst
    )
    report = run_fairness_sync(spec)
    repeat = run_fairness_sync(spec)
    first = json.dumps(report.split(), sort_keys=True)
    second = json.dumps(repeat.split(), sort_keys=True)
    return {
        "mode": "fairness",
        "hot_requests": spec.hot_requests,
        "hot_served": report.hot_served,
        "hot_shed": report.hot_shed,
        "cold_tenants": spec.cold_tenants,
        "cold_requests": sum(report.cold_expected.values()),
        "cold_completion": report.cold_completion,
        "max_queue_per_tenant": spec.max_queue_per_tenant,
        "wall_seconds": round(report.wall_seconds, 3),
        "shed_split_deterministic": first == second,
        "hot_shed_under_pressure": report.hot_shed > 0,
        "cold_never_shed": report.cold_completion == 1.0,
    }


def measure_kernel(*, smoke: bool) -> dict:
    """The ``batched_kernel`` row: one stacked ``diagnose_many`` call vs the
    sequential per-request ``diagnose`` loop the serving path used before
    the kernel existed.  Syndromes are built outside the timed region (both
    modes pay that identically); the stacked call runs in the service's
    light mode (no healthy-set materialisation — responses only carry the
    accusation set and counters).  Outcomes are verified bit-identical on
    accusations, root, probes, partition level and lookup count before any
    time is recorded."""
    import time

    from repro.backend.array_syndrome import ArraySyndrome
    from repro.core.diagnosis import GeneralDiagnoser
    from repro.core.faults import random_faults
    from repro.networks.registry import compiled_network

    family, params = "hypercube", {"dimension": 8 if smoke else 14}
    width, repeats = 16, 3
    network, csr = compiled_network(family, **params)
    diagnoser = GeneralDiagnoser(network)
    delta = network.diagnosability()
    syndromes = [
        ArraySyndrome.from_faults(
            csr, random_faults(network, delta, seed=seed), seed=seed
        )
        for seed in range(width)
    ]

    references = [diagnoser.diagnose(s) for s in syndromes]
    stacked = diagnoser.diagnose_many(syndromes, include_sets=False)
    identical = all(
        out.faulty == ref.faulty
        and out.healthy_root == ref.healthy_root
        and out.probes == ref.probes
        and out.partition_level == ref.partition_level
        and out.lookups == ref.lookups
        for out, ref in zip(stacked, references)
    )

    sequential_best = stacked_best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for syndrome in syndromes:
            diagnoser.diagnose(syndrome)
        sequential_best = min(sequential_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        diagnoser.diagnose_many(syndromes, include_sets=False)
        stacked_best = min(stacked_best, time.perf_counter() - t0)

    return {
        "mode": "batched_kernel",
        "family": family,
        "params": params,
        "num_nodes": network.num_nodes,
        "batch_width": width,
        "repeats": repeats,
        "sequential_seconds": round(sequential_best, 4),
        "stacked_seconds": round(stacked_best, 4),
        "sequential_rps": round(width / sequential_best, 2),
        "stacked_rps": round(width / stacked_best, 2),
        "kernel_speedup": round(sequential_best / stacked_best, 2),
        "verified_bit_identical": identical,
    }


def measure_width_curve() -> list[dict]:
    """Throughput vs stacked-kernel width on the acceptance mix.

    Every row serves the same number of requests (64) over the full
    Q_12/Q_14/S_7 mix with ``width`` concurrent clients and
    ``max_batch_size=width``; a large seed pool keeps the requests distinct,
    so no store or coalesced-duplicate shortcut flatters wider batches —
    the curve isolates kernel-width amortisation.  Every row is verified
    bit-identical against the direct pipeline."""
    curve = []
    for width in (1, 4, 16, 64):
        spec = LoadSpec.from_mix(
            DEFAULT_MIX,
            clients=width,
            requests_per_client=max(1, 64 // width),
            seed=0,
            seed_pool=64,
        )
        report = run_load_sync(spec, max_batch_size=width, verify=True)
        stats = report.stats
        curve.append(
            {
                "width": width,
                "total_requests": spec.total_requests,
                "wall_seconds": round(report.wall_seconds, 3),
                "throughput_rps": round(report.throughput_rps, 2),
                "batches": stats["batches"],
                "mean_batch_size": stats["mean_batch_size"],
                "worker_compiles": stats["worker_compiles"],
                "worker_pair_builds": stats["worker_pair_builds"],
                "verified_bit_identical": report.mismatches == 0,
            }
        )
    return curve


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    mix = SMOKE_MIX if smoke else DEFAULT_MIX
    spec = LoadSpec.from_mix(
        mix,
        clients=4,
        requests_per_client=4 if smoke else 6,
        seed=0,
        seed_pool=4,
    )
    # Smoke runs verify too — it is the cheap part; what --smoke cuts is the
    # Q_14-sized topology work.
    modes = measure(spec, workers=2, verify=True)
    kernel = measure_kernel(smoke=smoke)
    modes.append(kernel)
    fairness = measure_fairness(smoke=smoke)
    modes.append(fairness)
    by_name = {entry["mode"]: entry for entry in modes}
    speedup = round(
        by_name["batched"]["throughput_rps"]
        / max(by_name["naive"]["throughput_rps"], 1e-9),
        2,
    )
    pooled_speedup = round(
        by_name["batched_pooled"]["throughput_rps"]
        / max(by_name["naive"]["throughput_rps"], 1e-9),
        2,
    )
    http_speedup = round(
        by_name["batched_http"]["throughput_rps"]
        / max(by_name["naive"]["throughput_rps"], 1e-9),
        2,
    )
    http_transport_tax = round(
        1.0
        - by_name["batched_http"]["throughput_rps"]
        / max(by_name["batched"]["throughput_rps"], 1e-9),
        3,
    )
    width_curve = [] if smoke else measure_width_curve()
    payload = {
        "benchmark": "bench_service",
        "description": (
            "closed-loop load generation against the diagnosis service: "
            "coalesced-batched serving (bounded topology LRU + result store, "
            "in-process and worker-pool batch dispatch) vs naive "
            "one-at-a-time serving that resolves every request from scratch"
        ),
        "workload": {
            "mix": [
                {"family": family, "params": dict(params)} for family, params in mix
            ],
            "clients": spec.clients,
            "requests_per_client": spec.requests_per_client,
            "total_requests": spec.total_requests,
            "seed": spec.seed,
            "seed_pool": spec.seed_pool,
        },
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "results": modes,
        "batched_speedup_vs_naive": speedup,
        "pooled_speedup_vs_naive": pooled_speedup,
        "http_speedup_vs_naive": http_speedup,
        "http_transport_tax": http_transport_tax,
        "batch_width_curve": width_curve,
        "kernel_speedup_at_width_16": kernel["kernel_speedup"],
        "kernel_target_speedup": 3.0,
        "kernel_target_met": kernel["kernel_speedup"] >= 3.0,
        "fairness_ok": (
            fairness["shed_split_deterministic"]
            and fairness["hot_shed_under_pressure"]
            and fairness["cold_never_shed"]
        ),
        "target_speedup": 3.0,
        "target_met": speedup >= 3.0,
        "zero_recompilation": (
            by_name["batched"]["worker_compiles"] == 0
            and by_name["batched"]["worker_pair_builds"] == 0
            and by_name["batched_pooled"]["worker_compiles"] == 0
            and by_name["batched_pooled"]["worker_pair_builds"] == 0
        ),
        "all_modes_bit_identical": all(
            entry["verified_bit_identical"]
            for entry in modes
            if "verified_bit_identical" in entry  # fairness gates differently
        ),
        "note": (
            "naive topology_resolutions equals its request count (every "
            "request compiles afresh); batched resolves each distinct "
            "topology once and serves repeats from the store or an "
            "in-flight batch"
        ),
    }
    for entry in modes:
        if entry["mode"] in ("batched_kernel", "fairness"):
            continue  # printed separately below (different shapes)
        print(
            f"{entry['mode']:>15}: {entry['throughput_rps']:>8} req/s "
            f"({entry['wall_seconds']} s, {entry['batches']} batches, "
            f"compiles {entry['topology_resolutions']}, "
            f"worker compiles {entry['worker_compiles']}, "
            f"store hits {entry['store_hits']}, "
            f"bit-identical {entry['verified_bit_identical']})"
        )
    print(
        f"{'batched_kernel':>15}: {kernel['stacked_rps']:>8} req/s stacked vs "
        f"{kernel['sequential_rps']} sequential on Q_{kernel['params']['dimension']} "
        f"at width {kernel['batch_width']} -> {kernel['kernel_speedup']}x "
        f"(bit-identical {kernel['verified_bit_identical']})"
    )
    print(
        f"{'fairness':>15}: hot {fairness['hot_served']}/"
        f"{fairness['hot_requests']} served, {fairness['hot_shed']} shed "
        f"(quota {fairness['max_queue_per_tenant']}); cold completion "
        f"{fairness['cold_completion']:.0%}, split deterministic "
        f"{fairness['shed_split_deterministic']}"
    )
    for row in width_curve:
        print(
            f"  width {row['width']:>2}: {row['throughput_rps']:>8} req/s "
            f"({row['batches']} batches, mean width {row['mean_batch_size']}, "
            f"bit-identical {row['verified_bit_identical']})"
        )
    print(
        f"batched vs naive: {speedup}x (pooled {pooled_speedup}x, "
        f"http {http_speedup}x, transport tax {http_transport_tax:.1%}); "
        f"target >= 3.0x -> {'met' if payload['target_met'] else 'MISSED'}"
    )
    if smoke:
        # The smoke mix is too small for compile amortisation to dominate;
        # it gates on correctness and the zero-recompilation evidence only
        # (the kernel row's bit-identical check included).
        ok = (
            payload["all_modes_bit_identical"]
            and payload["zero_recompilation"]
            and kernel["verified_bit_identical"]
            and payload["fairness_ok"]
        )
        return 0 if ok else 1
    out = Path(__file__).resolve().parent.parent / "BENCH_service.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    ok = (
        payload["target_met"]
        and payload["kernel_target_met"]
        and payload["fairness_ok"]
        and payload["all_modes_bit_identical"]
        and all(row["verified_bit_identical"] for row in width_curve)
    )
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
