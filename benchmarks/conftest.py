"""Shared helpers for the benchmark harness.

Every benchmark measures the diagnosis step only: the syndrome is fully
materialised beforehand, which matches the paper's setting ("the syndrome has
already been obtained") and makes the comparison across algorithms fair (all
of them read from the same O(1)-lookup store).  The default realisation is
the flat-array backend (:class:`repro.backend.array_syndrome.ArraySyndrome`);
pass ``backend="table"`` for the dict-backed table the pre-backend code used.
"""

from __future__ import annotations

import pytest

from repro.core.faults import random_faults
from repro.core.syndrome import Syndrome, generate_syndrome
from repro.networks.base import InterconnectionNetwork

_syndrome_cache: dict = {}


def prepared_instance(
    network: InterconnectionNetwork,
    *,
    faults: frozenset[int] | None = None,
    fault_count: int | None = None,
    seed: int = 0,
    behavior: str = "random",
    backend: str = "array",
) -> tuple[frozenset[int], Syndrome]:
    """Inject faults and materialise the full syndrome (cached per call site)."""
    if faults is None:
        delta = network.diagnosability()
        count = delta if fault_count is None else fault_count
        faults = random_faults(network, count, seed=seed)
    key = (id(network), faults, seed, behavior, backend)
    if key not in _syndrome_cache:
        _syndrome_cache[key] = generate_syndrome(
            network, faults, behavior=behavior, seed=seed, backend=backend
        )
    return faults, _syndrome_cache[key]


@pytest.fixture
def prepare():
    return prepared_instance
