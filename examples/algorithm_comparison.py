#!/usr/bin/env python
"""Comparison of the paper's algorithm with the Section 3 alternatives.

On identical hypercube syndromes this script runs

* the paper's general algorithm (Set_Builder + partition probing),
* Yang's cycle-decomposition algorithm [27] (hypercube-specific), and
* an extended-star local diagnoser in the spirit of Chiang & Tan [8],

and reports wall-clock time and — the paper's Section 6 argument — how many
syndrome-table entries each one needs to consult.

Run with:  python examples/algorithm_comparison.py
"""

from __future__ import annotations

import time

from repro import GeneralDiagnoser, Hypercube, generate_syndrome, random_faults
from repro.analysis import format_table
from repro.baselines import ExtendedStarDiagnoser, YangCycleDiagnoser
from repro.core.syndrome import syndrome_table_size


def timed(callable_, *args):
    start = time.perf_counter()
    result = callable_(*args)
    return result, time.perf_counter() - start


def main() -> None:
    rows = []
    for n in (8, 9, 10):
        cube = Hypercube(n)
        faults = random_faults(cube, n, seed=5)
        table = syndrome_table_size(cube)

        algorithms = {
            "Stewart (this paper)": lambda s: GeneralDiagnoser(cube).diagnose(s).faulty,
            "Yang cycles [27]": lambda s: YangCycleDiagnoser(cube).diagnose(s).faulty,
            "extended star [8]": lambda s: ExtendedStarDiagnoser(cube).diagnose(s).faulty,
        }
        for name, run in algorithms.items():
            syndrome = generate_syndrome(cube, faults, seed=5, full_table=True)
            diagnosed, elapsed = timed(run, syndrome)
            rows.append(
                (
                    f"Q_{n}",
                    name,
                    diagnosed == faults,
                    syndrome.lookups,
                    table,
                    f"{100 * syndrome.lookups / table:.1f}%",
                    f"{elapsed * 1e3:.1f}",
                )
            )
    print(format_table(
        ["network", "algorithm", "exact", "lookups", "full table", "table read", "ms"],
        rows,
        title="Section 6 comparison: identical syndromes, |F| = n faults",
    ))
    print("\nAll three are exact; the paper's algorithm reads a small fraction of the")
    print("syndrome table, whereas the per-node extended-star rule reads most of it.")


if __name__ == "__main__":
    main()
