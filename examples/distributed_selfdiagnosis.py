#!/usr/bin/env python
"""Distributed self-diagnosis (the paper's further-research direction).

The paper closes by arguing that the fault-free communication system of the
multiprocessor should run the diagnosis itself, and that a distributed form of
its algorithm beats a distributed form of Chiang & Tan's.  This example
simulates both communication patterns on hypercubes of growing dimension:

* the distributed ``Set_Builder`` flood (invitations + acceptances +
  convergecast) started from the certified healthy root, and
* the radius-3 gossip every node would need just to assemble its extended-star
  test data before Chiang & Tan's local rule could run.

Run with:  python examples/distributed_selfdiagnosis.py
"""

from __future__ import annotations

from repro import GeneralDiagnoser, Hypercube, generate_syndrome, random_faults
from repro.analysis import format_table
from repro.distributed import DistributedSetBuilder, extended_star_gossip_cost


def main() -> None:
    rows = []
    for n in (8, 9, 10, 11):
        cube = Hypercube(n)
        faults = random_faults(cube, n, seed=3)
        syndrome = generate_syndrome(cube, faults, seed=3)
        root = GeneralDiagnoser(cube).diagnose(syndrome).healthy_root

        stats = DistributedSetBuilder(cube).run(syndrome, root)
        gossip_rounds, gossip_messages = extended_star_gossip_cost(cube, radius=3)

        rows.append(
            (
                f"Q_{n}",
                stats.rounds,
                stats.messages,
                gossip_rounds,
                gossip_messages,
                f"{gossip_messages / stats.messages:.1f}x",
                stats.faults_found == len(faults),
            )
        )
    print(format_table(
        ["network", "SB rounds", "SB messages", "gossip rounds", "gossip messages",
         "message ratio", "faults found"],
        rows,
        title="Distributed Set_Builder vs extended-star data dissemination",
    ))
    print("\nRounds grow with the tree depth (≈ the diameter) rather than with N, and the")
    print("message count stays well below the per-node extended-star dissemination cost —")
    print("the qualitative claim of the paper's concluding section.")


if __name__ == "__main__":
    main()
