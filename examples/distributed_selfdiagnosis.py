#!/usr/bin/env python
"""Distributed self-diagnosis (the paper's further-research direction).

The paper closes by arguing that the fault-free communication system of the
multiprocessor should run the diagnosis itself.  This example drives the
*event-driven protocol engine* (`repro.distributed.engine`) — real
invitation/acceptance/convergecast messages through a channel model — rather
than the legacy analytical cost model, and exercises the two modes the
engine adds beyond the paper's sketch:

* **concurrent roots**: several known-healthy nodes flood simultaneously and
  their trees merge, trading extra messages for fewer rounds;
* **lossy channels**: every transmission is dropped with some probability
  and the bounded ARQ sublayer retransmits — the run still terminates and
  still never accuses a healthy node.

Each row is compared against the radius-3 gossip every node would need just
to assemble its extended-star test data before Chiang & Tan's local rule
could run, measured on the *same* channel.

Run with:  PYTHONPATH=src python examples/distributed_selfdiagnosis.py
"""

from __future__ import annotations

from repro import Hypercube, random_faults
from repro.analysis import format_table
from repro.backend.array_syndrome import ArraySyndrome
from repro.backend.csr import compile_network
from repro.distributed import ChannelConfig, ProtocolEngine, spread_roots

SEED = 3
GOSSIP_RADIUS = 3


def run_row(dimension: int, *, roots: int, loss_rate: float) -> tuple:
    cube = Hypercube(dimension)
    csr = compile_network(cube)
    faults = random_faults(cube, dimension, seed=SEED)
    syndrome = ArraySyndrome.from_faults(csr, faults, seed=SEED)
    healthy = [v for v in range(cube.num_nodes) if v not in faults]

    config = ChannelConfig(loss_rate=loss_rate, seed=SEED)
    engine = ProtocolEngine(csr, config=config)
    outcome = engine.run_set_builder(syndrome, spread_roots(healthy, roots))
    gossip = engine.run_gossip(GOSSIP_RADIUS)

    false_positives = len(outcome.faulty - faults)
    return (
        f"Q_{dimension}",
        roots,
        f"{loss_rate:.0%}",
        outcome.rounds,
        outcome.messages,
        outcome.retries,
        outcome.merges,
        gossip.messages,
        f"{gossip.messages / outcome.messages:.1f}x",
        outcome.faults_found == len(faults) and false_positives == 0,
        false_positives == 0,
    )


def main() -> None:
    rows = []
    for dimension in (8, 9, 10):
        # The paper's single-root reliable baseline, then the engine's
        # extensions: three concurrent roots, then a 10% lossy channel.
        rows.append(run_row(dimension, roots=1, loss_rate=0.0))
        rows.append(run_row(dimension, roots=3, loss_rate=0.0))
        rows.append(run_row(dimension, roots=1, loss_rate=0.10))
    print(format_table(
        ["network", "roots", "loss", "rounds", "messages", "retries", "merges",
         "gossip msgs", "ratio", "exact", "no false acc."],
        rows,
        title="Protocol engine: multi-root and lossy runs vs extended-star gossip",
    ))
    print("\nMulti-root floods cut rounds (trees grow in parallel, then merge) at a")
    print("modest message premium; loss triggers ARQ retries and can shrink the grown")
    print("tree, but accusations stay sound — a node's boundary candidates come from")
    print("its local tests, so no healthy node is ever accused.  The message count")
    print("stays far below the per-node extended-star dissemination on every channel —")
    print("the qualitative claim of the paper's concluding section, now measured on")
    print("real messages.")


if __name__ == "__main__":
    main()
