#!/usr/bin/env python
"""Quickstart: diagnose faulty processors in a hypercube multiprocessor.

The scenario of the paper's introduction: a distributed-memory multiprocessor
whose interconnection network is the 10-dimensional hypercube is known to
contain some faulty processors.  Every processor has compared the replies of
each pair of its neighbours (the MM model); from that syndrome alone the
general algorithm recovers exactly the faulty set.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    GeneralDiagnoser,
    Hypercube,
    generate_syndrome,
    random_faults,
    syndrome_table_size,
)


def main() -> None:
    # 1. The interconnection network: Q_10 (1024 processors, 10-regular).
    cube = Hypercube(10)
    delta = cube.diagnosability()
    print(f"network            : Q_10 with {cube.num_nodes} nodes, degree {cube.max_degree}")
    print(f"diagnosability δ   : {delta} (Wang 1999, quoted by the paper)")

    # 2. Some processors fail (at most δ of them — the paper's precondition).
    faults = random_faults(cube, delta, seed=2024)
    print(f"actual faults      : {sorted(faults)}")

    # 3. The system runs its comparison tests; faulty testers answer arbitrarily.
    syndrome = generate_syndrome(cube, faults, behavior="random", seed=2024)

    # 4. Diagnose from the syndrome alone.
    diagnoser = GeneralDiagnoser(cube)
    result = diagnoser.diagnose(syndrome)

    print(f"diagnosed faults   : {sorted(result.faulty)}")
    print(f"diagnosis correct  : {result.faulty == faults}")
    print(f"certified root     : node {result.healthy_root} "
          f"(healthy tree of {len(result.healthy_nodes)} nodes)")
    print(f"probes performed   : {result.num_probes}")
    print(f"syndrome lookups   : {result.lookups} "
          f"(complete table would be {syndrome_table_size(cube)} entries)")
    print(f"elapsed            : {result.elapsed_seconds * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
