#!/usr/bin/env python
"""Survey: the general algorithm across the paper's entire topology zoo.

Reproduces, in one run, the breadth claim of Section 5: the same algorithm —
with only the partition scheme changing per family — exactly diagnoses
maximum-size fault sets on hypercubes, crossed/twisted/folded/enhanced/
augmented/shuffle cubes, twisted N-cubes, k-ary and augmented k-ary n-cubes,
(n,k)-stars, stars, pancake graphs and arrangement graphs.

Run with:  python examples/topology_zoo_survey.py
"""

from __future__ import annotations

from repro import GeneralDiagnoser, generate_syndrome, random_faults, syndrome_table_size
from repro.analysis import format_table
from repro.networks import FAMILIES


def main() -> None:
    rows = []
    for name, spec in sorted(FAMILIES.items()):
        network = spec.constructor(**spec.medium)
        delta = network.diagnosability()
        faults = random_faults(network, delta, seed=99)
        syndrome = generate_syndrome(network, faults, behavior="random", seed=99)
        result = GeneralDiagnoser(network).diagnose(syndrome)
        rows.append(
            (
                name,
                spec.paper_theorem,
                network.num_nodes,
                network.max_degree,
                delta,
                result.faulty == faults,
                result.lookups,
                syndrome_table_size(network),
                f"{result.elapsed_seconds * 1e3:.1f}",
            )
        )
    print(format_table(
        ["family", "paper", "N", "Δ", "δ", "exact", "lookups", "full table", "ms"],
        rows,
        title="The paper's Section 5 families, |F| = δ random faults, medium instances",
    ))


if __name__ == "__main__":
    main()
