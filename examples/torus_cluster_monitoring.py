#!/usr/bin/env python
"""Fault monitoring of a 3D-torus compute cluster (k-ary n-cube).

A realistic deployment of the paper's Theorem 4: a cluster whose nodes are
wired as an 8-ary 3-cube (512 nodes, as in torus-interconnect machines).
Failures arrive over time — sometimes isolated board failures, sometimes a
whole neighbourhood (e.g. a shared power feed) — and after each failure event
the monitoring service re-runs the comparison tests and diagnoses the faulty
set from the syndrome.

The example also shows what happens when the number of failures exceeds the
diagnosability: the algorithm's precondition is violated and the result can no
longer be trusted, which the monitoring loop detects by consistency checking.

Run with:  python examples/torus_cluster_monitoring.py
"""

from __future__ import annotations

from repro import GeneralDiagnoser, KAryNCube, generate_syndrome
from repro.core.faults import clustered_faults, random_faults
from repro.core.verification import is_consistent_fault_set


def report(title: str, network, faults, result) -> None:
    correct = result.faulty == faults
    print(f"--- {title}")
    print(f"    injected : {len(faults):2d} faults {sorted(faults)[:8]}{'...' if len(faults) > 8 else ''}")
    print(f"    diagnosed: {len(result.faulty):2d} faults, exact = {correct}")
    print(f"    cost     : {result.num_probes} probes, {result.lookups} lookups, "
          f"{result.elapsed_seconds * 1e3:.1f} ms")


def main() -> None:
    torus = KAryNCube(3, 8)          # 8-ary 3-cube: 512 nodes, degree 6
    delta = torus.diagnosability()   # 2n = 6
    diagnoser = GeneralDiagnoser(torus)
    print(f"cluster: 8-ary 3-cube, {torus.num_nodes} nodes, diagnosability δ = {delta}\n")

    # Event 1: a couple of isolated board failures.
    faults = random_faults(torus, 2, seed=7)
    syndrome = generate_syndrome(torus, faults, seed=7)
    report("event 1: two isolated failures", torus, faults, diagnoser.diagnose(syndrome))

    # Event 2: a clustered failure (e.g. a shared power feed takes out a
    # neighbourhood of δ nodes) with adversarial tester behaviour.
    faults = clustered_faults(torus, delta, seed=11)
    syndrome = generate_syndrome(torus, faults, behavior="mimic", seed=11)
    report("event 2: clustered failure at the diagnosability limit", torus, faults,
           diagnoser.diagnose(syndrome))

    # Event 3: more failures than the diagnosability — outside the paper's
    # precondition.  The algorithm still returns *a* set, but the monitoring
    # loop must treat it with suspicion; consistency checking shows whether it
    # explains the syndrome.
    faults = random_faults(torus, delta + 3, seed=13)
    syndrome = generate_syndrome(torus, faults, seed=13)
    result = diagnoser.diagnose(syndrome)
    consistent = is_consistent_fault_set(torus, syndrome, result.faulty)
    print("--- event 3: failures beyond δ (precondition violated)")
    print(f"    injected {len(faults)} > δ = {delta} faults; diagnosis exact = "
          f"{result.faulty == faults}; output consistent with syndrome = {consistent}")
    print("    (the paper's guarantee only holds for |F| ≤ δ)")


if __name__ == "__main__":
    main()
