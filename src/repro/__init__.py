"""repro — a reproduction of Stewart (IPDPS 2010).

"A general algorithm for detecting faults under the comparison diagnosis
model": given a syndrome of MM-model comparison tests produced by at most
``δ`` faulty processors in an interconnection network whose connectivity is
at least its diagnosability ``δ``, the algorithm recovers the exact fault set
in ``O(Δ·N)`` time.

Quickstart
----------

>>> from repro import Hypercube, generate_syndrome, diagnose, random_faults
>>> cube = Hypercube(8)
>>> faults = random_faults(cube, 8, seed=1)
>>> syndrome = generate_syndrome(cube, faults, seed=1)
>>> result = diagnose(cube, syndrome)
>>> result.faulty == faults
True

The package is organised as:

* :mod:`repro.core` — the MM-model syndrome machinery, ``Set_Builder`` and
  the general diagnoser (paper Sections 2 and 4);
* :mod:`repro.networks` — the fourteen interconnection-network families of
  Section 5;
* :mod:`repro.baselines` — the comparator algorithms discussed in Section 3
  (exhaustive search, Yang's cycle algorithm, an extended-star local
  diagnoser in the spirit of Chiang & Tan);
* :mod:`repro.diagnosability` — diagnosability bounds and conditions
  (Section 2 and reference [6]);
* :mod:`repro.analysis` — operation accounting and the analytical cost
  formulas of Sections 4.2 and 6;
* :mod:`repro.distributed` — a round-based simulation of the distributed
  self-diagnosis sketched in the paper's further-research section.
"""

from .core import (
    DiagnosisError,
    DiagnosisResult,
    FaultScenario,
    FaultyTesterBehavior,
    GeneralDiagnoser,
    LazySyndrome,
    SetBuilderResult,
    Syndrome,
    TableSyndrome,
    certificate_node_budget,
    clustered_faults,
    diagnose,
    generate_syndrome,
    neighborhood_faults,
    random_faults,
    scenario_suite,
    set_builder,
    spread_faults,
    syndrome_table_size,
)
from .networks import (
    ArrangementGraph,
    AugmentedCube,
    AugmentedKAryNCube,
    CrossedCube,
    EnhancedHypercube,
    ExplicitNetwork,
    FoldedHypercube,
    Hypercube,
    InterconnectionNetwork,
    KAryNCube,
    NKStarGraph,
    PancakeGraph,
    ShuffleCube,
    StarGraph,
    TwistedCube,
    TwistedNCube,
    available_families,
    create_network,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "diagnose",
    "GeneralDiagnoser",
    "DiagnosisResult",
    "DiagnosisError",
    "set_builder",
    "SetBuilderResult",
    "certificate_node_budget",
    "Syndrome",
    "TableSyndrome",
    "LazySyndrome",
    "FaultyTesterBehavior",
    "generate_syndrome",
    "syndrome_table_size",
    "FaultScenario",
    "random_faults",
    "clustered_faults",
    "neighborhood_faults",
    "spread_faults",
    "scenario_suite",
    # networks
    "InterconnectionNetwork",
    "ExplicitNetwork",
    "Hypercube",
    "CrossedCube",
    "TwistedCube",
    "FoldedHypercube",
    "EnhancedHypercube",
    "AugmentedCube",
    "ShuffleCube",
    "TwistedNCube",
    "KAryNCube",
    "AugmentedKAryNCube",
    "StarGraph",
    "NKStarGraph",
    "PancakeGraph",
    "ArrangementGraph",
    "available_families",
    "create_network",
]
