"""Operation accounting, analytical formulas, report utilities — and the
codebase-aware static analyzer (``python -m repro.analysis``)."""

from .baseline import apply_baseline, load_baseline, save_baseline
from .formulas import full_table_size, set_builder_lookup_bound, theorem_time_bound
from .linting import (
    TOOL_RULE_ID,
    AnalysisReport,
    Finding,
    ProjectRule,
    Rule,
    SourceFile,
    collect_files,
    load_source,
    run_analysis,
)
from .reporting import ScalingFit, fit_against_model, fit_power_law, format_table
from .rules import ALL_RULES, default_rules, rule_table

__all__ = [
    "set_builder_lookup_bound",
    "full_table_size",
    "theorem_time_bound",
    "format_table",
    "ScalingFit",
    "fit_power_law",
    "fit_against_model",
    # static analysis
    "Finding",
    "Rule",
    "ProjectRule",
    "SourceFile",
    "AnalysisReport",
    "collect_files",
    "load_source",
    "run_analysis",
    "TOOL_RULE_ID",
    "ALL_RULES",
    "default_rules",
    "rule_table",
    "apply_baseline",
    "load_baseline",
    "save_baseline",
]
