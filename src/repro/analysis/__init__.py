"""Operation accounting, analytical formulas and report utilities."""

from .formulas import full_table_size, set_builder_lookup_bound, theorem_time_bound
from .reporting import ScalingFit, fit_against_model, fit_power_law, format_table

__all__ = [
    "set_builder_lookup_bound",
    "full_table_size",
    "theorem_time_bound",
    "format_table",
    "ScalingFit",
    "fit_power_law",
    "fit_against_model",
]
