"""CLI for the codebase-aware linter: ``python -m repro.analysis``.

Also reachable as ``repro-diagnose lint``.  Exit codes: 0 clean, 1
unbaselined findings (or stale baseline entries under --strict-baseline),
2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import apply_baseline, load_baseline, save_baseline
from .linting import AnalysisReport, run_analysis
from .rules import default_rules, rule_table

__all__ = ["main"]

DEFAULT_BASELINE = ".repro-analysis-baseline.json"
JSON_SCHEMA_VERSION = 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Codebase-aware static analysis: determinism, asyncio hazards, "
            "shm lifecycle, and the rest of this repo's hard-won invariants."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src and tests, "
        "whichever exist in the current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline ledger path (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; every finding gates",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current active findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--strict-baseline",
        action="store_true",
        help="also fail (exit 1) when the baseline holds stale entries",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print pragma-suppressed and baselined findings",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _default_paths() -> list[str]:
    present = [name for name in ("src", "tests") if Path(name).is_dir()]
    return present


def _print_rules(as_json: bool, out) -> None:
    table = rule_table()
    if as_json:
        json.dump({"schema": JSON_SCHEMA_VERSION, "rules": table}, out, indent=2)
        out.write("\n")
        return
    for row in table:
        scope = ", ".join(row["scope"])
        out.write(f"{row['id']}  {row['name']}  [scope: {scope}]\n")
        out.write(f"        {row['rationale']}\n")


def _human_report(report: AnalysisReport, args, out) -> None:
    shown = list(report.active)
    if args.show_suppressed:
        shown = list(report.findings)
    for finding in shown:
        status = ""
        if finding.suppressed:
            status = f" [suppressed: {finding.suppress_reason}]"
        elif finding.baselined:
            status = " [baselined]"
        out.write(
            f"{finding.location()}: {finding.rule} ({finding.name}) "
            f"{finding.message}{status}\n"
        )
        if finding.snippet:
            out.write(f"    {finding.snippet}\n")
    for entry in report.stale_baseline:
        out.write(
            f"{entry['path']}: stale baseline entry {entry['fingerprint']} "
            f"({entry['rule']}) no longer fires; delete it\n"
        )
    counts = report.counts()
    out.write(
        f"{counts['files']} files, {counts['findings']} findings "
        f"({counts['active']} active, {counts['suppressed']} suppressed, "
        f"{counts['baselined']} baselined, "
        f"{counts['stale_baseline']} stale baseline)\n"
    )


def _json_report(report: AnalysisReport, paths: list[str], out) -> None:
    document = {
        "schema": JSON_SCHEMA_VERSION,
        "paths": paths,
        "rules": rule_table(),
        "counts": report.counts(),
        "findings": [finding.as_dict() for finding in report.findings],
        "stale_baseline": report.stale_baseline,
    }
    json.dump(document, out, indent=2)
    out.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    out = sys.stdout

    if args.list_rules:
        _print_rules(args.format == "json", out)
        return 0

    paths = args.paths or _default_paths()
    if not paths:
        print(
            "error: no paths given and neither src/ nor tests/ exists here",
            file=sys.stderr,
        )
        return 2

    try:
        report = run_analysis(paths, default_rules())
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    if args.write_baseline:
        apply_baseline(report, {})
        entries = save_baseline(baseline_path, report.active)
        print(
            f"wrote {len(entries)} entries to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    entries: dict[str, dict] = {}
    if not args.no_baseline:
        try:
            entries = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    apply_baseline(report, entries)

    if args.format == "json":
        _json_report(report, [str(p) for p in paths], out)
    else:
        _human_report(report, args, out)

    failed = bool(report.active)
    if args.strict_baseline and report.stale_baseline:
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
