"""Baseline ledger for accepted findings.

A baseline lets the linter land with teeth on day one even if the tree
still has debt: every finding recorded in the checked-in ledger passes,
every *new* finding fails.  Entries are keyed by a fingerprint that is
stable under line drift — sha256 of ``rule | path | normalized source
line | occurrence index`` — so unrelated edits above a baselined site do
not invalidate it, while editing the flagged line itself does (and should:
touched code must meet the rule).

The ledger only shrinks: entries whose finding no longer fires are
reported as *stale* so they get deleted, and ``--write-baseline`` always
rewrites the file from scratch.  This repo ships an **empty** baseline —
intentional violations carry an inline pragma with the argument next to
the code — but the mechanism exists so downstream forks can adopt the
linter without a flag-day fix sweep.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Sequence

from .linting import AnalysisReport, Finding

__all__ = [
    "BASELINE_VERSION",
    "fingerprint_report",
    "load_baseline",
    "save_baseline",
    "apply_baseline",
]

BASELINE_VERSION = 1


def _normalized(snippet: str) -> str:
    return " ".join(snippet.split())


def fingerprint_report(report: AnalysisReport) -> None:
    """Assign a line-drift-stable fingerprint to every finding in place.

    Identical (rule, path, normalized line) triples are disambiguated by
    occurrence index in file order, so two textually identical violations
    in one file baseline independently.
    """
    seen: dict[tuple[str, str, str], int] = {}
    for finding in report.findings:
        key = (finding.rule, finding.path, _normalized(finding.snippet))
        index = seen.get(key, 0)
        seen[key] = index + 1
        raw = "|".join((finding.rule, finding.path, _normalized(finding.snippet), str(index)))
        finding.fingerprint = hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]


def load_baseline(path: Path) -> dict[str, dict]:
    """``fingerprint -> entry`` from the ledger; ``{}`` when absent.

    Raises ``ValueError`` on a structurally invalid file — a corrupt
    baseline silently accepting nothing (or everything) would defeat the
    gate.
    """
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or "entries" not in data:
        raise ValueError(f"baseline {path} lacks an 'entries' table")
    entries = data["entries"]
    if not isinstance(entries, dict):
        raise ValueError(f"baseline {path} 'entries' must be an object")
    for fingerprint, entry in entries.items():
        if not isinstance(entry, dict) or "rule" not in entry:
            raise ValueError(
                f"baseline {path} entry {fingerprint!r} is malformed"
            )
    return dict(entries)


def save_baseline(path: Path, findings: Sequence[Finding]) -> dict[str, dict]:
    """Write the ledger covering ``findings`` (the run's active set)."""
    entries = {
        finding.fingerprint: {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
        }
        for finding in findings
    }
    document = {
        "version": BASELINE_VERSION,
        "comment": (
            "Accepted pre-existing findings for repro.analysis. Entries are "
            "keyed by a line-drift-stable fingerprint; delete entries as the "
            "debt is paid (stale ones are reported). Prefer inline "
            "'# repro: allow[...]' pragmas for intentional sites."
        ),
        "entries": dict(sorted(entries.items())),
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return entries


def apply_baseline(report: AnalysisReport, entries: dict[str, dict]) -> None:
    """Mark baselined findings and record stale ledger entries in place."""
    fingerprint_report(report)
    live: set[str] = set()
    for finding in report.findings:
        if finding.suppressed:
            continue
        if finding.fingerprint in entries:
            finding.baselined = True
            live.add(finding.fingerprint)
    report.stale_baseline = [
        {"fingerprint": fingerprint, **entry}
        for fingerprint, entry in sorted(entries.items())
        if fingerprint not in live
    ]
