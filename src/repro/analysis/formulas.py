"""Analytical cost formulas quoted by the paper (Sections 4.2 and 6).

These closed-form expressions are the yardsticks the benchmarks compare
measured quantities against:

* ``set_builder_lookup_bound`` — Section 6: the number of syndrome entries
  ``Set_Builder(u0)`` consults is at most ``(Δ - 1)(Δ/2 + |U_r| - 1)``;
* ``full_table_size`` — the number of entries in the complete syndrome table,
  ``Σ_u C(deg(u), 2)``, which comparison-based algorithms that scan the whole
  table (Chiang & Tan's in particular) must consult;
* ``theorem_time_bound`` — the per-family time bounds of Theorems 2–7,
  expressed as an operation count proportional to ``Δ·N`` (used to check the
  measured scaling shape in experiments E1 and E3).
"""

from __future__ import annotations

from ..networks.base import InterconnectionNetwork
from ..core.syndrome import syndrome_table_size

__all__ = [
    "set_builder_lookup_bound",
    "full_table_size",
    "theorem_time_bound",
]


def set_builder_lookup_bound(max_degree: int, grown_set_size: int) -> float:
    """Section 6 bound on syndrome lookups: ``(Δ - 1)(Δ/2 + |U_r| - 1)``."""
    return (max_degree - 1) * (max_degree / 2 + grown_set_size - 1)


def full_table_size(network: InterconnectionNetwork) -> int:
    """Entries in the complete syndrome table (``Σ_u C(deg(u), 2)``)."""
    return syndrome_table_size(network)


def theorem_time_bound(network: InterconnectionNetwork) -> int:
    """The ``O(Δ·N)`` operation count of Theorem 1 instantiated on a network.

    For the paper's families this specialises to the bounds of Theorems 2–7
    (e.g. ``O(n·2^n)`` for ``Q_n``, ``O(n·k^n)`` for ``Q^k_n``,
    ``O(n!·n)`` for ``P_n``): in every case it is ``Δ·N`` up to a constant.
    """
    return network.max_degree * network.num_nodes
