"""Codebase-aware static analysis: the framework under ``repro.analysis``.

Every hardening sweep so far has fixed the *same classes* of bug by hand —
the zombie worker (``asyncio.wait`` leaving its awaitables running), the
shared-memory segment leaked on cache replacement, the non-atomic stats
write torn by a crash, the bare ``time.sleep`` flaking a test on a loaded
CI box.  The paper's whole premise is mechanical self-diagnosis of a
system's faulty units; this module turns that premise on the codebase
itself.  Each invariant the repo has learned the hard way is encoded as an
AST-visitor rule with a stable id (``RPR001``…) so the fabric / service /
parallel layers can keep growing without silently re-introducing a known
failure mode.

The framework (this module) owns everything that is not rule logic:

* **file discovery** — walk the requested paths, parse every ``.py`` once,
  classify each file by its dotted module (``repro.service.http``,
  ``tests.fabric.test_chaos``) so rules can scope themselves to the layers
  their invariant is about;
* **pragmas** — ``# repro: allow[RPR009] reason`` suppresses a finding at
  its line (or, written on a line of its own, at the next code line).  A
  pragma *must* carry a reason and name real rule ids: a malformed pragma
  is itself a finding (``RPR000``), so suppressions cannot rot silently;
* **baseline** — a checked-in ledger of accepted findings (see
  :mod:`.baseline`); new findings fail, baselined ones do not, and stale
  entries (no longer firing) are reported so the ledger only shrinks;
* **reporting** — human ``path:line:col`` lines or a JSON document with a
  stable schema, plus meaningful exit codes (0 clean, 1 findings, 2 usage).

Rules live in :mod:`.rules`; the CLI in :mod:`.__main__` (also reachable as
``repro-diagnose lint``).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "Rule",
    "ProjectRule",
    "SourceFile",
    "AnalysisReport",
    "collect_files",
    "load_source",
    "run_analysis",
    "TOOL_RULE_ID",
]

#: Findings produced by the framework itself (syntax errors, malformed
#: pragmas) rather than by any rule.  Not suppressible — a broken pragma
#: must never be able to suppress the report of its own brokenness.
TOOL_RULE_ID = "RPR000"

_PRAGMA = re.compile(
    r"#\s*repro:\s*allow\[(?P<ids>[^\]]*)\]\s*(?P<reason>.*)$"
)
_RULE_ID = re.compile(r"^RPR\d{3}$")


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    name: str
    path: str  #: posix-style path as given on the command line
    line: int
    col: int
    message: str
    snippet: str = ""
    suppressed: bool = False  #: a pragma acknowledged this finding
    suppress_reason: str = ""
    baselined: bool = False  #: the checked-in baseline accepts this finding
    fingerprint: str = ""  #: line-drift-stable identity (see .baseline)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "suppressed": self.suppressed,
            "suppress_reason": self.suppress_reason,
            "baselined": self.baselined,
            "fingerprint": self.fingerprint,
        }


@dataclass
class _Pragma:
    line: int  #: the line the pragma suppresses findings on
    rules: dict[str, str]  #: rule id -> reason
    used: set[str] = field(default_factory=set)


class SourceFile:
    """One parsed Python file plus everything rules need to inspect it."""

    def __init__(self, path: Path, display_path: str, text: str) -> None:
        self.path = path
        self.display_path = display_path
        self.text = text
        self.lines = text.splitlines()
        self.module = _module_name(path)
        self.tree: ast.Module | None = None
        self.parse_error: SyntaxError | None = None
        try:
            self.tree = ast.parse(text)
        except SyntaxError as exc:
            self.parse_error = exc
        #: line -> comment text (from tokenize; empty on tokenize failure)
        self.comments: dict[int, str] = {}
        #: pragma suppression table, keyed by the line it applies to
        self.pragmas: dict[int, _Pragma] = {}
        #: framework findings raised while reading this file (bad pragmas…)
        self.tool_findings: list[Finding] = []
        self._scan_comments()
        self._parents: dict[int, ast.AST] | None = None

    # ------------------------------------------------------------ navigation
    @property
    def parents(self) -> dict[int, ast.AST]:
        """``id(node) -> parent`` for every node in the tree (lazy)."""
        if self._parents is None:
            table: dict[int, ast.AST] = {}
            if self.tree is not None:
                for parent in ast.walk(self.tree):
                    for child in ast.iter_child_nodes(parent):
                        table[id(child)] = parent
            self._parents = table
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(id(node))
        while current is not None:
            yield current
            current = self.parents.get(id(current))

    def enclosing_function(self, node: ast.AST):
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def has_comment_between(self, first: int, last: int) -> bool:
        return any(first <= line <= last for line in self.comments)

    # --------------------------------------------------------------- pragmas
    def _scan_comments(self) -> None:
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.text).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            line = token.start[0]
            self.comments[line] = token.string
            match = _PRAGMA.search(token.string)
            if match is None:
                continue
            target = self._pragma_target(line, token)
            ids = [part.strip() for part in match.group("ids").split(",")]
            reason = match.group("reason").strip()
            bad = [part for part in ids if not _RULE_ID.match(part)]
            if bad or not ids or not reason:
                detail = (
                    f"rule ids {bad} are not of the form RPRnnn" if bad
                    else "a pragma must carry a non-empty reason"
                )
                self.tool_findings.append(Finding(
                    rule=TOOL_RULE_ID,
                    name="malformed-pragma",
                    path=self.display_path,
                    line=line,
                    col=token.start[1],
                    message=(
                        f"malformed suppression pragma ({detail}); expected "
                        f"'# repro: allow[RPRnnn] reason'"
                    ),
                    snippet=self.line_at(line).strip(),
                ))
                continue
            pragma = self.pragmas.setdefault(target, _Pragma(target, {}))
            for rule_id in ids:
                pragma.rules[rule_id] = reason

    def _pragma_target(self, line: int, token) -> int:
        """The code line a pragma applies to: its own, or — when it stands
        alone on a line — the next non-blank, non-comment line below."""
        before = self.line_at(line)[: token.start[1]]
        if before.strip():
            return line
        for candidate in range(line + 1, len(self.lines) + 1):
            text = self.line_at(candidate).strip()
            if text and not text.startswith("#"):
                return candidate
        return line

    def suppression_for(self, finding: Finding) -> _Pragma | None:
        pragma = self.pragmas.get(finding.line)
        if pragma is not None and finding.rule in pragma.rules:
            return pragma
        return None


class Rule:
    """One per-file checker.  Subclasses set the class attributes and
    implement :meth:`check`, yielding ``(node_or_line, message)`` pairs."""

    rule_id: str = ""
    name: str = ""
    rationale: str = ""  #: one line tying the rule to the bug it encodes
    #: dotted-module prefixes the rule applies to; ``None`` means every file
    scope: tuple[str, ...] | None = None

    def applies_to(self, source: SourceFile) -> bool:
        if self.scope is None:
            return True
        module = source.module
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def check(self, source: SourceFile) -> Iterable[tuple[ast.AST | int, str]]:
        raise NotImplementedError

    # ------------------------------------------------------------- plumbing
    def findings(self, source: SourceFile) -> Iterator[Finding]:
        if source.tree is None:
            return
        for where, message in self.check(source):
            if isinstance(where, int):
                line, col = where, 0
            else:
                line, col = where.lineno, where.col_offset
            yield Finding(
                rule=self.rule_id,
                name=self.name,
                path=source.display_path,
                line=line,
                col=col,
                message=message,
                snippet=source.line_at(line).strip(),
            )


class ProjectRule(Rule):
    """A checker that needs the whole analyzed file set at once (e.g. the
    wire-codec symmetry rule pairs ``encode_*``/``decode_*`` across modules
    and checks tests exercise them)."""

    def project_check(
        self, files: Sequence[SourceFile]
    ) -> Iterable[tuple[SourceFile, ast.AST | int, str]]:
        raise NotImplementedError

    def check(self, source: SourceFile):  # pragma: no cover - not used
        return ()

    def project_findings(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        for source, where, message in self.project_check(files):
            if isinstance(where, int):
                line, col = where, 0
            else:
                line, col = where.lineno, where.col_offset
            yield Finding(
                rule=self.rule_id,
                name=self.name,
                path=source.display_path,
                line=line,
                col=col,
                message=message,
                snippet=source.line_at(line).strip(),
            )


# --------------------------------------------------------------------- report
@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    files: list[SourceFile]
    findings: list[Finding]  #: every finding, including suppressed ones
    unused_pragmas: list[Finding] = field(default_factory=list)
    stale_baseline: list[dict] = field(default_factory=list)

    @property
    def active(self) -> list[Finding]:
        """Findings that actually gate: not suppressed, not baselined."""
        return [
            finding for finding in self.findings
            if not finding.suppressed and not finding.baselined
        ]

    @property
    def suppressed(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def baselined(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.baselined]

    def counts(self) -> dict:
        return {
            "files": len(self.files),
            "findings": len(self.findings),
            "active": len(self.active),
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
            "stale_baseline": len(self.stale_baseline),
        }


# ------------------------------------------------------------------ discovery
def _module_name(path: Path) -> str:
    """Dotted module for scoping: ``.../src/repro/core/x.py`` ->
    ``repro.core.x``; ``.../tests/fabric/t.py`` -> ``tests.fabric.t``.

    Falls back to the bare stem when neither a ``src`` nor ``tests``
    ancestor anchors the path (fixture files in a temp dir, say)."""
    parts = list(path.parts)
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    parts[-1] = stem
    for anchor in ("src", "tests"):
        if anchor in parts[:-1]:
            index = len(parts) - 2 - parts[:-1][::-1].index(anchor)
            tail = parts[index + 1:] if anchor == "src" else parts[index:]
            if tail:
                if tail[-1] == "__init__":
                    tail = tail[:-1]
                return ".".join(tail) if tail else stem
    return stem


def collect_files(paths: Sequence[str | Path]) -> list[tuple[Path, str]]:
    """``(absolute path, display path)`` for every ``.py`` under ``paths``.

    Directories are walked recursively (skipping ``__pycache__`` and hidden
    directories); explicit file arguments are taken as-is.  Raises
    ``FileNotFoundError`` for a path that does not exist — a typo'd path
    silently linting nothing would be worse than an error.
    """
    collected: list[tuple[Path, str]] = []
    for raw in paths:
        base = Path(raw)
        if not base.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        if base.is_file():
            collected.append((base.resolve(), str(base)))
            continue
        for found in sorted(base.rglob("*.py")):
            relative = found.relative_to(base)
            if any(
                part == "__pycache__" or part.startswith(".")
                for part in relative.parts
            ):
                continue
            collected.append((found.resolve(), str(Path(raw) / relative)))
    return collected


def load_source(path: Path, display_path: str | None = None) -> SourceFile:
    text = path.read_text(encoding="utf-8")
    return SourceFile(path, display_path or str(path), text)


# ------------------------------------------------------------------- analysis
def run_analysis(
    paths: Sequence[str | Path],
    rules: Sequence[Rule],
) -> AnalysisReport:
    """Parse every file under ``paths`` and run every rule over it.

    Pragma suppression is applied here (per file, per line); baseline
    matching is the caller's concern (see :mod:`.baseline`) because the
    baseline file's location is a CLI decision, not an analysis one.
    """
    files: list[SourceFile] = []
    findings: list[Finding] = []
    for path, display in collect_files(paths):
        source = load_source(path, display)
        files.append(source)
        if source.parse_error is not None:
            error = source.parse_error
            findings.append(Finding(
                rule=TOOL_RULE_ID,
                name="syntax-error",
                path=display,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                message=f"file does not parse: {error.msg}",
            ))
            continue
        findings.extend(source.tool_findings)
        for rule in rules:
            if isinstance(rule, ProjectRule):
                continue
            if rule.applies_to(source):
                findings.extend(rule.findings(source))
    by_display = {source.display_path: source for source in files}
    for rule in rules:
        if isinstance(rule, ProjectRule):
            findings.extend(rule.project_findings(files))
    # Pragmas: mark suppressed findings, then report pragmas that suppressed
    # nothing (an unused pragma is a stale suppression — it must go).
    unused: list[Finding] = []
    for finding in findings:
        source = by_display.get(finding.path)
        if source is None or finding.rule == TOOL_RULE_ID:
            continue
        pragma = source.suppression_for(finding)
        if pragma is not None:
            finding.suppressed = True
            finding.suppress_reason = pragma.rules[finding.rule]
            pragma.used.add(finding.rule)
    for source in files:
        for pragma in source.pragmas.values():
            for rule_id, reason in sorted(pragma.rules.items()):
                if rule_id not in pragma.used:
                    unused.append(Finding(
                        rule=TOOL_RULE_ID,
                        name="unused-pragma",
                        path=source.display_path,
                        line=pragma.line,
                        col=0,
                        message=(
                            f"pragma allows {rule_id} but no {rule_id} "
                            f"finding fires here; remove the stale pragma"
                        ),
                        snippet=source.line_at(pragma.line).strip(),
                    ))
    findings.extend(unused)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return AnalysisReport(
        files=files, findings=findings, unused_pragmas=unused
    )
