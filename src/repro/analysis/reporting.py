"""Report formatting and scaling-fit helpers for the benchmark harness.

The paper contains no measured tables, so the reproduction's "tables" are the
per-experiment text reports emitted by the benchmark modules.  This module
holds the shared formatting code (aligned text tables) and the least-squares
scaling fits used to verify the shape of the complexity claims (e.g. that the
measured time of experiment E1 grows like ``n·2^n``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["format_table", "ScalingFit", "fit_power_law", "fit_against_model"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], *, title: str = "") -> str:
    """Render an aligned plain-text table (used by benchmarks and the CLI)."""
    columns = len(headers)
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != columns:
            raise ValueError("row length does not match headers")
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in str_rows)) if str_rows else len(headers[c])
        for c in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[c]) for c, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[c] for c in range(columns)))
    for row in str_rows:
        lines.append("  ".join(row[c].ljust(widths[c]) for c in range(columns)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    return str(cell)


@dataclass(frozen=True)
class ScalingFit:
    """A least-squares fit of measurements against a model."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * x**self.exponent


def fit_power_law(sizes: Sequence[float], values: Sequence[float]) -> ScalingFit:
    """Fit ``value ≈ c · size^a`` by linear regression in log–log space."""
    x = np.log(np.asarray(sizes, dtype=float))
    y = np.log(np.asarray(values, dtype=float))
    if len(x) < 2:
        raise ValueError("need at least two data points")
    slope, intercept = np.polyfit(x, y, 1)
    predictions = slope * x + intercept
    ss_res = float(np.sum((y - predictions) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return ScalingFit(exponent=float(slope), coefficient=float(np.exp(intercept)),
                      r_squared=r_squared)


def fit_against_model(model_values: Sequence[float], measured: Sequence[float]) -> ScalingFit:
    """Fit ``measured ≈ c · model^a``.

    Verifying a complexity claim such as "time is ``O(n·2^n)``" amounts to
    checking that the fitted exponent against the model quantity ``n·2^n`` is
    close to (or below) 1.
    """
    return fit_power_law(model_values, measured)
