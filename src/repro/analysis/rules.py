"""The codebase-specific rule set (``RPR001``…).

Every rule encodes an invariant this repo has already shipped a bug
against — the rationale strings name the incident.  Rules are deliberately
narrow: each one matches the *shape* of a past failure, stays silent on the
idiomatic replacement, and leaves everything else alone.  A finding that is
intentional gets an inline ``# repro: allow[RPRnnn] reason`` pragma, so the
reviewer sees the argument next to the code it excuses.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Sequence

from .linting import ProjectRule, Rule, SourceFile

__all__ = ["ALL_RULES", "default_rules", "rule_table"]

#: Module prefixes that constitute the deterministic diagnosis pipeline:
#: golden traces, replayable schedules and the differential suites all pin
#: these layers bit for bit, so wall clocks and unseeded randomness there
#: would make identical inputs produce non-identical evidence.
DIAGNOSIS_SCOPE = (
    "repro.core",
    "repro.backend",
    "repro.parallel",
    "repro.distributed",
)

#: The layers whose error paths must never lose evidence silently.
EDGE_SCOPE = ("repro.service", "repro.fabric")


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain; ``""`` when not a plain chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _call_name(call: ast.Call) -> str:
    return _dotted(call.func)


def _walk_shallow(body: Iterable[ast.AST]):
    """Walk statements without descending into nested function/class defs
    (their bodies run in a different execution context)."""
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------- determinism
class WallClockRule(Rule):
    rule_id = "RPR001"
    name = "wall-clock-in-diagnosis"
    rationale = (
        "Golden traces and replay (PR 2) require diagnosis outputs to be a "
        "pure function of (topology, syndrome, seed); a wall clock in the "
        "pipeline breaks byte-stable traces."
    )
    scope = DIAGNOSIS_SCOPE

    _CLOCKS = {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }

    def check(self, source: SourceFile):
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call) and _call_name(node) in self._CLOCKS:
                yield node, (
                    f"wall-clock call {_call_name(node)}() in the diagnosis "
                    f"pipeline; outputs must be a pure function of "
                    f"(topology, syndrome, seed) — take timestamps at the "
                    f"service/benchmark layer instead"
                )


class UnseededRandomRule(Rule):
    rule_id = "RPR002"
    name = "unseeded-random-in-diagnosis"
    rationale = (
        "Sweeps derive per-trial seeds via SeedSequence.spawn (PR 3); "
        "module-level random/np.random state would differ per process and "
        "break the sharded-equals-serial differential pins."
    )
    scope = DIAGNOSIS_SCOPE

    _ALLOWED_RANDOM = {"Random", "SystemRandom"}
    _ALLOWED_NP = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}

    def check(self, source: SourceFile):
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _call_name(node)
            if dotted.startswith("random."):
                tail = dotted.split(".", 1)[1]
                if tail.split(".")[0] not in self._ALLOWED_RANDOM:
                    yield node, (
                        f"{dotted}() draws from the process-global PRNG; "
                        f"construct a seeded random.Random / np.random "
                        f"Generator so replays and worker fan-out stay "
                        f"deterministic"
                    )
            elif dotted.startswith(("np.random.", "numpy.random.")):
                tail = dotted.rsplit("random.", 1)[1]
                if tail.split(".")[0] not in self._ALLOWED_NP:
                    yield node, (
                        f"{dotted}() uses numpy's legacy global state; use "
                        f"np.random.default_rng(seed) / SeedSequence spawning "
                        f"(see repro.parallel.seeding)"
                    )


# -------------------------------------------------------------------- asyncio
class UnawaitedCoroutineRule(Rule):
    rule_id = "RPR003"
    name = "unawaited-coroutine"
    rationale = (
        "A coroutine called without await never runs — the call builds an "
        "object and drops it, which asyncio only reports as a late warning "
        "on garbage collection, if at all."
    )

    def check(self, source: SourceFile):
        async_names = {
            node.name
            for node in ast.walk(source.tree)
            if isinstance(node, ast.AsyncFunctionDef)
        }
        if not async_names:
            return
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
                continue
            func = node.value.func
            called = None
            if isinstance(func, ast.Name) and func.id in async_names:
                called = func.id
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in async_names
                and isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
            ):
                called = func.attr
            if called is not None:
                yield node, (
                    f"{called}() is an async def in this module but the call "
                    f"is neither awaited nor scheduled; the coroutine object "
                    f"is created and silently dropped"
                )


class DanglingTaskRule(Rule):
    rule_id = "RPR004"
    name = "fire-and-forget-task"
    rationale = (
        "asyncio only keeps weak references to tasks: a create_task result "
        "that nobody retains can be garbage-collected mid-flight, and its "
        "exceptions vanish — retain the task and discard it via a done "
        "callback (the _connections/_dispatchers idiom)."
    )

    _SPAWNERS = ("create_task", "ensure_future")

    def check(self, source: SourceFile):
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
                continue
            dotted = _call_name(node.value)
            short = dotted.rsplit(".", 1)[-1]
            if short in self._SPAWNERS:
                yield node, (
                    f"{dotted}() result is discarded: the event loop holds "
                    f"only a weak reference, so the task can be collected "
                    f"mid-flight and its exception lost; retain it "
                    f"(set/dict + add_done_callback(discard)) or await it"
                )


class WaitWithoutCancelRule(Rule):
    rule_id = "RPR005"
    name = "asyncio-wait-pending-leak"
    rationale = (
        "The PR 8 zombie worker: asyncio.wait(FIRST_COMPLETED) returned and "
        "the still-pending serving task kept executing leases after the "
        "worker was 'stopped' — pending tasks must be cancelled (and "
        "awaited) on every exit path."
    )

    def check(self, source: SourceFile):
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Await):
                continue
            call = node.value
            if not isinstance(call, ast.Call) or _call_name(call) != "asyncio.wait":
                continue
            if self._all_completed_no_timeout(call):
                continue
            function = source.enclosing_function(node)
            parent = source.parents.get(id(node))
            if isinstance(parent, ast.Expr):
                yield node, (
                    "asyncio.wait() result is discarded, so the pending set "
                    "is unreachable and its tasks keep running (the PR 8 "
                    "zombie-worker bug); bind (done, pending) and cancel "
                    "the pending tasks"
                )
                continue
            pending_name = self._pending_target(parent)
            if pending_name is None:
                # Bound to something other than a 2-tuple; accept if the
                # enclosing function cancels *anything*, else flag.
                if function is None or not self._has_any_cancel(function):
                    yield node, (
                        "asyncio.wait() may leave tasks pending but nothing "
                        "in this function cancels them; cancel the pending "
                        "set on every exit path"
                    )
                continue
            if function is None or not self._cancels_iterable(
                function, pending_name
            ):
                yield node, (
                    f"asyncio.wait() pending set {pending_name!r} is never "
                    f"cancelled in this function — tasks left in it keep "
                    f"running after the wait returns (the PR 8 zombie-worker "
                    f"bug); add `for task in {pending_name}: task.cancel()`"
                )

    @staticmethod
    def _all_completed_no_timeout(call: ast.Call) -> bool:
        """ALL_COMPLETED without a timeout cannot leave anything pending."""
        has_timeout = False
        return_when_all = True
        for keyword in call.keywords:
            if keyword.arg == "timeout":
                if not (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is None
                ):
                    has_timeout = True
            if keyword.arg == "return_when":
                return_when_all = _dotted(keyword.value).endswith("ALL_COMPLETED")
        return return_when_all and not has_timeout

    @staticmethod
    def _pending_target(parent: ast.AST) -> str | None:
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = parent.targets[0]
            if (
                isinstance(target, (ast.Tuple, ast.List))
                and len(target.elts) == 2
                and isinstance(target.elts[1], ast.Name)
            ):
                return target.elts[1].id
        return None

    @staticmethod
    def _has_any_cancel(function: ast.AST) -> bool:
        return any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "cancel"
            for node in ast.walk(function)
        )

    @staticmethod
    def _cancels_iterable(function: ast.AST, name: str) -> bool:
        """``for t in <name>: t.cancel()`` (or a comprehension equivalent)
        anywhere in the function."""
        for node in ast.walk(function):
            if isinstance(node, ast.For):
                iterated = node.iter
                if isinstance(iterated, ast.Call):  # list(pending) etc.
                    iterated = iterated.args[0] if iterated.args else iterated
                if isinstance(iterated, ast.Name) and iterated.id == name:
                    if WaitWithoutCancelRule._has_any_cancel(node):
                        return True
            if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                for generator in node.generators:
                    if (
                        isinstance(generator.iter, ast.Name)
                        and generator.iter.id == name
                        and WaitWithoutCancelRule._has_any_cancel(node)
                    ):
                        return True
        return False


class BlockingCallInAsyncRule(Rule):
    rule_id = "RPR006"
    name = "blocking-call-in-async"
    rationale = (
        "A blocking call inside async def stalls the whole event loop: "
        "heartbeats stop, batches stop coalescing, and a slow batch looks "
        "like a dead worker — run blocking work via run_in_executor (the "
        "fabric worker idiom)."
    )

    _BLOCKING = {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "sqlite3.connect",
        "socket.create_connection",
        "urllib.request.urlopen",
        "os.system",
        "os.wait",
    }

    def check(self, source: SourceFile):
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for inner in _walk_shallow(node.body):
                if isinstance(inner, ast.Call):
                    dotted = _call_name(inner)
                    if dotted in self._BLOCKING:
                        yield inner, (
                            f"blocking call {dotted}() inside async def "
                            f"{node.name}() stalls the event loop (and every "
                            f"heartbeat on it); use asyncio.sleep / "
                            f"run_in_executor instead"
                        )


# ----------------------------------------------------------------- shm & I/O
class ShmOwnershipRule(Rule):
    rule_id = "RPR007"
    name = "unowned-shared-memory"
    rationale = (
        "The PR 5 cache-replacement leak: a SharedMemory segment without an "
        "owner-tracked unlink survives its publisher and accumulates in "
        "/dev/shm; every create must be wrapped in OwnedSegment immediately, "
        "in repro.parallel.shm only."
    )

    _OWNER_MODULE = "repro.parallel.shm"

    def check(self, source: SourceFile):
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _call_name(node)
            if not dotted.endswith("SharedMemory"):
                continue
            if not any(
                keyword.arg == "create"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in node.keywords
            ):
                continue  # attach (create=False) is every process's right
            if source.module != self._OWNER_MODULE:
                yield node, (
                    f"SharedMemory(create=True) outside {self._OWNER_MODULE}: "
                    f"segments must be published through publish_topology/"
                    f"publish_buffer so exactly one owner unlinks them on "
                    f"every exit path"
                )
                continue
            if not self._wrapped_immediately(source, node):
                yield node, (
                    "a created SharedMemory segment must be wrapped in "
                    "OwnedSegment by the *next* statement — any code between "
                    "create and wrap that raises leaks the segment (the PR 5 "
                    "eviction-leak class)"
                )

    @staticmethod
    def _wrapped_immediately(source: SourceFile, call: ast.Call) -> bool:
        parent = source.parents.get(id(call))
        if not isinstance(parent, ast.Assign):
            return False
        target = parent.targets[0]
        if not isinstance(target, ast.Name):
            return False
        holder = source.parents.get(id(parent))
        body = getattr(holder, "body", None)
        if not isinstance(body, list) or parent not in body:
            for attr in ("body", "orelse", "finalbody"):
                candidate = getattr(holder, attr, None)
                if isinstance(candidate, list) and parent in candidate:
                    body = candidate
                    break
            else:
                return False
        index = body.index(parent)
        if index + 1 >= len(body):
            return False
        following = body[index + 1]
        for node in ast.walk(following):
            if (
                isinstance(node, ast.Call)
                and _call_name(node).endswith("OwnedSegment")
                and any(
                    isinstance(arg, ast.Name) and arg.id == target.id
                    for arg in node.args
                )
            ):
                return True
        return False


class NonAtomicJsonWriteRule(Rule):
    rule_id = "RPR008"
    name = "non-atomic-json-write"
    rationale = (
        "CI smokes parse the stats/ready files; a crash mid-json.dump left "
        "truncated JSON until PR 5 made the writes atomic (temp file + "
        "fsync + os.replace) — runtime artifacts go through "
        "_write_json_atomic."
    )
    scope = ("repro",)

    def check(self, source: SourceFile):
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.With):
                continue
            open_vars = set()
            for item in node.items:
                call = item.context_expr
                if not (isinstance(call, ast.Call) and _call_name(call) == "open"):
                    continue
                mode = self._mode(call)
                if mode is not None and "w" in mode and "b" not in mode:
                    if isinstance(item.optional_vars, ast.Name):
                        open_vars.add(item.optional_vars.id)
                    else:
                        open_vars.add("")
            if not open_vars:
                continue
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.Call)
                    and _call_name(inner) in ("json.dump",)
                ):
                    yield node, (
                        "json.dump into a bare open(path, 'w'): a crash "
                        "mid-write leaves truncated JSON for whatever parses "
                        "this artifact; use the _write_json_atomic idiom "
                        "(same-dir temp file + fsync + os.replace)"
                    )
                    break

    @staticmethod
    def _mode(call: ast.Call) -> str | None:
        if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
            value = call.args[1].value
            return value if isinstance(value, str) else None
        for keyword in call.keywords:
            if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
                value = keyword.value.value
                return value if isinstance(value, str) else None
        return None


class LockAcrossAwaitRule(Rule):
    rule_id = "RPR009"
    name = "lock-held-across-await"
    rationale = (
        "An async-with-held lock spanning an await of foreign work "
        "serialises everything behind the slowest holder (and deadlocks if "
        "the awaited work needs the lock); keep critical sections "
        "await-free, or pragma the deliberate single-flight pattern with "
        "its argument."
    )
    scope = ("repro",)

    _LOCK_FACTORIES = {
        "asyncio.Lock",
        "asyncio.Semaphore",
        "asyncio.BoundedSemaphore",
        "asyncio.Condition",
        "threading.Lock",
        "threading.RLock",
    }

    def check(self, source: SourceFile):
        lockish = self._lockish_names(source)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.AsyncWith):
                continue
            for item in node.items:
                expr = item.context_expr
                if not self._is_lockish(expr, lockish):
                    continue
                awaits = [
                    inner for inner in _walk_shallow(node.body)
                    if isinstance(inner, ast.Await)
                ]
                if awaits:
                    first = min(awaits, key=lambda a: (a.lineno, a.col_offset))
                    yield node, (
                        f"lock {ast.unparse(expr)!r} is held across the "
                        f"await at line {first.lineno}; everything needing "
                        f"this lock now waits on that foreign work — hoist "
                        f"the await out of the critical section"
                    )
                break

    def _lockish_names(self, source: SourceFile) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if value is None:
                continue
            creates_lock = any(
                isinstance(inner, ast.Call)
                and _call_name(inner) in self._LOCK_FACTORIES
                for inner in ast.walk(value)
            )
            if not creates_lock:
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, ast.Attribute):
                    names.add(target.attr)
        return names

    @staticmethod
    def _is_lockish(expr: ast.AST, lockish: set[str]) -> bool:
        dotted = _dotted(expr)
        leaf = dotted.rsplit(".", 1)[-1] if dotted else ""
        if leaf in lockish:
            return True
        lowered = leaf.lower()
        return "lock" in lowered or "transaction" in lowered


class SilentExceptRule(Rule):
    rule_id = "RPR010"
    name = "silent-except"
    rationale = (
        "Serving/fabric error paths that swallow exceptions without a trace "
        "hid real losses until counters were added (PR 5/8); a pass-only "
        "handler must say why discarding is safe, or record the event."
    )
    scope = EDGE_SCOPE

    def check(self, source: SourceFile):
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not all(
                isinstance(stmt, (ast.Pass, ast.Continue)) for stmt in node.body
            ):
                continue
            last_line = max(
                stmt.end_lineno or stmt.lineno for stmt in node.body
            )
            if source.has_comment_between(node.lineno, last_line):
                continue  # the swallow is explained in place
            caught = ast.unparse(node.type) if node.type is not None else "BaseException"
            yield node, (
                f"except {caught}: pass swallows the exception with no "
                f"explanation and no evidence; add a comment saying why "
                f"discarding is safe, or count/log the event before "
                f"discarding it"
            )


class BareSleepInTestsRule(Rule):
    rule_id = "RPR011"
    name = "bare-sleep-synchronization"
    rationale = (
        "Bare sleeps synchronise by luck: too short flakes on a loaded CI "
        "box, too long wastes every run (the PR 8 hygiene sweep); poll the "
        "actual condition inside a deadline-bounded while loop."
    )
    scope = ("tests",)

    def check(self, source: SourceFile):
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _call_name(node)
            if dotted not in ("time.sleep", "asyncio.sleep"):
                continue
            if (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and not node.args[0].value
            ):
                continue  # sleep(0): an event-loop yield, not a wait
            loop = self._enclosing_while(source, node)
            if loop is None:
                yield node, (
                    f"bare {dotted}() used as synchronization: it passes or "
                    f"flakes by timing luck; poll the condition in a "
                    f"deadline-bounded while loop instead"
                )
            elif not self._deadline_bounded(loop):
                yield node, (
                    f"{dotted}() polls inside a while loop with no deadline; "
                    f"a regression turns this test into a hang — bound the "
                    f"loop with `deadline = ... ; assert now < deadline`"
                )

    @staticmethod
    def _enclosing_while(source: SourceFile, node: ast.AST) -> ast.While | None:
        for ancestor in source.ancestors(node):
            if isinstance(ancestor, ast.While):
                return ancestor
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return None
        return None

    @staticmethod
    def _deadline_bounded(loop: ast.While) -> bool:
        for node in ast.walk(loop):
            if isinstance(node, ast.Name) and "deadline" in node.id.lower():
                return True
            if isinstance(node, ast.Call):
                dotted = _call_name(node)
                if dotted.endswith((".monotonic", ".time")) or dotted == "monotonic":
                    return True
        return False


class CodecSymmetryRule(ProjectRule):
    rule_id = "RPR012"
    name = "wire-codec-asymmetry"
    rationale = (
        "The fabric moves work over encode_*/decode_* pairs; an encoder "
        "without its decoder (or a codec no test exercises) is a wire "
        "format change that only fails on a live socket."
    )

    _WIRE_MODULES = ("repro.fabric.protocol", "repro.service.requests")

    def project_check(self, files: Sequence[SourceFile]):
        test_text = "\n".join(
            source.text for source in files
            if source.module.startswith("tests") and source.tree is not None
        )
        have_tests = bool(test_text)
        for source in files:
            if source.module not in self._WIRE_MODULES or source.tree is None:
                continue
            defs: dict[str, ast.AST] = {}
            for node in source.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node.name.startswith(("encode_", "decode_")):
                        defs[node.name] = node
            for name, node in sorted(defs.items()):
                prefix, _, suffix = name.partition("_")
                twin = ("decode_" if prefix == "encode" else "encode_") + suffix
                if twin not in defs:
                    yield source, node, (
                        f"{name}() has no matching {twin}() in "
                        f"{source.module}; every wire codec must round-trip"
                    )
                if have_tests and not re.search(rf"\b{name}\b", test_text):
                    yield source, node, (
                        f"{name}() is not exercised by any analyzed test; "
                        f"wire codecs without round-trip tests break only "
                        f"on a live socket"
                    )


ALL_RULES = (
    WallClockRule,
    UnseededRandomRule,
    UnawaitedCoroutineRule,
    DanglingTaskRule,
    WaitWithoutCancelRule,
    BlockingCallInAsyncRule,
    ShmOwnershipRule,
    NonAtomicJsonWriteRule,
    LockAcrossAwaitRule,
    SilentExceptRule,
    BareSleepInTestsRule,
    CodecSymmetryRule,
)


def default_rules() -> list[Rule]:
    """One fresh instance of every registered rule, id order."""
    rules = [cls() for cls in ALL_RULES]
    rules.sort(key=lambda rule: rule.rule_id)
    return rules


def rule_table() -> list[dict]:
    """``[{id, name, scope, rationale}]`` for --list-rules and the README."""
    return [
        {
            "id": rule.rule_id,
            "name": rule.name,
            "scope": list(rule.scope) if rule.scope else ["*"],
            "rationale": rule.rationale,
        }
        for rule in default_rules()
    ]
