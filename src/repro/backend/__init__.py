"""Flat-array performance backend: compiled CSR topologies and array syndromes.

This package is the single fast substrate under the core algorithms, the
experiment runners, the distributed simulator and the baselines (see
README.md, "Performance architecture").  It deliberately has no dependency on
the object topology layer beyond ``num_nodes``/``neighbors``.
"""

from .array_syndrome import ArraySyndrome
from .csr import CSRAdjacency, compile_network

__all__ = ["CSRAdjacency", "ArraySyndrome", "compile_network"]
