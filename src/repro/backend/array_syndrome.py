"""Flat-array syndrome storage for the MM model.

:class:`ArraySyndrome` stores every comparison-test result ``s_u(v, w)`` in a
single flat byte buffer, indexed by the dense *pair layout* of the compiled
topology (:class:`~repro.backend.csr.CSRAdjacency`): tester ``u``'s result for
the pair at sorted-row positions ``(i, j)`` with ``i < j`` lives at

    ``pair_base[u] + i·(2·deg(u) − i − 1)/2 + (j − i − 1)``

so a lookup is a handful of integer operations instead of a tuple hash into a
dict.  The class still derives from :class:`~repro.core.syndrome.Syndrome`, so
everything written against the abstract oracle (the baselines, the verifier,
the lookup-count accounting of experiment E5/E6) keeps working unchanged — the
flat buffer is the fast substrate, the ``Syndrome`` API is the thin adapter.

Generation from a hidden fault set is vectorised over the whole buffer for
healthy testers; faulty testers are filled per the configured
:class:`~repro.core.syndrome.FaultyTesterBehavior` in the exact canonical
order of ``LazySyndrome.materialize()`` (testers ascending, sorted rows, pairs
``(i, j)`` with ``i < j``), so an ``ArraySyndrome`` agrees entry-for-entry
with a materialised :class:`~repro.core.syndrome.TableSyndrome` built from the
same faults, behaviour and seed.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Iterable, Iterator

import numpy as np

from ..core.syndrome import FaultyTesterBehavior, Syndrome, TableSyndrome
from .csr import CSRAdjacency, compile_network

__all__ = ["ArraySyndrome"]


def pair_offset(i: int, j: int, degree: int) -> int:
    """Slot offset of the pair at sorted-row positions ``i < j`` of a tester."""
    return i * (2 * degree - i - 1) // 2 + (j - i - 1)


class ArraySyndrome(Syndrome):
    """A complete syndrome stored as one flat byte buffer over the pair layout."""

    def __init__(
        self,
        topology,
        values,
        *,
        faults: Iterable[int] = frozenset(),
        copy: bool = True,
    ) -> None:
        super().__init__()
        self.csr: CSRAdjacency = compile_network(topology)
        if not copy and isinstance(values, np.ndarray):
            # Zero-copy adoption of an existing flat uint8 array — the serving
            # path wraps shared-memory views this way, so a worker diagnosing
            # an explicit syndrome never duplicates the buffer per process.
            if values.dtype != np.uint8 or values.ndim != 1:
                raise ValueError("copy=False needs a one-dimensional uint8 array")
            buf = values
        else:
            buf = bytearray(values)
        if len(buf) != self.csr.num_pairs:
            raise ValueError(
                f"expected {self.csr.num_pairs} test results, got {len(buf)}"
            )
        self._buf = buf
        self.faults = frozenset(int(f) for f in faults)

    # ------------------------------------------------------------ construction
    @classmethod
    def from_faults(
        cls,
        topology,
        faults: Iterable[int],
        *,
        behavior: FaultyTesterBehavior | str = "random",
        seed: int | None = 0,
    ) -> "ArraySyndrome":
        """Generate the full syndrome of a hidden fault set (vectorised).

        ``topology`` may be a network or an already compiled
        :class:`CSRAdjacency`.  Healthy testers are filled in one numpy pass;
        faulty testers consume the seeded generator in the canonical
        materialisation order, reproducing ``LazySyndrome.materialize()``
        entry for entry.
        """
        csr = compile_network(topology)
        fault_set = frozenset(int(f) for f in faults)
        for f in fault_set:
            if not 0 <= f < csr.num_nodes:
                raise ValueError(f"fault {f} is not a node of the network")
        if isinstance(behavior, str):
            behavior = FaultyTesterBehavior(behavior, seed=seed)
        rng = random.Random(seed)

        _, pv, pw = csr.pair_members()
        mask = np.zeros(csr.num_nodes, dtype=bool)
        if fault_set:
            mask[list(fault_set)] = True
        values = (mask[pv] | mask[pw]).astype(np.uint8)

        pair_indptr = csr.pair_indptr
        for u in sorted(fault_set):
            lo, hi = int(pair_indptr[u]), int(pair_indptr[u + 1])
            if lo == hi:
                continue
            name = behavior.name
            if name == "all_zero":
                values[lo:hi] = 0
            elif name == "all_one":
                values[lo:hi] = 1
            elif name == "anti_mimic":
                values[lo:hi] = 1 - values[lo:hi]
            elif name == "mimic":
                pass  # the healthy values already in place are the answer
            else:
                # Delegate per pair (consuming the rng in canonical order), so
                # behaviours beyond the bulk-computable ones above stay in
                # lockstep with LazySyndrome.
                for k in range(lo, hi):
                    values[k] = behavior.result(
                        u, int(pv[k]), int(pw[k]), int(values[k]), rng
                    )
        return cls(csr, values.tobytes(), faults=fault_set)

    @classmethod
    def from_syndrome(cls, topology, syndrome: Syndrome) -> "ArraySyndrome":
        """Re-encode any syndrome oracle into the flat pair layout.

        Reads every entry through the oracle's raw ``_result`` (no lookup
        counting), in the canonical order — for a ``LazySyndrome`` this
        extends its cache exactly like ``materialize()`` would.
        """
        csr = compile_network(topology)
        values = bytearray(csr.num_pairs)
        k = 0
        for u, row in enumerate(csr.rows):
            d = len(row)
            for i in range(d):
                v = row[i]
                for j in range(i + 1, d):
                    values[k] = syndrome._result(u, v, row[j])
                    k += 1
        return cls(csr, values, faults=getattr(syndrome, "faults", frozenset()))

    # ---------------------------------------------------------------- oracle
    def _result(self, u: int, v: int, w: int) -> int:
        csr = self.csr
        row = csr.rows[u]
        d = len(row)
        i = bisect_left(row, v)
        j = bisect_left(row, w)
        if i >= d or row[i] != v or j >= d or row[j] != w:
            raise KeyError((u, v, w))
        return self._buf[csr.pair_base[u] + pair_offset(i, j, d)]

    @property
    def buffer(self):
        """The raw result buffer (read-only by convention; used by fast paths).

        A ``bytearray`` normally; a flat ``uint8`` array when the syndrome
        adopted one zero-copy (``copy=False``) — both index and slice the
        same way, and ``bytes(buffer)`` works on either.
        """
        return self._buf

    @property
    def values_array(self) -> np.ndarray:
        """Zero-copy ``uint8`` array view of the buffer (vectorised paths)."""
        if isinstance(self._buf, np.ndarray):
            return self._buf
        return np.frombuffer(self._buf, dtype=np.uint8)

    # ----------------------------------------------------------- conversions
    def __len__(self) -> int:
        """Number of entries in the full syndrome table."""
        return self.csr.num_pairs

    def items(self) -> Iterator[tuple[tuple[int, int, int], int]]:
        """Iterate ``((u, v, w), result)`` pairs (table-scanning callers)."""
        pu, pv, pw = self.csr.pair_members()
        buf = self._buf
        for k in range(self.csr.num_pairs):
            yield (int(pu[k]), int(pv[k]), int(pw[k])), buf[k]

    def to_table(self) -> TableSyndrome:
        """Export as a dict-backed :class:`TableSyndrome` (tests, adapters)."""
        return TableSyndrome(dict(self.items()))
