"""Flat-array (CSR) topology backend.

The object layer (:mod:`repro.networks`) describes every topology through
``neighbors(v)``, which typically *computes* a fresh Python list per call
(e.g. the hypercube XORs out one bit per dimension).  That is the right
interface for correctness and for the paper's exposition, but it charges a
large constant factor on the hot path: the ``Set_Builder`` procedure touches
every node a handful of times, and every touch re-materialises an adjacency
list and goes through attribute lookups and method dispatch.

This module compiles any network once into a :class:`CSRAdjacency` — the
standard compressed-sparse-row pair ``indptr``/``indices`` — after which the
hot paths (``Set_Builder``, the diagnosis driver, the MM-model verifier, the
distributed simulator and the baselines) operate on flat arrays:

* ``indices[indptr[v]:indptr[v+1]]`` is the **sorted** neighbour row of ``v``;
* ``has_edge`` is a bisect into a sorted row (``O(log Δ)``);
* the *pair layout* (``pair_indptr``) assigns every comparison test
  ``s_u(v, w)`` a dense slot, which :class:`~repro.backend.array_syndrome.\
ArraySyndrome` uses for O(1) syndrome access without hashing;
* ``boundary`` computes ``N(U) \\ U`` — the diagnosis output — as a single
  vectorised pass over the edge array.

Compilation is memoized per network instance (:func:`compile_network`) and the
registry (:func:`repro.networks.registry.cached_network`) memoizes instances
per ``(family, params)``, so an experiment sweep compiles each topology
exactly once no matter how many trials run on it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..networks.base import InterconnectionNetwork

__all__ = ["CSRAdjacency", "compile_network", "compile_count", "pair_build_count"]

#: Process-wide count of full topology walks (CSRAdjacency.from_network).
#: The worker pool reports the delta observed inside each task, which is how
#: the scale-out layer *proves* its zero-recompilation claim (tests and the
#: tracked benchmark both assert the delta is 0 for shared-memory workers).
_compile_count = 0

#: Process-wide count of pair-member materialisations (pair_members()) — the
#: other big per-topology intermediate (three num_pairs-sized arrays, used by
#: vectorised syndrome generation).  Shipping them through shared memory
#: (repro.parallel.shm) keeps the worker-side delta at 0, mirroring the
#: compile-count evidence.
_pair_build_count = 0


def compile_count() -> int:
    """Number of full adjacency walks this process has performed."""
    return _compile_count


def pair_build_count() -> int:
    """Number of pair-member materialisations this process has performed."""
    return _pair_build_count


class CSRAdjacency:
    """Compressed-sparse-row adjacency of an undirected graph.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``N + 1``; row ``v`` occupies
        ``indices[indptr[v]:indptr[v+1]]``.
    indices:
        ``int32`` array of all neighbour ids, each row sorted ascending.
    pair_indptr:
        ``int64`` array of length ``N + 1`` assigning every unordered
        neighbour pair ``{v, w}`` of every tester ``u`` a dense slot:
        tester ``u``'s ``C(deg(u), 2)`` pairs occupy slots
        ``pair_indptr[u] .. pair_indptr[u+1]``, enumerated in the canonical
        order ``(i, j)`` with ``i < j`` over the sorted row positions.
    """

    __slots__ = (
        "indptr",
        "indices",
        "num_nodes",
        "num_entries",
        "max_degree",
        "min_degree",
        "pair_indptr",
        "num_pairs",
        "_rows",
        "_pair_base",
        "_pair_members",
        "_edge_src",
        "_shm",
    )

    def __init__(self, indptr, indices) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        self.num_nodes = len(self.indptr) - 1
        self.num_entries = int(self.indptr[-1])
        if self.num_entries != len(self.indices):
            raise ValueError("indptr and indices disagree on the entry count")
        degrees = np.diff(self.indptr)
        self.max_degree = int(degrees.max()) if self.num_nodes else 0
        self.min_degree = int(degrees.min()) if self.num_nodes else 0
        pair_counts = degrees * (degrees - 1) // 2
        self.pair_indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(pair_counts, out=self.pair_indptr[1:])
        self.num_pairs = int(self.pair_indptr[-1])
        # Lazily materialised views (see the properties below).
        self._rows: list[tuple[int, ...]] | None = None
        self._pair_base: list[int] | None = None
        self._pair_members: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._edge_src: np.ndarray | None = None
        #: shared-memory mapping backing indptr/indices, when this instance was
        #: reconstructed by repro.parallel.shm.attach_topology (keeps the
        #: mapping alive exactly as long as the views handed out from it)
        self._shm = None

    # ------------------------------------------------------------ construction
    @classmethod
    def from_network(cls, network: "InterconnectionNetwork") -> "CSRAdjacency":
        """Compile a network's adjacency into flat arrays (one full walk)."""
        global _compile_count
        _compile_count += 1
        n = network.num_nodes
        indptr = np.zeros(n + 1, dtype=np.int64)
        flat: list[int] = []
        for v in range(n):
            row = sorted(network.neighbors(v))
            flat.extend(row)
            indptr[v + 1] = len(flat)
        return cls(indptr, np.asarray(flat, dtype=np.int32))

    # ------------------------------------------------------------------- graph
    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour row of ``v`` as an array view (no copy)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Sorted-row bisect membership test (``O(log Δ)``)."""
        lo, hi = int(self.indptr[u]), int(self.indptr[u + 1])
        pos = lo + int(np.searchsorted(self.indices[lo:hi], v))
        return pos < hi and int(self.indices[pos]) == v

    @property
    def rows(self) -> list[tuple[int, ...]]:
        """Per-node rows as Python tuples — the interpreter-friendly view.

        The canonical representation is the flat ``indptr``/``indices`` pair;
        pure-Python hot loops iterate faster over native tuples than over
        numpy slices, so this view is materialised once on first use.
        """
        if self._rows is None:
            flat = self.indices.tolist()
            ptr = self.indptr.tolist()
            self._rows = [
                tuple(flat[ptr[v]:ptr[v + 1]]) for v in range(self.num_nodes)
            ]
        return self._rows

    @property
    def pair_base(self) -> list[int]:
        """``pair_indptr`` as a Python list (fast scalar indexing)."""
        if self._pair_base is None:
            self._pair_base = self.pair_indptr.tolist()
        return self._pair_base

    # ------------------------------------------------------------- pair layout
    def pair_members(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Arrays ``(tester, left, right)`` mapping pair slot → test members.

        Slot ``k`` holds the test ``s_tester[k](left[k], right[k])`` with
        ``left < right`` (sorted-row order).  Built once and cached; used by
        the vectorised syndrome generator and by table exports.
        """
        if self._pair_members is None:
            global _pair_build_count
            _pair_build_count += 1
            pu = np.empty(self.num_pairs, dtype=np.int32)
            pv = np.empty(self.num_pairs, dtype=np.int32)
            pw = np.empty(self.num_pairs, dtype=np.int32)
            triu_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            indptr, indices, pair_indptr = self.indptr, self.indices, self.pair_indptr
            for u in range(self.num_nodes):
                lo, hi = int(pair_indptr[u]), int(pair_indptr[u + 1])
                if lo == hi:
                    continue
                row = indices[indptr[u]:indptr[u + 1]]
                d = len(row)
                if d not in triu_cache:
                    triu_cache[d] = np.triu_indices(d, k=1)
                iu, ju = triu_cache[d]
                pu[lo:hi] = u
                pv[lo:hi] = row[iu]
                pw[lo:hi] = row[ju]
            self._pair_members = (pu, pv, pw)
        return self._pair_members

    # ------------------------------------------------------------ set algebra
    @property
    def edge_src(self) -> np.ndarray:
        """Source node of every directed adjacency entry (``int32``, length 2E)."""
        if self._edge_src is None:
            degrees = np.diff(self.indptr)
            self._edge_src = np.repeat(
                np.arange(self.num_nodes, dtype=np.int32), degrees
            )
        return self._edge_src

    def boundary(self, members) -> set[int]:
        """``N(U) \\ U`` for a node set ``U`` — one vectorised pass over the edges.

        ``members`` is an iterable of node ids or a boolean mask over all
        nodes.
        """
        if isinstance(members, np.ndarray) and members.dtype == bool:
            mask = members
        else:
            mask = np.zeros(self.num_nodes, dtype=bool)
            member_ids = np.fromiter(members, dtype=np.int64, count=-1)
            if member_ids.size == 0:
                return set()
            mask[member_ids] = True
        hit = mask[self.edge_src] & ~mask[self.indices]
        out = np.zeros(self.num_nodes, dtype=bool)
        out[self.indices[hit]] = True
        return set(np.flatnonzero(out).tolist())

    def boundary_many(self, member_rows) -> list[set[int]]:
        """``N(U) \\ U`` for a stack of membership masks in one edge pass.

        ``member_rows`` is a ``(B, num_nodes)`` boolean array (or a sequence
        of per-run masks, e.g. the ``member_mask`` rows a stacked
        ``set_builder_many`` run produces).  Row ``b`` of the result equals
        ``boundary(member_rows[b])`` — the stacked form exists so a batched
        diagnosis pays the edge-array gather once per batch, not once per
        syndrome.
        """
        member_rows = np.asarray(member_rows, dtype=bool)
        if member_rows.ndim != 2 or member_rows.shape[1] != self.num_nodes:
            raise ValueError(
                f"expected a (B, {self.num_nodes}) boolean stack, "
                f"got shape {member_rows.shape}"
            )
        hit = member_rows[:, self.edge_src] & ~member_rows[:, self.indices]
        boundaries: list[set[int]] = []
        for row in hit:
            out = np.zeros(self.num_nodes, dtype=bool)
            out[self.indices[row]] = True
            boundaries.append(set(np.flatnonzero(out).tolist()))
        return boundaries

    # ---------------------------------------------------------------- dunders
    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"CSRAdjacency(N={self.num_nodes}, entries={self.num_entries}, "
            f"pairs={self.num_pairs})"
        )


def compile_network(network) -> CSRAdjacency:
    """Compile (once) and return the CSR adjacency of a network.

    The compiled form is cached on the network instance, so every layer that
    calls ``compile_network`` on the same object — the core algorithms, the
    experiment runners, the distributed simulator, the baselines — shares a
    single set of arrays.  Passing an existing :class:`CSRAdjacency` returns
    it unchanged, letting callers accept either representation.
    """
    if isinstance(network, CSRAdjacency):
        return network
    cached = getattr(network, "_csr_adjacency", None)
    if cached is None:
        cached = CSRAdjacency.from_network(network)
        network._csr_adjacency = cached
    return cached
