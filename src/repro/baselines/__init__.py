"""Comparator algorithms discussed in the paper's Sections 3 and 6."""

from .exhaustive import AmbiguousSyndromeError, ExhaustiveDiagnoser
from .extended_star import (
    ExtendedStar,
    ExtendedStarDiagnoser,
    ExtendedStarResult,
    build_extended_star,
)
from .yang_cycle import YangCycleDiagnoser, YangDiagnosisResult

__all__ = [
    "ExhaustiveDiagnoser",
    "AmbiguousSyndromeError",
    "YangCycleDiagnoser",
    "YangDiagnosisResult",
    "ExtendedStarDiagnoser",
    "ExtendedStarResult",
    "ExtendedStar",
    "build_extended_star",
]
