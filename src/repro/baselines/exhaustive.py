"""Exhaustive (ground-truth) fault diagnosis by consistency search.

The MM model's definition of ``δ``-diagnosability (paper Section 2) is that a
syndrome produced by at most ``δ`` faults is consistent with exactly one fault
set of size at most ``δ``.  This baseline enumerates all candidate fault sets
up to the given size and keeps the consistent ones.  It is exponential in the
fault bound and is therefore only usable on small instances, where it serves
as the ground truth against which every other algorithm (including the
paper's) is validated, and as the reference implementation of the
diagnosability definition.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.syndrome import Syndrome
from ..core.verification import consistent_fault_sets
from ..networks.base import InterconnectionNetwork

__all__ = ["AmbiguousSyndromeError", "ExhaustiveDiagnoser"]


class AmbiguousSyndromeError(RuntimeError):
    """Raised when several fault sets of admissible size explain the syndrome.

    By definition this cannot happen when the number of faults is at most the
    diagnosability; it does happen when the bound is exceeded (e.g. the
    minimum-degree argument of Section 2) and the error carries the competing
    candidates so tests can inspect them.
    """

    def __init__(self, candidates: list[frozenset[int]]) -> None:
        super().__init__(
            f"{len(candidates)} fault sets are consistent with the syndrome"
        )
        self.candidates = candidates


@dataclass
class ExhaustiveDiagnoser:
    """Ground-truth diagnoser: search all fault sets of size at most ``max_faults``.

    Parameters
    ----------
    network:
        The interconnection network.
    max_faults:
        Upper bound on the fault-set size (defaults to the network's
        diagnosability).
    """

    network: InterconnectionNetwork
    max_faults: int | None = None

    def diagnose(self, syndrome: Syndrome) -> frozenset[int]:
        """The unique consistent fault set of size at most ``max_faults``.

        Raises
        ------
        AmbiguousSyndromeError
            If more than one candidate is consistent.
        ValueError
            If no candidate is consistent (the syndrome was not produced by at
            most ``max_faults`` faults under the MM model).
        """
        bound = self.max_faults
        if bound is None:
            bound = self.network.diagnosability()
        # consistent_fault_sets compiles the topology once (memoized on the
        # instance), so enumerating many candidates shares one adjacency.
        candidates = consistent_fault_sets(self.network, syndrome, bound)
        if not candidates:
            raise ValueError("no fault set of admissible size is consistent with the syndrome")
        if len(candidates) > 1:
            raise AmbiguousSyndromeError(candidates)
        return candidates[0]
