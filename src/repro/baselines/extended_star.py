"""Extended-star local diagnosis, in the spirit of Chiang & Tan [8].

The paper's Section 3 describes Chiang & Tan's approach: every node ``x`` is
diagnosed individually by examining only the tests performed inside an
*extended star* rooted at ``x`` — a collection of node-disjoint branches
hanging off ``x`` (the paper's Fig. 2) — giving an ``O(Δ·N)`` algorithm that,
unlike the paper's, must consult essentially the whole syndrome table and
must construct an extended star at every node.

The precise decision rule of [8] is not part of the reproduced text, so this
module implements a documented reconstruction (DESIGN.md §4.2) that keeps the
two properties the paper's Section 6 comparison relies on — per-node local
work bounded by ``O(Δ)`` branches of constant depth, and consultation of the
full syndrome table — and is validated for output correctness against the
exhaustive baseline and the injected fault sets:

1. **Extended star construction** (:func:`build_extended_star`): greedily grow
   up to ``deg(x)`` node-disjoint branches ``x – a – b – c – d``.
2. **Local counting rule**: for each branch, the smallest number of faults on
   the branch consistent with the observed tests is computed twice — under
   the hypothesis "``x`` healthy" and under "``x`` faulty" (a 16-way
   enumeration of the branch's health states).  Summing over branches gives a
   lower bound on the total fault count implied by each hypothesis; a
   hypothesis whose implied count exceeds the fault bound ``δ`` is refuted.
   If exactly one hypothesis survives, ``x`` is labelled accordingly.
3. **Propagation pass**: nodes whose local evidence is ambiguous are resolved
   exactly as in the paper's own framework — a labelled-healthy tester with a
   labelled-healthy co-witness diagnoses any third neighbour with a single
   test.  Any node still unresolved is labelled faulty (it is separated from
   the certified healthy region, which under the Theorem 1 hypotheses means
   it lies in the fault set or in a healthy pocket already cut off by
   faults).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import product

from ..backend.csr import compile_network
from ..core.syndrome import Syndrome
from ..networks.base import InterconnectionNetwork

__all__ = ["ExtendedStar", "build_extended_star", "ExtendedStarResult", "ExtendedStarDiagnoser"]


@dataclass(frozen=True)
class ExtendedStar:
    """An extended star rooted at ``root``: node-disjoint branches (paths)."""

    root: int
    branches: tuple[tuple[int, ...], ...]

    @property
    def num_branches(self) -> int:
        return len(self.branches)

    def nodes(self) -> set[int]:
        """All nodes of the structure (root included)."""
        result = {self.root}
        for branch in self.branches:
            result.update(branch)
        return result


def build_extended_star(
    network: InterconnectionNetwork, root: int, *, depth: int = 4
) -> ExtendedStar:
    """Greedily build an extended star of node-disjoint branches rooted at ``root``.

    Each branch is a path of up to ``depth`` nodes starting at a distinct
    neighbour of ``root``; branches share no node (other than the root).  The
    construction is the computational step Chiang & Tan assume for free and
    whose cost the paper points out (Section 3).
    """
    # The root and all its neighbours are reserved up front so that every
    # neighbour can seed its own branch (one branch per dimension, as in the
    # paper's Fig. 2) and no branch strays through another branch's seed.
    rows = compile_network(network).rows  # sorted rows: deterministic growth order
    used: set[int] = {root}
    used.update(rows[root])
    branches: list[tuple[int, ...]] = []
    for first in rows[root]:
        branch = [first]
        current = first
        while len(branch) < depth:
            extension = next(
                (v for v in rows[current] if v not in used),
                None,
            )
            if extension is None:
                break
            branch.append(extension)
            used.add(extension)
            current = extension
        branches.append(tuple(branch))
    return ExtendedStar(root=root, branches=tuple(branches))


def _branch_tests(
    network: InterconnectionNetwork, syndrome: Syndrome, root: int, branch: tuple[int, ...]
) -> list[tuple[int, int, int, int]]:
    """The chain tests along a branch: ``s_{p_i}(p_{i-1}, p_{i+1})`` with ``p_0 = root``.

    Returns tuples ``(tester, left, right, result)``.
    """
    path = (root,) + branch
    tests = []
    for i in range(1, len(path) - 1):
        tester, left, right = path[i], path[i - 1], path[i + 1]
        tests.append((tester, left, right, syndrome.lookup(tester, left, right)))
    return tests


def _min_branch_faults(
    branch: tuple[int, ...],
    tests: list[tuple[int, int, int, int]],
    root: int,
    root_faulty: bool,
) -> int:
    """Minimum number of faults among the branch nodes consistent with the tests.

    Enumerates the health states of the branch nodes (at most ``2^4``) and
    keeps assignments in which every *healthy* tester's recorded result obeys
    the MM rule given the root's hypothesised state.
    """
    best = len(branch) + 1
    for assignment in product((False, True), repeat=len(branch)):
        faulty = {node: state for node, state in zip(branch, assignment)}
        faulty[root] = root_faulty

        def is_faulty(node: int) -> bool:
            return faulty[node]

        consistent = True
        for tester, left, right, result in tests:
            if is_faulty(tester):
                continue  # arbitrary result: no constraint
            expected = 1 if (is_faulty(left) or is_faulty(right)) else 0
            if result != expected:
                consistent = False
                break
        if consistent:
            best = min(best, sum(assignment))
    return best


@dataclass
class ExtendedStarResult:
    """Outcome of the extended-star diagnoser."""

    faulty: frozenset[int]
    healthy: frozenset[int]
    locally_decided: int
    propagated: int
    defaulted: int
    lookups: int


class ExtendedStarDiagnoser:
    """Per-node local diagnosis over extended stars (Chiang & Tan style)."""

    def __init__(
        self,
        network: InterconnectionNetwork,
        *,
        max_faults: int | None = None,
        branch_depth: int = 4,
    ) -> None:
        self.network = network
        self.max_faults = network.diagnosability() if max_faults is None else int(max_faults)
        self.branch_depth = branch_depth

    # -------------------------------------------------------------- local rule
    def classify_locally(self, syndrome: Syndrome, x: int) -> str:
        """Local verdict for node ``x``: ``"healthy"``, ``"faulty"`` or ``"ambiguous"``."""
        star = build_extended_star(self.network, x, depth=self.branch_depth)
        cost_if_healthy = 0
        cost_if_faulty = 1  # x itself
        for branch in star.branches:
            tests = _branch_tests(self.network, syndrome, x, branch)
            cost_if_healthy += _min_branch_faults(branch, tests, x, root_faulty=False)
            cost_if_faulty += _min_branch_faults(branch, tests, x, root_faulty=True)
        healthy_feasible = cost_if_healthy <= self.max_faults
        faulty_feasible = cost_if_faulty <= self.max_faults
        if healthy_feasible and not faulty_feasible:
            return "healthy"
        if faulty_feasible and not healthy_feasible:
            return "faulty"
        return "ambiguous"

    # ---------------------------------------------------------------- diagnosis
    def diagnose(self, syndrome: Syndrome) -> ExtendedStarResult:
        """Diagnose every node of the network."""
        network = self.network
        lookups_before = syndrome.lookups

        healthy: set[int] = set()
        faulty: set[int] = set()
        ambiguous: set[int] = set()
        for x in range(network.num_nodes):
            verdict = self.classify_locally(syndrome, x)
            if verdict == "healthy":
                healthy.add(x)
            elif verdict == "faulty":
                faulty.add(x)
            else:
                ambiguous.add(x)
        locally_decided = network.num_nodes - len(ambiguous)

        # Propagation pass for the locally ambiguous nodes.
        rows = compile_network(network).rows
        propagated = 0
        queue = deque(sorted(healthy))
        while queue:
            y = queue.popleft()
            witness = next((w for w in rows[y] if w in healthy), None)
            if witness is None:
                continue
            for z in rows[y]:
                if z == witness or z not in ambiguous:
                    continue
                ambiguous.discard(z)
                propagated += 1
                if syndrome.lookup(y, z, witness) == 0:
                    healthy.add(z)
                    queue.append(z)
                else:
                    faulty.add(z)

        # Whatever remains is unreachable from the certified healthy region.
        defaulted = len(ambiguous)
        faulty.update(ambiguous)

        return ExtendedStarResult(
            faulty=frozenset(faulty),
            healthy=frozenset(healthy),
            locally_decided=locally_decided,
            propagated=propagated,
            defaulted=defaulted,
            lookups=syndrome.lookups - lookups_before,
        )
