"""Yang's cycle-decomposition diagnosis algorithm for hypercubes [27].

The paper's Section 3 reviews Yang's hypercube-specific algorithm, which this
module reconstructs from that review (the original reference is not part of
the reproduced text; see DESIGN.md §4.3):

1. Decompose ``Q_n`` into ``2^{n-m}`` node-disjoint cycles: the Gray-code
   Hamiltonian cycles of the sub-cubes ``Q_m(v)`` obtained by fixing the
   leading ``n - m`` bits, with ``m`` minimal such that ``2^m > n`` (so each
   cycle is longer than the fault bound).  Consecutive cycles are joined by
   perfect matchings in the shape of ``Q_{n-m}`` (the paper's Fig. 1).
2. Find a *quiet* cycle: one on which ``s_x(y, z) = 0`` for every three
   consecutive nodes ``(y, x, z)``.  A quiet cycle longer than ``n``
   necessarily consists of healthy nodes.
3. Propagate outwards: a node ``y`` known to be healthy and possessing a
   known-healthy neighbour ``w`` diagnoses any third neighbour ``z`` via the
   single test ``s_y(z, w)``.  Starting from the quiet cycle this labels every
   node reachable through healthy testers; the nodes labelled faulty are the
   output.

The implementation additionally exposes the cycle decomposition itself (used
to regenerate the structure of the paper's Fig. 1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..backend.csr import compile_network
from ..core.syndrome import Syndrome
from ..networks.hypercube import Hypercube, gray_code_cycle

__all__ = ["YangDiagnosisResult", "YangCycleDiagnoser"]


@dataclass
class YangDiagnosisResult:
    """Outcome of a run of Yang's algorithm."""

    faulty: frozenset[int]
    healthy: frozenset[int]
    quiet_cycle_index: int
    cycles_scanned: int
    lookups: int
    undiagnosed: frozenset[int] = field(default_factory=frozenset)


class YangCycleDiagnoser:
    """Yang's cycle-based fault diagnosis for the hypercube ``Q_n``."""

    def __init__(self, network: Hypercube, *, sub_dimension: int | None = None) -> None:
        if not isinstance(network, Hypercube):
            raise TypeError("Yang's algorithm is specific to hypercubes")
        self.network = network
        n = network.dimension
        if sub_dimension is None:
            m = 1
            while 2**m <= n:
                m += 1
            sub_dimension = m
        if not 1 <= sub_dimension <= n:
            raise ValueError("sub-dimension out of range")
        self.sub_dimension = sub_dimension

    # ------------------------------------------------------------ decomposition
    def cycles(self) -> list[list[int]]:
        """The node-disjoint cycles of the decomposition (paper Fig. 1)."""
        n, m = self.network.dimension, self.sub_dimension
        base_cycle = gray_code_cycle(m)
        cycles = []
        for prefix in range(2 ** (n - m)):
            offset = prefix << m
            cycles.append([offset | node for node in base_cycle])
        return cycles

    # ---------------------------------------------------------------- diagnosis
    def _cycle_is_quiet(self, cycle: list[int], syndrome: Syndrome) -> bool:
        length = len(cycle)
        for i in range(length):
            y = cycle[(i - 1) % length]
            x = cycle[i]
            z = cycle[(i + 1) % length]
            if syndrome.lookup(x, y, z) != 0:
                return False
        return True

    def diagnose(self, syndrome: Syndrome) -> YangDiagnosisResult:
        """Diagnose the fault set from a syndrome.

        Raises ``RuntimeError`` when no quiet cycle exists, which cannot
        happen when the number of faults is at most ``n`` and the cycles
        outnumber the faults (the algorithm's precondition).
        """
        network = self.network
        lookups_before = syndrome.lookups
        cycles = self.cycles()

        quiet_index = None
        for index, cycle in enumerate(cycles):
            if self._cycle_is_quiet(cycle, syndrome):
                quiet_index = index
                break
        if quiet_index is None:
            raise RuntimeError(
                "no quiet cycle found: the fault set exceeds the algorithm's precondition"
            )

        healthy: set[int] = set(cycles[quiet_index])
        faulty: set[int] = set()
        diagnosed = set(healthy)

        # Worklist of healthy nodes whose neighbours may still need diagnosing.
        rows = compile_network(network).rows
        queue = deque(sorted(healthy))
        while queue:
            y = queue.popleft()
            # A healthy tester needs a known-healthy co-witness.
            witness = next((w for w in rows[y] if w in healthy), None)
            if witness is None:
                continue
            for z in rows[y]:
                if z in diagnosed or z == witness:
                    continue
                if syndrome.lookup(y, z, witness) == 0:
                    healthy.add(z)
                    diagnosed.add(z)
                    queue.append(z)
                else:
                    faulty.add(z)
                    diagnosed.add(z)

        undiagnosed = frozenset(range(network.num_nodes)) - diagnosed
        return YangDiagnosisResult(
            faulty=frozenset(faulty),
            healthy=frozenset(healthy),
            quiet_cycle_index=quiet_index,
            cycles_scanned=quiet_index + 1,
            lookups=syndrome.lookups - lookups_before,
            undiagnosed=undiagnosed,
        )
