"""Command-line interface.

Seven sub-commands cover the common workflows:

``repro-diagnose diagnose``
    Inject a fault set into a chosen network, generate the MM-model syndrome
    and run the paper's algorithm, printing the diagnosis and its cost.
    ``--shards K`` runs the final network-sized ``Set_Builder`` sharded over
    partition-class-aligned node ranges, and ``--workers W`` expands those
    shards on a shared-memory worker pool (:mod:`repro.parallel`).

``repro-diagnose survey``
    Run one diagnosis on every family of the paper's Section 5 and print a
    summary table (a quick end-to-end health check of the reproduction).

``repro-diagnose distributed``
    Run the event-driven distributed protocol engine — concurrent roots,
    per-link latency, message loss/duplication, optional replayable trace —
    and compare its cost against the extended-star gossip on the same
    channel.

``repro-diagnose properties``
    Print the structural properties (degree, diagnosability, connectivity)
    of a chosen network instance and whether Theorem 1 applies.

``repro-diagnose serve``
    Run the asyncio diagnosis service (:mod:`repro.service`) over a stream
    of requests — a JSONL file or a seeded demo mix — with request
    coalescing, a bounded topology cache, an optional persistent result
    store (TTL/row-bounded via ``--store-ttl``/``--store-max-rows``) and an
    optional worker pool, then print the ``stats`` snapshot.  With
    ``--http PORT`` it becomes the HTTP/JSON frontend instead (``POST
    /diagnose``, ``GET /stats``, ``GET /healthz``), shedding with 429 once
    ``--max-queue`` requests are queued, until SIGINT/SIGTERM drains it.
    ``--fabric-port N`` additionally accepts remote fabric workers
    (:mod:`repro.fabric`): live workers execute the service's batches over
    a framed-socket protocol with lease/retry/requeue recovery, and the
    local path serves as fallback while none are connected.

``repro-diagnose worker``
    Run one remote fabric worker: connect to a ``serve --fabric-port``
    coordinator (``--connect HOST:PORT``), heartbeat, and execute leased
    batches through the exact in-process batch path (bit-identical
    results).  ``--loss-rate``/``--duplicate-rate``/``--latency`` inject
    seeded data-plane faults for chaos testing.

``repro-diagnose load``
    Seeded closed-loop load generator: ``--clients N`` clients each issue
    ``--requests M`` requests against a freshly built service; reports
    throughput, latency percentiles and coalescing/cache evidence, with
    ``--naive`` and ``--compare`` baselines and ``--verify`` checking every
    answer against the direct pipeline.  ``--http URL`` drives the same
    closed-loop load over the wire against a running ``serve --http``
    frontend, counting (and retrying) 429-shed requests.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.reporting import format_table
from .core.diagnosis import GeneralDiagnoser
from .core.faults import clustered_faults, random_faults
from .core.syndrome import generate_syndrome, syndrome_table_size
from .networks.properties import verify_theorem1_preconditions
from .networks.registry import FAMILIES, available_families, cached_network

__all__ = ["main", "build_parser"]


def _parse_params(pairs: list[str]) -> dict[str, int]:
    params = {}
    for pair in pairs:
        if "=" not in pair:
            raise argparse.ArgumentTypeError(f"parameter {pair!r} must have the form name=value")
        key, value = pair.split("=", 1)
        params[key] = int(value)
    return params


def _parse_instance(spec: str) -> tuple[str, dict[str, int]]:
    """Parse ``family`` or ``family:name=value,name=value`` mix entries."""
    family, _, rest = spec.partition(":")
    if family not in available_families():
        raise SystemExit(
            f"unknown network family {family!r} in instance {spec!r}; "
            f"available: {', '.join(available_families())}"
        )
    if not rest:
        return family, dict(FAMILIES[family].small)
    try:
        params = _parse_params(rest.split(","))
    except argparse.ArgumentTypeError as exc:
        raise SystemExit(f"bad instance {spec!r}: {exc}")
    return family, params


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro-diagnose`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-diagnose",
        description="Fault diagnosis under the comparison (MM) model — Stewart (IPDPS 2010)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    diag = sub.add_parser("diagnose", help="diagnose an injected fault set on one network")
    diag.add_argument("--family", choices=available_families(), default="hypercube")
    diag.add_argument("--param", action="append", default=[], metavar="NAME=VALUE",
                      help="network constructor parameter (repeatable), e.g. dimension=10")
    diag.add_argument("--faults", type=int, default=None,
                      help="number of faults to inject (default: the diagnosability)")
    diag.add_argument("--placement", choices=["random", "clustered"], default="random")
    diag.add_argument("--behavior", default="random",
                      choices=["random", "all_zero", "all_one", "mimic", "anti_mimic"],
                      help="how faulty testers answer their comparison tests")
    diag.add_argument("--seed", type=int, default=0)
    diag.add_argument("--syndrome", choices=["array", "lazy", "table"], default="array",
                      help="syndrome realisation: flat-array backend (default), lazy "
                           "on-demand, or dict table")
    diag.add_argument("--uncompiled", action="store_true",
                      help="run the object-based reference path instead of the "
                           "compiled flat-array backend (for A/B comparison)")
    diag.add_argument("--shards", type=int, default=None, metavar="K",
                      help="run the final Set_Builder sharded over K contiguous "
                           "partition-class-aligned node ranges")
    diag.add_argument("--workers", type=int, default=None, metavar="W",
                      help="with --shards: expand the shards on a W-process pool "
                           "mapping the topology out of shared memory "
                           "(default: in-process shard execution)")

    dist = sub.add_parser(
        "distributed",
        help="run the event-driven distributed protocol engine on one network",
    )
    dist.add_argument("--family", choices=available_families(), default="hypercube")
    dist.add_argument("--param", action="append", default=[], metavar="NAME=VALUE",
                      help="network constructor parameter (repeatable), e.g. dimension=8")
    dist.add_argument("--faults", type=int, default=None,
                      help="number of faults to inject (default: the diagnosability)")
    dist.add_argument("--placement", choices=["random", "clustered"], default="random")
    dist.add_argument("--behavior", default="random",
                      choices=["random", "all_zero", "all_one", "mimic", "anti_mimic"])
    dist.add_argument("--seed", type=int, default=0)
    dist.add_argument("--roots", type=int, default=1,
                      help="number of concurrent known-healthy start nodes")
    dist.add_argument("--loss-rate", type=float, default=0.0,
                      help="per-transmission message-loss probability")
    dist.add_argument("--duplicate-rate", type=float, default=0.0,
                      help="per-transmission duplicate-delivery probability")
    dist.add_argument("--latency", default="fixed:1", metavar="SPEC",
                      help="per-link latency distribution: fixed:K or uniform:A:B")
    dist.add_argument("--radius", type=int, default=3,
                      help="extended-star gossip radius for the comparison row")
    dist.add_argument("--trace", metavar="PATH", default=None,
                      help="write the replayable event log to PATH")

    serve = sub.add_parser(
        "serve",
        help="run the batched diagnosis service over a request stream "
             "or as an HTTP frontend",
    )
    serve.add_argument("--requests", metavar="PATH", default=None,
                       help="JSONL request file (one JSON object per line with "
                            "family/params/placement/fault_count/behavior/seed); "
                            "default: a seeded built-in demo mix")
    serve.add_argument("--demo-requests", type=int, default=12,
                       help="size of the built-in demo mix when no --requests "
                            "file is given")
    serve.add_argument("--http", type=int, default=None, metavar="PORT",
                       help="serve HTTP/JSON on PORT instead of a request "
                            "stream (0 picks an ephemeral port); endpoints: "
                            "POST /diagnose, GET /stats, GET /metrics, "
                            "GET /dashboard, GET /healthz; "
                            "runs until SIGINT/SIGTERM, then drains gracefully")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for --http (default: 127.0.0.1)")
    serve.add_argument("--ready-file", metavar="PATH", default=None,
                       help="with --http: atomically write the JSON object "
                            '{"host": ..., "port": ...} to PATH once the '
                            "listener is bound (ephemeral-port handshake)")
    serve.add_argument("--max-queue", type=int, default=None, metavar="N",
                       help="admission control: shed requests (HTTP 429 / "
                            "RejectedError) once N requests are queued "
                            "undispatched (default: unbounded)")
    serve.add_argument("--max-queue-per-tenant", type=int, default=None,
                       metavar="N",
                       help="per-tenant admission quota: shed a tenant's "
                            "requests once it has N queued undispatched "
                            "(store hits and coalesced joins never count)")
    serve.add_argument("--tenant-weight", action="append", default=[],
                       metavar="NAME=W",
                       help="fair-queueing weight of tenant NAME (positive "
                            "integer, repeatable; unnamed tenants weigh 1)")
    serve.add_argument("--workers", type=int, default=None, metavar="W",
                       help="dispatch batches over a W-process shared-memory "
                            "worker pool (default: in-process batches)")
    serve.add_argument("--store", metavar="PATH", default=None,
                       help="persist results in a SQLite store at PATH "
                            "(repeats are then served from disk)")
    serve.add_argument("--store-ttl", type=float, default=None, metavar="S",
                       help="evict stored results idle longer than S seconds "
                            "(swept at batch-commit time)")
    serve.add_argument("--store-max-rows", type=int, default=None, metavar="N",
                       help="bound the store to N result rows, evicting "
                            "least-recently-used rows at batch-commit time")
    serve.add_argument("--cache-capacity", type=int, default=16,
                       help="bound of the compiled-topology LRU cache")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="dispatch a batch once this many requests coalesced")
    serve.add_argument("--batch-delay-ms", type=float, default=2.0,
                       help="coalescing window in milliseconds")
    serve.add_argument("--stats-json", metavar="PATH", default=None,
                       help="write the service stats snapshot to PATH as JSON "
                            "(atomically: temp file + rename)")
    serve.add_argument("--fabric-port", type=int, default=None, metavar="PORT",
                       help="with --http: also accept remote fabric workers "
                            "on PORT (0 picks an ephemeral port); batches "
                            "dispatch to live workers, falling back to the "
                            "local path while none are connected")
    serve.add_argument("--lease-timeout", type=float, default=10.0,
                       metavar="S",
                       help="with --fabric-port: seconds an unanswered batch "
                            "lease waits before retry (default: 10)")
    serve.add_argument("--heartbeat-interval", type=float, default=1.0,
                       metavar="S",
                       help="with --fabric-port: worker heartbeat interval; "
                            "a worker silent for 3 intervals is declared "
                            "dead and its leases requeue (default: 1)")

    worker = sub.add_parser(
        "worker",
        help="run a remote fabric worker attached to a 'serve --fabric-port' "
             "coordinator",
    )
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="the coordinator's fabric endpoint")
    worker.add_argument("--id", default=None, metavar="NAME",
                        help="stable worker identity across reconnects "
                             "(default: worker-<pid>)")
    worker.add_argument("--ready-file", metavar="PATH", default=None,
                        help="atomically write {\"worker\": ..., \"pid\": ...} "
                             "to PATH once the coordinator welcomed us")
    worker.add_argument("--cache-capacity", type=int, default=8,
                        help="bound of the worker-local compiled-topology LRU")
    worker.add_argument("--loss-rate", type=float, default=0.0,
                        help="fault injection: drop each data-plane frame "
                             "(lease in, result out) with this probability")
    worker.add_argument("--duplicate-rate", type=float, default=0.0,
                        help="fault injection: deliver each surviving "
                             "data-plane frame twice with this probability")
    worker.add_argument("--latency", default="fixed:1", metavar="SPEC",
                        help="fault injection: link latency spec "
                             "('fixed:K' or 'uniform:A:B', rounds; "
                             "'fixed:1' = no added delay)")
    worker.add_argument("--delay-unit-ms", type=float, default=10.0,
                        help="milliseconds per latency round above the first")
    worker.add_argument("--fault-seed", type=int, default=0,
                        help="seed of the injected fault pattern")

    load = sub.add_parser(
        "load",
        help="closed-loop load generator against a freshly built service",
    )
    load.add_argument("--clients", type=int, default=4,
                      help="number of concurrent closed-loop clients")
    load.add_argument("--requests", type=int, default=8,
                      help="requests issued per client")
    load.add_argument("--instance", action="append", default=[], metavar="SPEC",
                      help="mix entry 'family' or 'family:name=value,...' "
                           "(repeatable; default: hypercube:dimension=8 + star:n=6)")
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--seed-pool", type=int, default=8,
                      help="distinct syndrome seeds per topology (small pools "
                           "produce repeats, exercising coalescing and the store)")
    load.add_argument("--tenant", default=None, metavar="NAME",
                      help="bill every generated request to tenant NAME "
                           "(default: the 'default' tenant)")
    load.add_argument("--http", metavar="URL", default=None,
                      help="drive the load over the wire against a running "
                           "'serve --http' frontend at URL (http://host:port); "
                           "429-shed requests are counted and retried")
    load.add_argument("--fairness", action="store_true",
                      help="run the adversarial multi-tenant mix instead: one "
                           "hot tenant bursting open-loop against a per-tenant "
                           "quota while cold tenants trickle closed-loop; "
                           "fails unless every cold request completes")
    load.add_argument("--hot-requests", type=int, default=32, metavar="N",
                      help="with --fairness: size of the hot tenant's burst")
    load.add_argument("--cold-tenants", type=int, default=4, metavar="N",
                      help="with --fairness: number of cold tenants")
    load.add_argument("--cold-requests", type=int, default=4, metavar="N",
                      help="with --fairness: closed-loop requests per cold tenant")
    load.add_argument("--tenant-quota", type=int, default=4, metavar="N",
                      help="with --fairness: the per-tenant admission quota "
                           "the hot burst slams into")
    load.add_argument("--expect-rejections", type=int, default=None, metavar="N",
                      help="with --http: exit nonzero unless at least N "
                           "requests were shed with 429 before being served")
    load.add_argument("--workers", type=int, default=None, metavar="W",
                      help="dispatch batches over a W-process pool")
    load.add_argument("--store", metavar="PATH", default=None,
                      help="SQLite result store path ('' for in-memory); "
                           "default: in-memory store")
    load.add_argument("--naive", action="store_true",
                      help="serve one-at-a-time with no coalescing/caching "
                           "(the baseline) instead of the batched service")
    load.add_argument("--compare", action="store_true",
                      help="run naive then batched and report the speedup")
    load.add_argument("--verify", action="store_true",
                      help="check every response against the direct pipeline")
    load.add_argument("--expect-coalesced", type=int, default=None, metavar="N",
                      help="exit nonzero unless at least N coalesced batches ran")
    load.add_argument("--expect-store-hits", type=int, default=None, metavar="N",
                      help="exit nonzero unless at least N requests were served "
                           "from the result store")
    load.add_argument("--stats-json", metavar="PATH", default=None,
                      help="write the load report (summary + stats) to PATH")

    survey = sub.add_parser("survey", help="diagnose one instance of every family")
    survey.add_argument("--size", choices=["small", "medium"], default="small")
    survey.add_argument("--seed", type=int, default=0)

    props = sub.add_parser("properties", help="structural properties of one network")
    props.add_argument("--family", choices=available_families(), default="hypercube")
    props.add_argument("--param", action="append", default=[], metavar="NAME=VALUE")
    props.add_argument("--exact-connectivity", action="store_true",
                       help="compute the exact vertex connectivity (slow on large instances)")

    # "lint" is dispatched in main() before this parser runs (its argv is
    # forwarded verbatim to repro.analysis, whose own parser owns the
    # flags); registered here only so it shows in --help.
    sub.add_parser(
        "lint",
        help="run the codebase-aware static analyzer (python -m repro.analysis)",
    )
    return parser


def _cmd_diagnose(args: argparse.Namespace) -> int:
    # Flag-combination errors must surface before the (possibly huge)
    # topology is built or its syndrome generated.
    if args.workers is not None and args.shards is None:
        raise SystemExit("--workers requires --shards")
    if args.shards is not None:
        if args.shards < 1:
            raise SystemExit("--shards must be at least 1")
        if args.workers is not None and args.workers < 1:
            raise SystemExit("--workers must be at least 1")
        if args.uncompiled or args.syndrome != "array":
            raise SystemExit(
                "--shards needs the compiled backend and the array syndrome "
                "(drop --uncompiled / use --syndrome array)"
            )

    params = _parse_params(args.param)
    if not params:
        params = dict(FAMILIES[args.family].small)
    network = cached_network(args.family, **params)
    delta = network.diagnosability()
    count = delta if args.faults is None else args.faults
    if args.placement == "random":
        faults = random_faults(network, count, seed=args.seed)
    else:
        faults = clustered_faults(network, count, seed=args.seed)
    syndrome = generate_syndrome(network, faults, behavior=args.behavior, seed=args.seed,
                                 backend=args.syndrome)
    pool = None
    sharder = None
    if args.shards is not None:
        from .parallel import ShardedSetBuilder, WorkerPool

        if args.workers is not None:
            pool = WorkerPool(max_workers=args.workers)
        sharder = ShardedSetBuilder(network, num_shards=args.shards, pool=pool)
    try:
        result = GeneralDiagnoser(
            network, compiled=not args.uncompiled, sharder=sharder
        ).diagnose(syndrome)
    finally:
        if pool is not None:
            pool.shutdown()
    correct = result.faulty == faults

    print(f"network          : {args.family} {params} (N={network.num_nodes}, Δ={network.max_degree})")
    if sharder is not None:
        mode = (f"{args.workers}-process shared-memory pool"
                if args.workers is not None else "in-process")
        print(f"sharding         : {sharder.num_shards} shards "
              f"(granularity {sharder.granularity}), {mode}")
    print(f"diagnosability δ : {delta}")
    print(f"injected faults  : {sorted(faults)}")
    print(f"diagnosed faults : {sorted(result.faulty)}")
    print(f"correct          : {correct}")
    print(f"probes           : {result.num_probes}")
    print(f"syndrome lookups : {result.lookups} (full table: {syndrome_table_size(network)})")
    print(f"elapsed          : {result.elapsed_seconds * 1e3:.2f} ms")
    return 0 if correct else 1


def _cmd_distributed(args: argparse.Namespace) -> int:
    from .backend.array_syndrome import ArraySyndrome
    from .distributed import ChannelConfig, ProtocolEngine, spread_roots
    from .networks.registry import compiled_network

    params = _parse_params(args.param)
    if not params:
        params = dict(FAMILIES[args.family].small)
    network, csr = compiled_network(args.family, **params)
    count = network.diagnosability() if args.faults is None else args.faults
    if args.placement == "random":
        faults = random_faults(network, count, seed=args.seed)
    else:
        faults = clustered_faults(network, count, seed=args.seed)
    syndrome = ArraySyndrome.from_faults(csr, faults, behavior=args.behavior,
                                         seed=args.seed)
    healthy = [v for v in range(network.num_nodes) if v not in faults]
    try:
        roots = spread_roots(healthy, args.roots)
    except ValueError as exc:
        raise SystemExit(str(exc))
    config = ChannelConfig(latency=args.latency, loss_rate=args.loss_rate,
                           duplicate_rate=args.duplicate_rate, seed=args.seed)
    engine = ProtocolEngine(csr, config=config)
    outcome = engine.run_set_builder(syndrome, roots, trace=args.trace is not None)
    gossip = engine.run_gossip(args.radius)
    false_positives = sorted(outcome.faulty - faults)

    print(f"network          : {args.family} {params} (N={network.num_nodes})")
    print(f"channel          : {config.describe()}")
    print(f"roots            : {list(roots)}")
    print(f"injected faults  : {sorted(faults)}")
    print(f"diagnosed faults : {sorted(outcome.faulty)}")
    print(f"false positives  : {false_positives}")
    print(f"rounds           : {outcome.rounds} "
          f"(growth {outcome.growth_rounds} + convergecast {outcome.convergecast_rounds})")
    print(f"messages         : {outcome.messages} "
          f"(invites {outcome.invites}, accepts {outcome.accepts}, "
          f"reports {outcome.reports}, retries {outcome.retries})")
    print(f"channel faults   : drops {outcome.drops}, duplicates {outcome.duplicates}, "
          f"collisions {outcome.collisions}")
    print(f"tree             : size {outcome.tree_size}, depth {outcome.tree_depth}, "
          f"contributors {outcome.contributors}, merges {outcome.merges}")
    print(f"gossip (r={args.radius})     : {gossip.rounds} rounds, "
          f"{gossip.messages} messages "
          f"({gossip.messages / max(outcome.messages, 1):.1f}x the engine)")
    if args.trace is not None:
        _write_text_atomic(args.trace, outcome.trace.to_text())
        print(f"trace            : {len(outcome.trace)} events -> {args.trace}")
    return 0 if not false_positives else 1


def _write_json_atomic(path: str, payload) -> None:
    """Dump JSON to ``path`` via a same-directory temp file + ``os.replace``.

    CI smokes (and anything else downstream) parse these files; a crash
    mid-dump must leave either the previous content or the new content,
    never truncated JSON.
    """
    import json

    _write_text_atomic(path, json.dumps(payload, indent=2))


def _write_text_atomic(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file + rename,
    fsyncing both the file and its directory, so downstream readers (trace
    differs, CI smokes) never observe a torn artifact."""
    import os
    import tempfile

    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
        # The rename itself lives in the directory entry: without fsyncing
        # the directory, a crash can lose the replace and resurrect the old
        # file even though the data blocks were flushed above.
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def _demo_requests(count: int):
    """The built-in ``serve`` demo mix (seeded, includes repeats)."""
    from .service import DiagnosisRequest

    mix = (("hypercube", {"dimension": 7}), ("star", {"n": 6}))
    return [
        DiagnosisRequest.seeded(
            *mix[i % len(mix)], seed=(i // len(mix)) % max(1, count // 3)
        )
        for i in range(count)
    ]


def _read_requests_file(path: str):
    import json

    from .service import DiagnosisRequest

    requests = []
    try:
        with open(path) as fh:
            for number, line in enumerate(fh, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    requests.append(DiagnosisRequest.from_dict(json.loads(line)))
                except (ValueError, TypeError) as exc:
                    raise SystemExit(f"{path}:{number}: bad request: {exc}")
    except OSError as exc:
        raise SystemExit(f"cannot read requests file: {exc}")
    if not requests:
        raise SystemExit(f"{path}: no requests found")
    return requests


def _parse_tenant_weights(entries: list) -> dict | None:
    """``NAME=W`` pairs from repeated ``--tenant-weight`` flags."""
    from .service import validate_tenant

    if not entries:
        return None
    weights: dict[str, int] = {}
    for entry in entries:
        name, separator, value = entry.partition("=")
        if not separator or not name:
            raise SystemExit(
                f"--tenant-weight takes NAME=W, got {entry!r}"
            )
        try:
            validate_tenant(name)
        except ValueError as exc:
            raise SystemExit(f"--tenant-weight {entry!r}: {exc}")
        if not value.isdigit() or int(value) < 1:
            raise SystemExit(
                f"--tenant-weight {entry!r}: weight must be a positive integer"
            )
        weight = int(value)
        if name in weights:
            raise SystemExit(f"--tenant-weight names {name!r} twice")
        weights[name] = weight
    return weights


def _validate_serve_args(args: argparse.Namespace) -> None:
    if args.workers is not None and args.workers < 1:
        raise SystemExit("--workers must be at least 1")
    if args.cache_capacity < 0:
        raise SystemExit("--cache-capacity must be non-negative")
    if args.max_batch < 1:
        raise SystemExit("--max-batch must be at least 1")
    if args.batch_delay_ms < 0:
        raise SystemExit("--batch-delay-ms must be non-negative")
    if args.max_queue is not None and args.max_queue < 1:
        raise SystemExit("--max-queue must be at least 1")
    if args.max_queue_per_tenant is not None and args.max_queue_per_tenant < 1:
        raise SystemExit("--max-queue-per-tenant must be at least 1")
    if args.store_ttl is not None and args.store_ttl <= 0:
        raise SystemExit("--store-ttl must be positive")
    if args.store_max_rows is not None and args.store_max_rows < 1:
        raise SystemExit("--store-max-rows must be at least 1")
    if args.store is None and (args.store_ttl is not None
                               or args.store_max_rows is not None):
        raise SystemExit("--store-ttl/--store-max-rows need --store")
    if args.http is not None:
        if not 0 <= args.http <= 65535:
            raise SystemExit("--http PORT must be within 0..65535")
        if args.requests is not None:
            raise SystemExit("--http serves network clients; drop --requests")
    elif args.ready_file is not None:
        raise SystemExit("--ready-file only makes sense with --http")
    elif args.fabric_port is not None:
        raise SystemExit("--fabric-port only makes sense with --http")
    if args.fabric_port is not None and not 0 <= args.fabric_port <= 65535:
        raise SystemExit("--fabric-port must be within 0..65535")
    if args.lease_timeout <= 0:
        raise SystemExit("--lease-timeout must be positive")
    if args.heartbeat_interval <= 0:
        raise SystemExit("--heartbeat-interval must be positive")


def _make_store(args: argparse.Namespace):
    from .service import ResultStore

    if args.store is None:
        return None
    return ResultStore(
        args.store, ttl_seconds=args.store_ttl, max_rows=args.store_max_rows
    )


def _serve_http(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .service import DiagnosisService, HttpFrontend

    pool = None
    if args.workers is not None:
        from .parallel import WorkerPool

        pool = WorkerPool(max_workers=args.workers)
    store = _make_store(args)

    async def _run() -> dict:
        service = DiagnosisService(
            pool=pool,
            max_batch_size=args.max_batch,
            batch_delay=args.batch_delay_ms / 1e3,
            topology_cache_capacity=args.cache_capacity,
            store=store,
            max_queue_depth=args.max_queue,
            max_queue_per_tenant=args.max_queue_per_tenant,
            tenant_weights=_parse_tenant_weights(args.tenant_weight),
        )
        coordinator = None
        if args.fabric_port is not None:
            from .fabric import FabricCoordinator

            coordinator = FabricCoordinator(
                host=args.host,
                port=args.fabric_port,
                metrics=service.metrics,
                heartbeat_interval=args.heartbeat_interval,
                lease_timeout=args.lease_timeout,
            )
            await coordinator.start()
            service.remote = coordinator
            print(f"fabric workers welcome on {coordinator.address}",
                  flush=True)
        frontend = HttpFrontend(service, host=args.host, port=args.http)
        await frontend.start()
        print(f"listening on {frontend.address} "
              f"(max queue {args.max_queue or 'unbounded'}, "
              f"store {args.store or 'none'})", flush=True)
        if args.ready_file is not None:
            ready = {"host": args.host, "port": frontend.port}
            if coordinator is not None:
                ready["fabric_port"] = coordinator.port
            _write_json_atomic(args.ready_file, ready)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        print("shutting down: draining in-flight requests", flush=True)
        await frontend.close()
        await service.close()
        if coordinator is not None:
            await coordinator.close()
        stats = service.stats()
        stats["http"] = frontend.stats()
        return stats

    try:
        stats = asyncio.run(_run())
    finally:
        if pool is not None:
            pool.shutdown()
        if store is not None:
            store.close()
    print(f"served {stats['http']['requests']} HTTP requests "
          f"({stats['http']['shed']} shed with 429, "
          f"{stats['http']['client_errors']} client errors) over "
          f"{stats['http']['connections_total']} connections")
    if args.stats_json is not None:
        _write_json_atomic(args.stats_json, stats)
        print(f"stats -> {args.stats_json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    _validate_serve_args(args)
    if args.http is not None:
        return _serve_http(args)
    if args.requests is not None:
        requests = _read_requests_file(args.requests)
    else:
        if args.demo_requests < 1:
            raise SystemExit("--demo-requests must be at least 1")
        requests = _demo_requests(args.demo_requests)

    from .service import DiagnosisService
    from .service.executor import validate_request

    for request in requests:
        try:
            validate_request(request)
        except ValueError as exc:
            raise SystemExit(str(exc))

    pool = None
    if args.workers is not None:
        from .parallel import WorkerPool

        pool = WorkerPool(max_workers=args.workers)
    store = _make_store(args)

    async def _serve():
        async with DiagnosisService(
            pool=pool,
            max_batch_size=args.max_batch,
            batch_delay=args.batch_delay_ms / 1e3,
            topology_cache_capacity=args.cache_capacity,
            store=store,
            max_queue_depth=args.max_queue,
            max_queue_per_tenant=args.max_queue_per_tenant,
            tenant_weights=_parse_tenant_weights(args.tenant_weight),
        ) as service:
            responses = await service.submit_many(requests)
            return responses, service.stats()

    from .service import RejectedError

    try:
        responses, stats = asyncio.run(_serve())
    except RejectedError as exc:
        # A JSONL stream submits everything at once, so a tight --max-queue
        # sheds part of its own input — an operator error, not a crash.
        raise SystemExit(
            f"request shed by admission control: {exc} "
            f"(the stream submits all requests at once; raise --max-queue)"
        )
    except (ValueError, TypeError) as exc:
        # e.g. a params name the constructor rejects, only detectable once
        # the topology is actually built.
        raise SystemExit(f"request failed: {exc}")
    finally:
        if pool is not None:
            pool.shutdown()
        if store is not None:
            store.close()

    for request, response in zip(requests, responses):
        status = f"{len(response.faulty)} faults" if response.ok else response.error
        print(f"{request.describe():<55} -> {status:<20} "
              f"[{response.source}, batch={response.batch_size}, "
              f"{response.elapsed_seconds * 1e3:.1f} ms]")
    print(f"\nserved {stats['requests']} requests: "
          f"{stats['computed']} computed in {stats['batches']} batches "
          f"({stats['coalesced_batches']} coalesced), "
          f"{stats['store_hits']} from store, "
          f"{stats['coalesced_duplicates']} coalesced duplicates")
    print(f"worker compiles: {stats['worker_compiles']}, "
          f"pair builds: {stats['worker_pair_builds']}, "
          f"topology cache: {stats['topology_cache']}")
    if args.stats_json is not None:
        _write_json_atomic(args.stats_json, stats)
        print(f"stats -> {args.stats_json}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import asyncio
    import os
    import signal

    from .fabric import run_worker
    from .service.http import parse_http_target

    try:
        host, port = parse_http_target(args.connect)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.cache_capacity < 0:
        raise SystemExit("--cache-capacity must be non-negative")
    if args.delay_unit_ms < 0:
        raise SystemExit("--delay-unit-ms must be non-negative")

    fault_config = None
    if args.loss_rate or args.duplicate_rate or args.latency != "fixed:1":
        from .distributed.events import ChannelConfig

        try:
            fault_config = ChannelConfig(
                latency=args.latency,
                loss_rate=args.loss_rate,
                duplicate_rate=args.duplicate_rate,
                seed=args.fault_seed,
            )
        except ValueError as exc:
            raise SystemExit(str(exc))

    def _on_ready(worker) -> None:
        print(f"worker {worker.worker_id} joined {host}:{port} "
              f"(generation {worker.generation})", flush=True)
        if args.ready_file is not None:
            _write_json_atomic(
                args.ready_file,
                {"worker": worker.worker_id, "pid": os.getpid(),
                 "generation": worker.generation},
            )

    async def _run():
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        return await run_worker(
            host, port,
            worker_id=args.id,
            fault_config=fault_config,
            delay_unit=args.delay_unit_ms / 1e3,
            topology_cache_capacity=args.cache_capacity,
            ready=_on_ready,
            stop=stop,
        )

    try:
        worker = asyncio.run(_run())
    except ConnectionError as exc:
        raise SystemExit(f"worker: {exc}")
    print(f"worker {worker.worker_id} done: "
          f"{worker.leases_received} leases received, "
          f"{worker.leases_served} served, "
          f"{worker.leases_dropped} dropped by fault injection")
    return 0


def _cmd_load_fairness(args: argparse.Namespace) -> int:
    """The adversarial multi-tenant mix (``load --fairness``).

    Runs the hot-burst-vs-cold-trickle scenario twice with the same seed and
    insists the shed splits agree byte for byte — admission decisions must be
    a pure function of submission order — then gates on 100% cold-tenant
    completion.
    """
    import json

    for flag, present in (("--http", args.http is not None),
                          ("--naive", args.naive),
                          ("--compare", args.compare),
                          ("--verify", args.verify),
                          ("--workers", args.workers is not None),
                          ("--store", args.store is not None),
                          ("--tenant", args.tenant is not None)):
        if present:
            raise SystemExit(f"--fairness runs its own in-process scenario; "
                             f"drop {flag}")
    for name, value in (("--hot-requests", args.hot_requests),
                        ("--cold-tenants", args.cold_tenants),
                        ("--cold-requests", args.cold_requests),
                        ("--tenant-quota", args.tenant_quota)):
        if value < 1:
            raise SystemExit(f"{name} must be at least 1")

    mix = [_parse_instance(spec) for spec in args.instance] or [
        ("hypercube", {"dimension": 8}),
        ("star", {"n": 6}),
    ]
    from .service import FairnessSpec, run_fairness_sync

    spec = FairnessSpec.from_mix(
        mix,
        hot_requests=args.hot_requests,
        cold_tenants=args.cold_tenants,
        cold_requests_per_tenant=args.cold_requests,
        max_queue_per_tenant=args.tenant_quota,
        seed=args.seed,
        seed_pool=args.seed_pool,
    )
    report = run_fairness_sync(spec)
    repeat = run_fairness_sync(spec)
    summary = report.summary()
    print(f"fairness: hot tenant {summary['hot_served']}/"
          f"{summary['hot_requests']} served, {summary['hot_shed']} shed "
          f"(quota {summary['max_queue_per_tenant']}); "
          f"{summary['cold_tenants']} cold tenants "
          f"{summary['cold_requests']} requests, "
          f"completion {summary['cold_completion']:.0%} "
          f"in {summary['wall_seconds']} s")

    exit_code = 0
    first = json.dumps(report.split(), sort_keys=True)
    second = json.dumps(repeat.split(), sort_keys=True)
    if first != second:
        print("FAIL: two seeded runs shed different requests\n"
              f"  run 1: {first}\n  run 2: {second}")
        exit_code = 1
    if report.cold_completion < 1.0:
        print(f"FAIL: cold tenants completed {report.cold_completion:.0%} "
              f"of their requests (expected 100%)")
        exit_code = 1
    if report.hot_shed == 0 and args.hot_requests > args.tenant_quota:
        print("FAIL: the hot burst exceeded its quota but nothing was shed")
        exit_code = 1
    if args.stats_json is not None:
        _write_json_atomic(
            args.stats_json,
            {"fairness": summary, "split": report.split(),
             "stats": report.stats},
        )
        print(f"report -> {args.stats_json}")
    return exit_code


def _cmd_load(args: argparse.Namespace) -> int:
    if args.clients < 1:
        raise SystemExit("--clients must be at least 1")
    if args.requests < 1:
        raise SystemExit("--requests must be at least 1")
    if args.seed_pool < 1:
        raise SystemExit("--seed-pool must be at least 1")
    if args.workers is not None and args.workers < 1:
        raise SystemExit("--workers must be at least 1")
    if args.naive and args.compare:
        raise SystemExit("--naive and --compare are mutually exclusive")
    if args.fairness:
        return _cmd_load_fairness(args)
    if args.naive and args.workers is not None:
        raise SystemExit("--naive serves in-process; drop --workers")
    if args.naive and args.store is not None:
        raise SystemExit("--naive never consults a store; drop --store")
    if args.http is not None:
        # The server at URL owns the service configuration; flags that
        # would build a local service contradict the wire transport.
        for flag, present in (("--naive", args.naive),
                              ("--compare", args.compare),
                              ("--workers", args.workers is not None),
                              ("--store", args.store is not None)):
            if present:
                raise SystemExit(f"--http drives a remote server; drop {flag}")
    elif args.expect_rejections is not None:
        raise SystemExit("--expect-rejections needs --http (in-process runs "
                         "never shed: they have no admission bound)")
    mix = [_parse_instance(spec) for spec in args.instance] or [
        ("hypercube", {"dimension": 8}),
        ("star", {"n": 6}),
    ]

    from .service import DEFAULT_TENANT, LoadSpec, ResultStore, run_load_sync

    try:
        spec = LoadSpec.from_mix(
            mix,
            clients=args.clients,
            requests_per_client=args.requests,
            seed=args.seed,
            seed_pool=args.seed_pool,
            tenant=args.tenant if args.tenant is not None else DEFAULT_TENANT,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))

    def _batched_report():
        pool = None
        if args.workers is not None:
            from .parallel import WorkerPool

            pool = WorkerPool(max_workers=args.workers)
        store = ResultStore(args.store if args.store else ":memory:")
        try:
            return run_load_sync(spec, pool=pool, store=store, verify=args.verify)
        finally:
            if pool is not None:
                pool.shutdown()
            store.close()

    reports = {}
    if args.http is not None:
        from .service import HttpError, run_load_http_sync

        try:
            reports["http"] = run_load_http_sync(
                spec, args.http, verify=args.verify
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
        except (HttpError, OSError) as exc:
            raise SystemExit(f"HTTP load against {args.http} failed: {exc}")
    else:
        if args.naive or args.compare:
            reports["naive"] = run_load_sync(spec, naive=True, verify=args.verify)
        if not args.naive:
            reports["batched"] = _batched_report()

    for mode, report in reports.items():
        summary = report.summary()
        print(f"{mode}: {summary['requests']} requests / "
              f"{summary['wall_seconds']} s = {summary['throughput_rps']} req/s "
              f"(sources {summary['sources']}, errors {summary['errors']}, "
              f"rejections {summary['rejections']})")
        stats = summary["stats"]
        print(f"  batches {stats['batches']} ({stats['coalesced_batches']} coalesced, "
              f"mean size {stats['mean_batch_size']}), store hits "
              f"{stats['store_hits']}, coalesced duplicates "
              f"{stats['coalesced_duplicates']}, worker compiles "
              f"{stats['worker_compiles']}, latency p50/p99 "
              f"{stats['latency_ms'].get('p50')}/{stats['latency_ms'].get('p99')} ms")
        if args.verify:
            print(f"  verified against the direct pipeline: "
                  f"{summary['mismatches']} mismatches")
    if "naive" in reports and "batched" in reports:
        speedup = (reports["batched"].throughput_rps
                   / max(reports["naive"].throughput_rps, 1e-9))
        print(f"batched vs naive throughput: {speedup:.2f}x")

    if args.stats_json is not None:
        _write_json_atomic(
            args.stats_json,
            {mode: report.summary() for mode, report in reports.items()},
        )
        print(f"report -> {args.stats_json}")

    exit_code = 0
    primary = (reports.get("http") or reports.get("batched")
               or reports.get("naive"))
    if args.verify and any(report.mismatches for report in reports.values()):
        print("FAIL: served responses diverged from the direct pipeline")
        exit_code = 1
    if args.expect_coalesced is not None:
        coalesced = primary.stats["coalesced_batches"]
        if coalesced < args.expect_coalesced:
            print(f"FAIL: expected >= {args.expect_coalesced} coalesced batches, "
                  f"saw {coalesced}")
            exit_code = 1
    if args.expect_store_hits is not None:
        hits = primary.stats["store_hits"]
        if hits < args.expect_store_hits:
            print(f"FAIL: expected >= {args.expect_store_hits} store hits, saw {hits}")
            exit_code = 1
    if args.expect_rejections is not None:
        if primary.rejections < args.expect_rejections:
            print(f"FAIL: expected >= {args.expect_rejections} 429-shed "
                  f"requests, saw {primary.rejections}")
            exit_code = 1
    return exit_code


def _cmd_survey(args: argparse.Namespace) -> int:
    rows = []
    exit_code = 0
    for name, spec in sorted(FAMILIES.items()):
        params = spec.small if args.size == "small" else spec.medium
        network = cached_network(name, **params)
        delta = network.diagnosability()
        faults = random_faults(network, delta, seed=args.seed)
        syndrome = generate_syndrome(network, faults, seed=args.seed, backend="array")
        result = GeneralDiagnoser(network).diagnose(syndrome)
        correct = result.faulty == faults
        if not correct:
            exit_code = 1
        rows.append((name, str(params), network.num_nodes, delta, correct,
                     result.lookups, f"{result.elapsed_seconds * 1e3:.1f}"))
    print(format_table(
        ["family", "params", "N", "δ", "correct", "lookups", "ms"],
        rows,
        title=f"Survey of the paper's Section 5 families ({args.size} instances)",
    ))
    return exit_code


def _cmd_properties(args: argparse.Namespace) -> int:
    params = _parse_params(args.param)
    if not params:
        params = dict(FAMILIES[args.family].small)
    network = cached_network(args.family, **params)
    report = verify_theorem1_preconditions(network, compute_connectivity=args.exact_connectivity)
    print(format_table(
        ["family", "N", "degree", "regular", "δ", "κ (claimed)", "κ (measured)", "Theorem 1 applies"],
        [report.as_row()],
        title=f"Structural properties of {args.family} {params}",
    ))
    print(f"full syndrome table size: {syndrome_table_size(network)} entries")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point (returns a process exit code)."""
    raw = sys.argv[1:] if argv is None else list(argv)
    if raw and raw[0] == "lint":
        # Forwarded verbatim: the analyzer's parser owns every lint flag,
        # so `repro-diagnose lint X` == `python -m repro.analysis X`.
        from repro.analysis.__main__ import main as lint_main

        return lint_main(raw[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "diagnose":
        return _cmd_diagnose(args)
    if args.command == "distributed":
        return _cmd_distributed(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "load":
        return _cmd_load(args)
    if args.command == "survey":
        return _cmd_survey(args)
    if args.command == "properties":
        return _cmd_properties(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
