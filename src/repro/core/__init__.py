"""Core machinery: the MM model, ``Set_Builder`` and the general diagnoser."""

from .diagnosis import DiagnosisError, DiagnosisResult, GeneralDiagnoser, ProbeRecord, diagnose
from .faults import (
    FaultScenario,
    clustered_faults,
    neighborhood_faults,
    random_faults,
    scenario_suite,
    spread_faults,
)
from .partitions import (
    class_certifies_when_fault_free,
    minimal_certifying_level,
    probe_plan,
)
from .set_builder import SetBuilderResult, certificate_node_budget, set_builder
from .syndrome import (
    FaultyTesterBehavior,
    LazySyndrome,
    Syndrome,
    TableSyndrome,
    generate_syndrome,
    syndrome_table_size,
)
from .verification import assert_mm_semantics, consistent_fault_sets, is_consistent_fault_set

__all__ = [
    "DiagnosisError",
    "DiagnosisResult",
    "GeneralDiagnoser",
    "ProbeRecord",
    "diagnose",
    "FaultScenario",
    "random_faults",
    "clustered_faults",
    "neighborhood_faults",
    "spread_faults",
    "scenario_suite",
    "probe_plan",
    "class_certifies_when_fault_free",
    "minimal_certifying_level",
    "SetBuilderResult",
    "set_builder",
    "certificate_node_budget",
    "Syndrome",
    "TableSyndrome",
    "LazySyndrome",
    "FaultyTesterBehavior",
    "generate_syndrome",
    "syndrome_table_size",
    "is_consistent_fault_set",
    "consistent_fault_sets",
    "assert_mm_semantics",
]
