/* Native inner loop of the stacked Set_Builder kernel.
 *
 * One call runs every expansion round (round 2 onward) for a whole batch of
 * syndromes over one compiled CSR topology.  The semantics are transcribed
 * from the numpy `_stacked_round` in set_builder.py and must stay
 * bit-identical to it — the differential suite pins both paths against the
 * sequential reference pipeline:
 *
 *   - Testers are visited in frontier order (sorted flat keys
 *     `syndrome * n + node`, so syndrome-blocked and node-ascending), and
 *     each tester's row positions in ascending order.  That flat order is
 *     what makes first-zero admission and lookup discounting deterministic.
 *   - A candidate occurrence is *consulted* (counted against its syndrome's
 *     lookup budget) iff its key has not already been admitted this round;
 *     the occurrence that admits a key is its first 0-result, and it is
 *     consulted too.  Members as of round start are never candidates.
 *   - The admitted keys, sorted ascending, form the next round's frontier.
 *
 * `member` doubles as the per-round scoreboard: 0 = outside the set,
 * 1 = member, 2 = admitted this round (committed back to 1 before the next
 * round begins, so the caller only ever sees 0/1).
 *
 * Built with the system C compiler on first use (see native.py); everything
 * is C99 + libc, no Python API.
 */
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef struct {
    int64_t key;    /* flat syndrome * n + node */
    int64_t tester; /* admitting tester (the new node's tree parent) */
} admit_t;

static int cmp_admit(const void *a, const void *b)
{
    int64_t ka = ((const admit_t *)a)->key;
    int64_t kb = ((const admit_t *)b)->key;
    return (ka > kb) - (ka < kb);
}

/* Returns 0 on success, a negative error code on invariant violation. */
int64_t stacked_rounds(
    const int64_t *indptr,          /* n + 1 */
    const int32_t *indices,         /* num_entries, rows sorted ascending */
    const int64_t *pair_indptr,     /* n + 1, per-node pair-slot base */
    const uint8_t *const *buffers,  /* num_syndromes test-result arrays */
    int64_t n,
    int64_t num_syndromes,
    const int64_t *frontier0,       /* round-1 admissions, sorted flat keys */
    int64_t frontier0_len,
    uint8_t *member,                /* num_syndromes * n */
    int64_t *parent,                /* num_syndromes * n */
    int64_t *lookups,               /* num_syndromes */
    int64_t *rounds,                /* num_syndromes */
    uint8_t *contributed,           /* num_syndromes * n */
    int64_t *contrib_count)         /* num_syndromes */
{
    int64_t cap = num_syndromes * n;
    int64_t *cur = malloc((size_t)cap * sizeof(int64_t));
    admit_t *adm = malloc((size_t)cap * sizeof(admit_t));
    if (cur == NULL || adm == NULL) {
        free(cur);
        free(adm);
        return -1;
    }
    memcpy(cur, frontier0, (size_t)frontier0_len * sizeof(int64_t));
    int64_t cur_len = frontier0_len;

    while (cur_len > 0) {
        int64_t n_adm = 0;
        for (int64_t t = 0; t < cur_len; t++) {
            int64_t key = cur[t];
            int64_t b = key / n;
            int64_t u = key - b * n;
            int64_t p = parent[key];
            int64_t lo = indptr[u];
            int64_t d = indptr[u + 1] - lo;

            /* The tester's sorted row holds its tree parent exactly once. */
            int64_t pp = -1;
            for (int64_t w = 0; w < d; w++) {
                if (indices[lo + w] == p) {
                    pp = w;
                    break;
                }
            }
            if (pp < 0) {
                free(cur);
                free(adm);
                return -2;
            }

            const uint8_t *buf = buffers[b];
            int64_t base = pair_indptr[u];
            int64_t bn = b * n;
            int64_t consulted = 0;
            for (int64_t w = 0; w < d; w++) {
                int64_t kv = bn + indices[lo + w];
                if (member[kv]) /* member, or already admitted this round */
                    continue;
                consulted++;
                int64_t i = w < pp ? w : pp;
                int64_t j = w < pp ? pp : w;
                int64_t slot = base + i * (2 * d - i - 1) / 2 + (j - i - 1);
                if (buf[slot] == 0) {
                    member[kv] = 2;
                    adm[n_adm].key = kv;
                    adm[n_adm].tester = u;
                    n_adm++;
                }
            }
            lookups[b] += consulted;
        }
        if (n_adm == 0)
            break;

        /* Ascending keys == syndrome-blocked, node-ascending next frontier. */
        qsort(adm, (size_t)n_adm, sizeof(admit_t), cmp_admit);
        int64_t last_b = -1;
        for (int64_t a = 0; a < n_adm; a++) {
            int64_t kv = adm[a].key;
            int64_t u = adm[a].tester;
            int64_t b = kv / n;
            member[kv] = 1;
            parent[kv] = u;
            cur[a] = kv;
            if (b != last_b) {
                rounds[b]++;
                last_b = b;
            }
            int64_t cu = b * n + u;
            if (!contributed[cu]) {
                contributed[cu] = 1;
                contrib_count[b]++;
            }
        }
        cur_len = n_adm;
    }

    free(cur);
    free(adm);
    return 0;
}
