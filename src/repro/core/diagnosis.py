"""The general fault-diagnosis algorithm (paper Section 4, Theorem 1).

Given a network ``G`` with diagnosability ``δ`` and connectivity ``κ ≥ δ``,
and a syndrome produced by a fault set ``F`` with ``|F| ≤ δ``, the algorithm

1. finds a start node ``u0`` that is *certifiably* healthy, by running the
   restricted ``Set_Builder`` on the representatives of a partition of ``G``
   into many node-disjoint connected classes (paper Section 5: sub-cubes,
   sub-stars, ...) — since the classes outnumber the faults, some probed
   class is fault-free and its run reaches the contributor certificate;
2. runs the unrestricted ``Set_Builder(u0)``; the grown set ``U_r`` consists
   of healthy nodes only, and
3. outputs the neighbourhood ``N = N(U_r) \\ U_r``, which Theorem 1 shows is
   exactly the fault set ``F``.

The driver follows the paper but adds two robustness refinements that the
paper glosses over (DESIGN.md §4.5):

* if no representative of the level-0 partition certifies (possible when the
  smallest admissible classes are too small for the contributor certificate),
  the driver *escalates* to coarser partitions;
* if no partition level certifies — or the family provides no useful
  partition at all — the driver falls back to probing ``δ + 1`` arbitrary
  distinct nodes with a budgeted unrestricted ``Set_Builder``; at least one
  probe starts at a healthy node and the budget of
  :func:`~repro.core.set_builder.certificate_node_budget` guarantees the
  certificate fires whenever the surrounding healthy component is large
  enough.

Both refinements only ever *accept* runs whose certificate fired, so they
cannot compromise soundness; they extend the range of instances the driver
completes on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from typing import Sequence

from ..backend.csr import compile_network
from ..networks.base import InterconnectionNetwork, PartitionClass
from .set_builder import (
    SetBuilderResult,
    certificate_node_budget,
    set_builder,
    set_builder_many,
)
from .syndrome import Syndrome

__all__ = ["DiagnosisError", "ProbeRecord", "DiagnosisResult", "GeneralDiagnoser", "diagnose"]


class DiagnosisError(RuntimeError):
    """Raised when no certifiably healthy start node could be found.

    Under the paper's hypotheses (``|F| ≤ δ ≤ κ`` and a partition whose
    fault-free classes certify) this cannot happen; it can occur on instances
    outside those hypotheses, e.g. graphs whose healthy part is too small for
    any contributor certificate.
    """


@dataclass(frozen=True)
class ProbeRecord:
    """Bookkeeping for one probe of the healthy-root search."""

    start: int
    kind: str  # "partition" or "fallback"
    label: str
    certified: bool
    nodes_explored: int
    lookups: int


@dataclass
class DiagnosisResult:
    """Outcome of a full diagnosis run.

    Attributes
    ----------
    faulty:
        The diagnosed fault set (Theorem 1: equal to the actual fault set).
    healthy_root:
        The certifiably healthy node the final ``Set_Builder`` started from.
    healthy_nodes:
        The final grown set ``U_r`` (all healthy).
    tree_parent:
        The spanning tree of ``U_r`` produced as a by-product (paper
        Section 6 points out it can be reused by other services).
    probes:
        Per-probe records of the healthy-root search.
    partition_level:
        Partition level that produced the certified root, or ``None`` when
        the fallback probing found it.
    lookups:
        Total number of syndrome entries consulted.
    elapsed_seconds:
        Wall-clock time of the whole diagnosis.
    """

    faulty: frozenset[int]
    healthy_root: int
    healthy_nodes: frozenset[int]
    tree_parent: dict[int, int]
    probes: list[ProbeRecord] = field(default_factory=list)
    partition_level: int | None = None
    lookups: int = 0
    elapsed_seconds: float = 0.0

    @property
    def num_probes(self) -> int:
        return len(self.probes)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{len(self.faulty)} faults, root={self.healthy_root}, "
            f"|U_r|={len(self.healthy_nodes)}, probes={self.num_probes}, "
            f"lookups={self.lookups}, {self.elapsed_seconds * 1e3:.1f} ms"
        )


class GeneralDiagnoser:
    """The paper's general algorithm, packaged per network instance.

    Parameters
    ----------
    network:
        The interconnection network; must satisfy ``connectivity ≥
        diagnosability`` (Theorem 1's hypothesis).
    diagnosability:
        Override for ``δ`` (defaults to ``network.diagnosability()``); the
        actual number of faults must not exceed it.
    max_probes_per_level:
        Number of partition classes probed per level (default ``δ + 1``).
    use_partition:
        If False, skip the partition search entirely and go straight to the
        unrestricted probing fallback (used by ablation E8).
    fallback_probe_budget:
        Node budget of each fallback probe; defaults to
        :func:`certificate_node_budget`.
    compiled:
        If True (default), compile the topology to the flat-array backend on
        construction; every ``Set_Builder`` run and the final boundary
        computation then operate on the compiled arrays.  ``False`` selects
        the original object-based reference path.
    sharder:
        Optional :class:`~repro.parallel.sharded.ShardedSetBuilder` over the
        same topology.  When given, the *final* unrestricted ``Set_Builder``
        run — the only network-sized step of the algorithm — executes sharded
        (optionally across a worker pool); the probe search stays sequential
        because restricted probes never leave one partition class, i.e. one
        shard.  The sharded run is property-tested equal to the sequential
        one, so the diagnosis is unchanged — only its execution is
        distributed.  Requires ``compiled=True`` and an
        :class:`~repro.backend.array_syndrome.ArraySyndrome` over this
        network's compiled topology.
    """

    def __init__(
        self,
        network: InterconnectionNetwork,
        *,
        diagnosability: int | None = None,
        max_probes_per_level: int | None = None,
        use_partition: bool = True,
        fallback_probe_budget: int | None = None,
        compiled: bool = True,
        sharder=None,
    ) -> None:
        self.network = network
        self.delta = network.diagnosability() if diagnosability is None else int(diagnosability)
        if self.delta < 1:
            raise ValueError("diagnosability must be at least 1")
        self.max_probes_per_level = max_probes_per_level
        self.use_partition = use_partition
        self.fallback_probe_budget = fallback_probe_budget
        self.compiled = compiled
        self.csr = compile_network(network) if compiled else None
        if sharder is not None:
            if not compiled:
                raise ValueError("sharded final runs require the compiled backend")
            if sharder.csr is not self.csr:
                raise ValueError(
                    "the sharder must be built over this network's compiled topology"
                )
        self.sharder = sharder

    # ----------------------------------------------------------- root search
    def find_healthy_root(
        self, syndrome: Syndrome
    ) -> tuple[int, list[ProbeRecord], int | None]:
        """Locate a certifiably healthy node.

        Returns ``(root, probe_records, partition_level)`` where
        ``partition_level`` is ``None`` if the fallback probing found the
        root.  Raises :class:`DiagnosisError` if every probe fails.
        """
        probes: list[ProbeRecord] = []
        budget_probes = self.delta + 1 if self.max_probes_per_level is None \
            else self.max_probes_per_level

        if self.use_partition:
            for level in range(self.network.max_partition_level() + 1):
                try:
                    scheme = self.network.partition_scheme(level)
                except ValueError:
                    break
                # Classes of size 1 can never certify; skip useless levels.
                if scheme.class_size <= 1:
                    continue
                for cls in scheme.first(budget_probes):
                    record, result = self._probe_class(syndrome, cls)
                    probes.append(record)
                    if result.all_healthy:
                        return result.root, probes, level

        root = self._fallback_probe(syndrome, probes)
        if root is not None:
            return root, probes, None
        raise DiagnosisError(
            "no probe produced the all-healthy certificate; the instance violates "
            "the hypotheses of Theorem 1 (or the healthy component is too small)"
        )

    def _probe_class(
        self, syndrome: Syndrome, cls: PartitionClass
    ) -> tuple[ProbeRecord, SetBuilderResult]:
        result = set_builder(
            self.network,
            syndrome,
            cls.representative,
            diagnosability=self.delta,
            restrict=cls.contains,
            stop_on_certificate=True,
            compiled=self.compiled,
        )
        record = ProbeRecord(
            start=cls.representative,
            kind="partition",
            label=cls.label,
            certified=result.all_healthy,
            nodes_explored=result.size,
            lookups=result.lookups,
        )
        return record, result

    def _fallback_probe(
        self, syndrome: Syndrome, probes: list[ProbeRecord]
    ) -> int | None:
        """Probe ``δ + 1`` distinct nodes with a budgeted unrestricted run."""
        network = self.network
        budget = self.fallback_probe_budget
        if budget is None:
            max_degree = self.csr.max_degree if self.csr is not None else network.max_degree
            budget = certificate_node_budget(self.delta, max_degree)
        budget = min(budget, network.num_nodes)
        # δ + 1 distinct start nodes spread across the node range: at most δ
        # of them can be faulty.
        count = min(self.delta + 1, network.num_nodes)
        stride = max(1, network.num_nodes // count)
        candidates = [(i * stride) % network.num_nodes for i in range(count)]
        # Ensure distinctness even when the stride wraps.
        seen: set[int] = set()
        starts: list[int] = []
        for candidate in candidates:
            while candidate in seen:
                candidate = (candidate + 1) % network.num_nodes
            seen.add(candidate)
            starts.append(candidate)

        for attempt, max_nodes in enumerate((budget, None)):
            for start in starts:
                result = set_builder(
                    network,
                    syndrome,
                    start,
                    diagnosability=self.delta,
                    max_nodes=max_nodes,
                    stop_on_certificate=True,
                    compiled=self.compiled,
                )
                probes.append(
                    ProbeRecord(
                        start=start,
                        kind="fallback" if attempt == 0 else "fallback-unbudgeted",
                        label=f"node={start}",
                        certified=result.all_healthy,
                        nodes_explored=result.size,
                        lookups=result.lookups,
                    )
                )
                if result.all_healthy:
                    return start
        return None

    # -------------------------------------------------------------- diagnosis
    def diagnose(self, syndrome: Syndrome) -> DiagnosisResult:
        """Run the full algorithm and return the diagnosed fault set."""
        start_time = time.perf_counter()
        lookups_before = syndrome.lookups

        root, probes, level = self.find_healthy_root(syndrome)

        if self.sharder is not None:
            final = self.sharder.run(syndrome, root, diagnosability=self.delta)
        else:
            final = set_builder(
                self.network,
                syndrome,
                root,
                diagnosability=self.delta,
                compiled=self.compiled,
            )
        healthy = final.nodes
        if self.csr is not None and final.member_mask is not None:
            faulty = self.csr.boundary(final.member_mask)
        else:
            faulty = self._boundary(healthy)

        elapsed = time.perf_counter() - start_time
        return DiagnosisResult(
            faulty=frozenset(faulty),
            healthy_root=root,
            healthy_nodes=frozenset(healthy),
            tree_parent=final.parent,
            probes=probes,
            partition_level=level,
            lookups=syndrome.lookups - lookups_before,
            elapsed_seconds=elapsed,
        )

    def diagnose_many(
        self, syndromes: Sequence[Syndrome], *, include_sets: bool = True
    ) -> list["DiagnosisResult | Exception"]:
        """Diagnose a stack of syndromes with one batched final ``Set_Builder``.

        The healthy-root search stays per-syndrome (its probes are tiny and
        partition-restricted), but the network-sized final run — the bulk of
        every diagnosis — executes as a single
        :func:`~repro.core.set_builder.set_builder_many` pass over the whole
        stack, followed by one stacked boundary computation.  Each returned
        entry is **bit-identical** to what :meth:`diagnose` produces for the
        same syndrome: accusation set, healthy root, probe records and the
        consulted-entry count all match (pinned by ``tests/differential``).

        Failures never poison batch mates: a syndrome whose root search
        raises :class:`DiagnosisError` (or a ``ValueError``) yields the
        *exception object* in its slot — the exact exception :meth:`diagnose`
        would have raised — while the rest of the stack proceeds.  Syndromes
        the stacked kernel cannot take (no compiled backend, a sharder
        configured, or a non-``ArraySyndrome``) fall back to a sequential
        :meth:`diagnose` per item, with the same per-item error capture.

        ``include_sets=False`` skips materialising ``healthy_nodes`` and
        ``tree_parent`` (they come back empty); ``faulty``, ``lookups`` and
        the probe bookkeeping are always exact.  The serving layer uses this
        light mode — its responses carry only the accusation set and
        counters.  ``elapsed_seconds`` on every stacked result is the wall
        clock of the whole batch call, not a per-item time.
        """
        from ..backend.array_syndrome import ArraySyndrome

        start_time = time.perf_counter()
        outcomes: list[DiagnosisResult | Exception | None] = [None] * len(syndromes)
        stacked: list[int] = []
        roots: list[int] = []
        probe_records: list[list[ProbeRecord]] = []
        levels: list[int | None] = []
        lookups_before: list[int] = []
        for pos, syndrome in enumerate(syndromes):
            if (self.csr is None or self.sharder is not None
                    or not isinstance(syndrome, ArraySyndrome)
                    or syndrome.csr is not self.csr):
                try:
                    outcomes[pos] = self.diagnose(syndrome)
                except (DiagnosisError, ValueError) as exc:
                    outcomes[pos] = exc
                continue
            before = syndrome.lookups
            try:
                root, probes, level = self.find_healthy_root(syndrome)
            except (DiagnosisError, ValueError) as exc:
                outcomes[pos] = exc
                continue
            stacked.append(pos)
            roots.append(root)
            probe_records.append(probes)
            levels.append(level)
            lookups_before.append(before)

        if stacked:
            batch = [syndromes[pos] for pos in stacked]
            finals = set_builder_many(
                self.network, batch, roots,
                diagnosability=self.delta, materialize=include_sets,
            )
            boundaries = self.csr.boundary_many(
                [final.member_mask for final in finals]
            )
            elapsed = time.perf_counter() - start_time
            for k, pos in enumerate(stacked):
                outcomes[pos] = DiagnosisResult(
                    faulty=frozenset(boundaries[k]),
                    healthy_root=roots[k],
                    healthy_nodes=frozenset(finals[k].nodes),
                    tree_parent=finals[k].parent,
                    probes=probe_records[k],
                    partition_level=levels[k],
                    lookups=batch[k].lookups - lookups_before[k],
                    elapsed_seconds=elapsed,
                )
        return outcomes

    def _boundary(self, healthy: set[int]) -> set[int]:
        """Nodes adjacent to the healthy set but outside it (Theorem 1: the fault set)."""
        if self.csr is not None:
            return self.csr.boundary(healthy)
        boundary: set[int] = set()
        network = self.network
        for u in healthy:
            for v in network.neighbors(u):
                if v not in healthy:
                    boundary.add(v)
        return boundary


def diagnose(
    network: InterconnectionNetwork,
    syndrome: Syndrome,
    **kwargs,
) -> DiagnosisResult:
    """Convenience wrapper: run the paper's general algorithm on a syndrome.

    Equivalent to ``GeneralDiagnoser(network, **kwargs).diagnose(syndrome)``.
    """
    return GeneralDiagnoser(network, **kwargs).diagnose(syndrome)
