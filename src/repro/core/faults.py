"""Fault-set generators ("workloads") for diagnosis experiments.

The paper assumes only that the fault set ``F`` has size at most the
diagnosability ``δ``; everything else about ``F`` is adversarial.  The
generators below produce the fault placements used by the tests, examples and
benchmarks:

* uniformly random fault sets of a given size;
* *clustered* faults concentrated around a seed node (stressing the partition
  search, because whole partition classes become faulty);
* *boundary* faults equal to the neighbourhood of a node (the classical
  worst case from the paper's Section 2 argument that ``δ`` is at most the
  minimum degree);
* *spread* faults placed in pairwise distant positions (stressing the final
  neighbourhood computation).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Iterator

from ..networks.base import InterconnectionNetwork

__all__ = ["FaultScenario", "random_faults", "clustered_faults", "neighborhood_faults",
           "spread_faults", "scenario_suite"]


@dataclass(frozen=True)
class FaultScenario:
    """A named fault placement for one experiment run."""

    name: str
    faults: frozenset[int]

    @property
    def size(self) -> int:
        return len(self.faults)


def random_faults(
    network: InterconnectionNetwork, count: int, *, seed: int | None = 0
) -> frozenset[int]:
    """``count`` faulty nodes chosen uniformly at random without replacement."""
    _check_count(network, count)
    rng = random.Random(seed)
    return frozenset(rng.sample(range(network.num_nodes), count))


def clustered_faults(
    network: InterconnectionNetwork, count: int, *, seed: int | None = 0
) -> frozenset[int]:
    """``count`` faulty nodes forming a connected cluster around a random seed node.

    Grown by breadth-first search from the seed node, so the faults form a
    ball; with the prefix partitions of Section 5 such a ball typically sits
    inside very few partition classes, making it easy for the search to find a
    fault-free class but hard for naive local rules.
    """
    _check_count(network, count)
    if count == 0:
        return frozenset()
    rng = random.Random(seed)
    start = rng.randrange(network.num_nodes)
    selected: list[int] = []
    seen = {start}
    queue = deque([start])
    while queue and len(selected) < count:
        node = queue.popleft()
        selected.append(node)
        neighbors = list(network.neighbors(node))
        rng.shuffle(neighbors)
        for nb in neighbors:
            if nb not in seen:
                seen.add(nb)
                queue.append(nb)
    return frozenset(selected[:count])


def neighborhood_faults(
    network: InterconnectionNetwork, *, center: int | None = None, count: int | None = None,
    seed: int | None = 0,
) -> frozenset[int]:
    """Faults covering (part of) the neighbourhood of a node.

    With ``count`` equal to the degree of ``center`` this is the configuration
    from the paper's Section 2 argument bounding the diagnosability by the
    minimum degree; with ``count`` at most ``δ`` it remains diagnosable but is
    a stress case because the centre node is completely surrounded by faults
    and can never join the healthy tree.
    """
    rng = random.Random(seed)
    if center is None:
        center = rng.randrange(network.num_nodes)
    neighbors = sorted(network.neighbors(center))
    if count is None:
        count = len(neighbors)
    if count > len(neighbors):
        raise ValueError("count exceeds the degree of the centre node")
    return frozenset(neighbors[:count])


def spread_faults(
    network: InterconnectionNetwork, count: int, *, seed: int | None = 0, attempts: int = 64
) -> frozenset[int]:
    """``count`` faults chosen greedily to be pairwise non-adjacent where possible."""
    _check_count(network, count)
    rng = random.Random(seed)
    chosen: set[int] = set()
    blocked: set[int] = set()
    while len(chosen) < count:
        for _ in range(attempts):
            candidate = rng.randrange(network.num_nodes)
            if candidate not in chosen and candidate not in blocked:
                break
        else:
            candidate = rng.choice([v for v in range(network.num_nodes) if v not in chosen])
        chosen.add(candidate)
        blocked.update(network.neighbors(candidate))
        blocked.add(candidate)
    return frozenset(chosen)


def scenario_suite(
    network: InterconnectionNetwork, *, seed: int | None = 0, max_faults: int | None = None
) -> Iterator[FaultScenario]:
    """The standard battery of fault scenarios for one network instance.

    Produces scenarios of sizes 0, 1, ``⌈δ/2⌉`` and ``δ`` for each placement
    strategy (subject to ``max_faults``).
    """
    delta = network.diagnosability()
    if max_faults is not None:
        delta = min(delta, max_faults)
    sizes = sorted({0, 1, max(1, delta // 2), delta})
    for size in sizes:
        yield FaultScenario(f"random-{size}", random_faults(network, size, seed=seed))
        if size >= 2:
            yield FaultScenario(f"clustered-{size}", clustered_faults(network, size, seed=seed))
            yield FaultScenario(f"spread-{size}", spread_faults(network, size, seed=seed))
    center = random.Random(seed).randrange(network.num_nodes)
    boundary = neighborhood_faults(network, center=center, count=min(delta, network.degree(center)),
                                   seed=seed)
    yield FaultScenario(f"neighborhood-{len(boundary)}", boundary)


def _check_count(network: InterconnectionNetwork, count: int) -> None:
    if count < 0:
        raise ValueError("fault count must be non-negative")
    if count > network.num_nodes:
        raise ValueError("fault count exceeds the number of nodes")
