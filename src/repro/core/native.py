"""Optional native build of the stacked Set_Builder inner loop.

The stacked kernel's hot loop is memory-bound element streaming — exactly the
shape a C compiler turns into a single fused pass, where numpy is forced into
one full-array sweep per operator.  When a system C compiler is available,
``_stacked.c`` is built once into a tiny shared library (cached under the
user's cache directory, keyed by source hash) and loaded through the stdlib
``ctypes`` — no third-party dependency, no install step, nothing added to the
environment.  When it is not — or when ``REPRO_NO_NATIVE`` is set — callers
fall back to the pure-numpy round in ``set_builder.py``, which the
differential suite pins bit-identical to the native pass.

The compile is atomic (build to a temp name, ``os.replace`` into the cache)
so racing processes never load a half-written file, and the build itself
runs under an ``fcntl`` file lock so racing processes — a worker pool
warming up, parallel test runs — settle on *one* compile: the first holder
builds, the rest block on the lock and find the finished library.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from contextlib import contextmanager
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX: fall back to lock-free
    fcntl = None

import numpy as np
from numpy.ctypeslib import ndpointer

__all__ = ["load_stacked_kernel", "native_kernel_active"]

_SOURCE = Path(__file__).with_name("_stacked.c")
_COMPILERS = ("cc", "gcc", "clang")

#: tri-state memo: "unset" -> not probed yet, None -> unavailable, else the
#: configured ctypes function.  ``REPRO_NO_NATIVE`` (any non-empty value)
#: forces the numpy path; tests flip ``_forced_off`` to exercise both.
_kernel: object = "unset"
_forced_off = bool(os.environ.get("REPRO_NO_NATIVE"))


def _cache_dir() -> Path:
    root = os.environ.get("XDG_CACHE_HOME")
    base = Path(root) if root else Path.home() / ".cache"
    directory = base / "repro-native"
    directory.mkdir(mode=0o700, parents=True, exist_ok=True)
    return directory


def _compile(source: Path, target: Path) -> bool:
    """Build ``source`` into ``target`` with the first working compiler."""
    for compiler in _COMPILERS:
        fd, temp = tempfile.mkstemp(
            dir=str(target.parent), suffix=".so", prefix="build-"
        )
        os.close(fd)
        try:
            result = subprocess.run(
                [compiler, "-O3", "-shared", "-fPIC", "-o", temp, str(source)],
                capture_output=True,
                timeout=120,
            )
            if result.returncode == 0:
                os.replace(temp, target)
                return True
        except (OSError, subprocess.SubprocessError):
            pass
        finally:
            if os.path.exists(temp):
                os.unlink(temp)
    return False


@contextmanager
def _build_lock(target: Path):
    """Serialise first-use compiles of ``target`` across processes.

    Without this, every concurrently-starting process that found the cache
    cold would run its own 100ms+ compiler invocation — correct (the atomic
    replace keeps the file whole) but wasteful, and on slow filesystems a
    herd of builds has been seen timing each other out.  The lock lives next
    to the library; the content-hash key means a stale lock file is inert.
    """
    if fcntl is None:
        yield
        return
    lock_path = target.with_suffix(".lock")
    with open(lock_path, "w") as lock_file:
        fcntl.flock(lock_file, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(lock_file, fcntl.LOCK_UN)


def _configure(library: ctypes.CDLL):
    fn = library.stacked_rounds
    fn.restype = ctypes.c_int64
    c = "C_CONTIGUOUS"
    fn.argtypes = [
        ndpointer(np.int64, flags=c),                  # indptr
        ndpointer(np.int32, flags=c),                  # indices
        ndpointer(np.int64, flags=c),                  # pair_indptr
        ctypes.POINTER(ctypes.POINTER(ctypes.c_ubyte)),  # buffers
        ctypes.c_int64,                                # n
        ctypes.c_int64,                                # num_syndromes
        ndpointer(np.int64, flags=c),                  # frontier0
        ctypes.c_int64,                                # frontier0_len
        ndpointer(np.uint8, flags=c),                  # member
        ndpointer(np.int64, flags=c),                  # parent
        ndpointer(np.int64, flags=c),                  # lookups
        ndpointer(np.int64, flags=c),                  # rounds
        ndpointer(np.uint8, flags=c),                  # contributed
        ndpointer(np.int64, flags=c),                  # contrib_count
    ]
    return fn


def load_stacked_kernel():
    """The compiled ``stacked_rounds`` entry point, or ``None``.

    Any failure along the way — no source, no compiler, a build error, a
    load error — degrades silently to ``None``: the numpy path is always
    there and always correct, the native pass is only ever a speedup.
    """
    global _kernel
    if _forced_off:
        return None
    if _kernel != "unset":
        return _kernel
    _kernel = None
    try:
        source_text = _SOURCE.read_text()
        tag = hashlib.sha256(source_text.encode()).hexdigest()[:16]
        target = _cache_dir() / f"stacked-{tag}.so"
        if not target.exists():
            # Build-or-wait: whoever wins the lock compiles; everyone else
            # blocks, then re-checks and finds the library already there.
            with _build_lock(target):
                if not target.exists() and not _compile(_SOURCE, target):
                    return None
        _kernel = _configure(ctypes.CDLL(str(target)))
    except Exception:
        _kernel = None
    return _kernel


def native_kernel_active() -> bool:
    """Whether stacked batches will run the native inner loop."""
    return load_stacked_kernel() is not None
