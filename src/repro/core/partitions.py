"""Partition-probing utilities for the generic diagnosis driver.

The paper's per-family drivers (e.g. ``Faults_in_Hypercubes``, Section 5)
locate a certifiably healthy start node by running the restricted
``Set_Builder`` on the representatives of a partition of the network into
many node-disjoint connected classes.  This module provides:

* :func:`probe_plan` — the ordered list of partition classes a driver probes
  (the first ``δ + 1`` classes of the chosen scheme, following the paper's
  observation that a list of ``δ + 1`` representatives suffices whenever the
  classes outnumber the faults);
* :func:`class_certifies_when_fault_free` — whether the restricted
  ``Set_Builder`` run on a *fault-free* copy of a class reaches the
  contributor certificate.  The paper implicitly assumes this for its choice
  of class size; the assumption fails for the smallest admissible classes
  (DESIGN.md §4.5), and this predicate is what the driver and the E8 ablation
  use to quantify that gap;
* :func:`minimal_certifying_level` — the smallest partition level whose
  fault-free classes certify.
"""

from __future__ import annotations

from ..networks.base import InterconnectionNetwork, PartitionClass, PartitionScheme
from .set_builder import set_builder
from .syndrome import LazySyndrome

__all__ = [
    "probe_plan",
    "class_certifies_when_fault_free",
    "minimal_certifying_level",
]


def probe_plan(
    network: InterconnectionNetwork,
    level: int = 0,
    *,
    max_probes: int | None = None,
) -> list[PartitionClass]:
    """The partition classes probed by the driver at a given partition level.

    At most ``δ + 1`` classes are returned (or ``max_probes`` if given):
    because the classes are node-disjoint and there are at most ``δ`` faults,
    any ``δ + 1`` classes include a fault-free one.
    """
    delta = network.diagnosability()
    scheme: PartitionScheme = network.partition_scheme(level)
    count = delta + 1 if max_probes is None else max_probes
    return scheme.first(count)


def class_certifies_when_fault_free(
    network: InterconnectionNetwork, partition_class: PartitionClass
) -> bool:
    """Would a restricted ``Set_Builder`` run certify this class if it were fault-free?

    The check simulates the run against the all-healthy syndrome (every test
    by every node returns 0), which is exactly the syndrome the class exhibits
    when it contains no faults; the outcome is therefore the ground truth for
    whether the paper's probing strategy can succeed on this class.
    """
    healthy = LazySyndrome(network, frozenset())
    result = set_builder(
        network,
        healthy,
        partition_class.representative,
        diagnosability=network.diagnosability(),
        restrict=partition_class.contains,
        stop_on_certificate=True,
    )
    return result.all_healthy


def minimal_certifying_level(network: InterconnectionNetwork) -> int | None:
    """Smallest partition level whose fault-free classes reach the certificate.

    Returns ``None`` when no level certifies (the driver then falls back to
    unrestricted probing).  Only the first class of each level is simulated;
    for the structured partitions of Section 5 all classes of a level are
    isomorphic, so this is representative (the driver itself remains correct
    regardless, because certification is checked per probe at run time).
    """
    for level in range(network.max_partition_level() + 1):
        try:
            first = network.partition_scheme(level).first(1)
        except ValueError:
            break
        if not first:
            continue
        if class_certifies_when_fault_free(network, first[0]):
            return level
    return None
