"""The ``Set_Builder`` procedure (paper Section 4.1).

``Set_Builder(u0)`` grows a set ``U_r`` of nodes from a start node ``u0`` by
repeatedly adding neighbours whose comparison test against the parent of the
tester returned 0:

* ``U_0 = {u0}``;
* ``U_1 = {u0} ∪ {v : (u0, v) ∈ E and ∃ w ≠ v, (u0, w) ∈ E, s_{u0}(v, w) = 0}``
  with ``t(v) = u0`` for the added nodes;
* for ``i ≥ 2``,
  ``U_i = U_{i-1} ∪ {v ∉ U_{i-1} : (u, v) ∈ E for some u ∈ U_{i-1} \\ U_{i-2}
  with s_u(v, t(u)) = 0}``, where ``t(v)`` is the *least* such ``u`` in the
  fixed node ordering.

The function ``t`` describes a tree ``T`` rooted at ``u0``.  The nodes that
appear as some ``t(v)`` are the *contributors* (the internal nodes of ``T``)
and they are either all healthy or all faulty; therefore as soon as more than
``δ`` (the diagnosability, an upper bound on the number of faults) distinct
contributors have been seen, every node of ``U_r`` is certifiably healthy
(``all_healthy``).

This module implements the procedure verbatim, plus two practical controls the
surrounding driver uses: an optional membership restriction (the paper's
``Set_Builder(u0, H)``), an optional node budget, and optional early exit once
the certificate fires.

Execution backends
------------------
The procedure compiles the topology on entry
(:func:`repro.backend.csr.compile_network`, memoized per instance) and then
selects the fastest applicable implementation:

* an **array** path when the syndrome is an
  :class:`~repro.backend.array_syndrome.ArraySyndrome` over the same compiled
  topology — neighbour rows and test results are flat arrays, membership is a
  byte mask, and each lookup is pure integer arithmetic;
* a **rows** path for any other :class:`Syndrome` — adjacency comes from the
  compiled rows (no per-call list building) while results go through the
  abstract oracle;
* the original **object** path (``compiled=False``) that consults
  ``network.neighbors`` per call — kept as the reference implementation the
  property tests and the backend benchmark compare against.

All paths implement the same procedure and produce identical results (and
identical lookup counts) on non-truncated runs; under a ``max_nodes`` budget
the identity of the truncated frontier may differ between paths because the
object path visits neighbours in topology order while the compiled paths use
sorted rows.  The ``all_healthy`` certificate is sound on every path.
"""

from __future__ import annotations

import ctypes
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..backend.csr import compile_network
from ..networks.base import InterconnectionNetwork
from .native import load_stacked_kernel
from .syndrome import Syndrome

if TYPE_CHECKING:  # pragma: no cover - the runtime import is deferred (cycle)
    from ..backend.array_syndrome import ArraySyndrome

__all__ = [
    "SetBuilderResult",
    "set_builder",
    "set_builder_many",
    "certificate_node_budget",
]


@dataclass
class SetBuilderResult:
    """Outcome of one ``Set_Builder`` run.

    Attributes
    ----------
    root:
        The start node ``u0``.
    all_healthy:
        True iff the contributor certificate fired (more than ``δ`` distinct
        contributors), proving every node of ``nodes`` healthy.
    nodes:
        The grown set ``U_r``.
    parent:
        The tree function ``t``: ``parent[v]`` is the parent of ``v`` in the
        tree ``T`` (the root has no entry).
    contributors:
        The internal nodes of ``T`` (the union of the ``C_i``).
    rounds:
        Number of iterations of the while-loop (the final ``r``).
    lookups:
        Syndrome entries consulted by this run.
    truncated:
        True iff the run stopped because of the node budget or the
        early-certificate exit rather than reaching the fixpoint
        ``U_r = U_{r+1}``.
    """

    root: int
    all_healthy: bool
    nodes: set[int]
    parent: dict[int, int]
    contributors: set[int]
    rounds: int
    lookups: int
    truncated: bool = False
    #: boolean membership mask over all nodes (only set by the vectorised
    #: path; lets the driver compute the boundary without rebuilding a mask)
    member_mask: object = field(default=None, compare=False, repr=False)

    @property
    def size(self) -> int:
        return len(self.nodes)

    def tree_edges(self) -> list[tuple[int, int]]:
        """Edges ``(t(v), v)`` of the tree ``T`` (the paper's healthy spanning tree)."""
        return [(p, v) for v, p in self.parent.items()]

    def depth_of(self, v: int) -> int:
        """Depth of ``v`` in ``T`` (root has depth 0)."""
        depth = 0
        while v in self.parent:
            v = self.parent[v]
            depth += 1
        return depth


def certificate_node_budget(diagnosability: int, max_degree: int) -> int:
    """Node budget guaranteeing the certificate fires for a healthy root.

    In the tree ``T`` every internal node has at most ``Δ`` children, so a
    tree with more than ``δ·Δ + 1`` nodes necessarily has more than ``δ``
    internal nodes.  Exploring that many nodes from a healthy root therefore
    always produces the ``all_healthy`` certificate (provided the healthy
    component is at least that large); the probing fallback of the diagnosis
    driver uses this budget to keep each probe cheap.
    """
    return diagnosability * max_degree + 2


def set_builder(
    network: InterconnectionNetwork,
    syndrome: Syndrome,
    u0: int,
    *,
    diagnosability: int | None = None,
    restrict: Callable[[int], bool] | None = None,
    max_nodes: int | None = None,
    stop_on_certificate: bool = False,
    compiled: bool = True,
) -> SetBuilderResult:
    """Run ``Set_Builder(u0)`` (or ``Set_Builder(u0, H)`` when ``restrict`` is given).

    Parameters
    ----------
    network:
        The interconnection network ``G``.
    syndrome:
        The syndrome oracle ``s``.
    u0:
        The start node.
    diagnosability:
        The bound ``δ`` on the number of faults; defaults to
        ``network.diagnosability()``.
    restrict:
        Optional membership predicate defining the subgraph ``H``; only nodes
        satisfying it are ever added (``u0`` must satisfy it).
    max_nodes:
        Optional budget on ``|U_r|``; growth stops once reached (the result is
        then marked ``truncated`` and carries no completeness guarantee, but
        the ``all_healthy`` certificate remains sound).
    stop_on_certificate:
        If True, growth stops as soon as the certificate fires.
    compiled:
        If True (default), compile the topology to the flat-array backend on
        entry and take the fastest applicable path; if False, run the original
        object-based reference implementation.
    """
    if diagnosability is None:
        diagnosability = network.diagnosability()
    if restrict is not None and not restrict(u0):
        raise ValueError("the start node u0 must belong to the restricted subgraph H")
    if not 0 <= u0 < network.num_nodes:
        raise ValueError(f"start node {u0} is not a node of the network")

    if compiled:
        # Deferred import: backend.array_syndrome builds on core.syndrome, so a
        # module-level import here would close a cycle through the package
        # __init__ chain.  After the first call this is a sys.modules hit.
        from ..backend.array_syndrome import ArraySyndrome

        csr = compile_network(network)
        if isinstance(syndrome, ArraySyndrome) and syndrome.csr is csr:
            if restrict is None and max_nodes is None:
                return _set_builder_array_vectorized(
                    csr, syndrome, u0, diagnosability, stop_on_certificate,
                )
            return _set_builder_array(
                csr, syndrome, u0, diagnosability, restrict, max_nodes,
                stop_on_certificate,
            )
        rows = csr.rows
        neighbors_of: Callable[[int], Sequence[int]] = rows.__getitem__
    else:
        neighbors_of = network.neighbors
    return _set_builder_oracle(
        neighbors_of, syndrome, u0, diagnosability, restrict, max_nodes,
        stop_on_certificate,
    )


def _set_builder_oracle(
    neighbors_of: Callable[[int], Sequence[int]],
    syndrome: Syndrome,
    u0: int,
    diagnosability: int,
    restrict: Callable[[int], bool] | None,
    max_nodes: int | None,
    stop_on_certificate: bool,
) -> SetBuilderResult:
    """The procedure against an abstract syndrome oracle.

    ``neighbors_of`` is either ``network.neighbors`` (the object path) or the
    compiled CSR rows (no per-call adjacency building).
    """
    lookups_before = syndrome.lookups
    nodes: set[int] = {u0}
    parent: dict[int, int] = {}
    contributors: set[int] = set()
    all_healthy = False
    truncated = False

    def budget_reached() -> bool:
        return max_nodes is not None and len(nodes) >= max_nodes

    # ---------------------------------------------------------------- round 1
    # U_1: scan the unordered pairs of u0's neighbours (at most Δ(Δ-1)/2
    # syndrome lookups, matching the accounting of Section 6); a 0-result
    # admits both members of the pair.
    neighbors0 = sorted(v for v in neighbors_of(u0) if restrict is None or restrict(v))
    added_set: set[int] = set()
    for i, v in enumerate(neighbors0):
        if budget_reached():
            truncated = True
            break
        for w in neighbors0[i + 1 :]:
            if v in added_set and w in added_set:
                continue
            if syndrome.lookup(u0, v, w) == 0:
                for node in (v, w):
                    if node not in added_set and not budget_reached():
                        added_set.add(node)
                        parent[node] = u0
    nodes.update(added_set)
    rounds = 1 if added_set else 0
    if added_set:
        contributors.add(u0)
    if len(contributors) > diagnosability:
        all_healthy = True

    frontier = sorted(added_set)

    # ------------------------------------------------------------ rounds >= 2
    while frontier:
        if all_healthy and stop_on_certificate:
            truncated = True
            break
        if budget_reached():
            truncated = True
            break
        new_nodes: list[int] = []
        new_set: set[int] = set()
        for u in frontier:  # already sorted: guarantees t(v) is the least contributor
            t_u = parent.get(u, u0)
            for v in neighbors_of(u):
                if v in nodes or v in new_set:
                    continue
                if restrict is not None and not restrict(v):
                    continue
                if budget_reached() or (max_nodes is not None and
                                        len(nodes) + len(new_set) >= max_nodes):
                    truncated = True
                    break
                if syndrome.lookup(u, v, t_u) == 0:
                    new_set.add(v)
                    new_nodes.append(v)
                    parent[v] = u
                    contributors.add(u)
            if truncated:
                break
        if not new_nodes:
            break
        nodes.update(new_set)
        rounds += 1
        if len(contributors) > diagnosability:
            all_healthy = True
        frontier = sorted(new_set)
        if truncated:
            break

    return SetBuilderResult(
        root=u0,
        all_healthy=all_healthy,
        nodes=nodes,
        parent=parent,
        contributors=contributors,
        rounds=rounds,
        lookups=syndrome.lookups - lookups_before,
        truncated=truncated,
    )


def _set_builder_array(
    csr,
    syndrome: ArraySyndrome,
    u0: int,
    diagnosability: int,
    restrict: Callable[[int], bool] | None,
    max_nodes: int | None,
    stop_on_certificate: bool,
) -> SetBuilderResult:
    """Flat-array hot path: byte-mask membership, O(1) pair-indexed lookups.

    Mirrors :func:`_set_builder_oracle` statement for statement; the only
    representational differences are the byte mask standing in for the
    ``nodes`` set and direct buffer reads standing in for ``syndrome.lookup``
    (the consulted-entry count is accumulated locally and credited to the
    syndrome's counter on exit).
    """
    rows = csr.rows
    pair_base = csr.pair_base
    buf = syndrome.buffer
    lookups = 0

    in_tree = bytearray(csr.num_nodes)
    in_tree[u0] = 1
    tree_count = 1
    tree_nodes: list[int] = [u0]
    parent: dict[int, int] = {}
    contributors: set[int] = set()
    all_healthy = False
    truncated = False

    # ---------------------------------------------------------------- round 1
    row0 = rows[u0]
    d0 = len(row0)
    base0 = pair_base[u0]
    if restrict is None:
        candidates = list(enumerate(row0))
    else:
        candidates = [(i, v) for i, v in enumerate(row0) if restrict(v)]
    in_added = bytearray(csr.num_nodes)
    added: list[int] = []
    for a, (i, v) in enumerate(candidates):
        if max_nodes is not None and tree_count >= max_nodes:
            truncated = True
            break
        for j, w in candidates[a + 1 :]:
            if in_added[v] and in_added[w]:
                continue
            lookups += 1
            if buf[base0 + i * (2 * d0 - i - 1) // 2 + (j - i - 1)] == 0:
                for node in (v, w):
                    if not in_added[node] and not (
                        max_nodes is not None and tree_count >= max_nodes
                    ):
                        in_added[node] = 1
                        added.append(node)
                        parent[node] = u0
    for node in added:
        in_tree[node] = 1
    tree_count += len(added)
    tree_nodes.extend(added)
    rounds = 1 if added else 0
    if added:
        contributors.add(u0)
    if len(contributors) > diagnosability:
        all_healthy = True

    frontier = sorted(added)

    # ------------------------------------------------------------ rounds >= 2
    while frontier:
        if all_healthy and stop_on_certificate:
            truncated = True
            break
        if max_nodes is not None and tree_count >= max_nodes:
            truncated = True
            break
        new_nodes: list[int] = []
        in_new = bytearray(csr.num_nodes)
        new_count = 0
        for u in frontier:  # already sorted: guarantees t(v) is the least contributor
            row = rows[u]
            d = len(row)
            t_u = parent.get(u, u0)
            pos_t = bisect_left(row, t_u)
            base = pair_base[u]
            for pos, v in enumerate(row):
                if in_tree[v] or in_new[v]:
                    continue
                if restrict is not None and not restrict(v):
                    continue
                if max_nodes is not None and tree_count + new_count >= max_nodes:
                    truncated = True
                    break
                if pos < pos_t:
                    i, j = pos, pos_t
                else:
                    i, j = pos_t, pos
                lookups += 1
                if buf[base + i * (2 * d - i - 1) // 2 + (j - i - 1)] == 0:
                    in_new[v] = 1
                    new_count += 1
                    new_nodes.append(v)
                    parent[v] = u
                    contributors.add(u)
            if truncated:
                break
        if not new_nodes:
            break
        for node in new_nodes:
            in_tree[node] = 1
        tree_count += new_count
        tree_nodes.extend(new_nodes)
        rounds += 1
        if len(contributors) > diagnosability:
            all_healthy = True
        new_nodes.sort()
        frontier = new_nodes
        if truncated:
            break

    syndrome.lookups += lookups
    return SetBuilderResult(
        root=u0,
        all_healthy=all_healthy,
        nodes=set(tree_nodes),
        parent=parent,
        contributors=contributors,
        rounds=rounds,
        lookups=lookups,
        truncated=truncated,
    )


def _expand_root_pairs(
    csr, pbuf, u0: int
) -> tuple[list[int], dict[int, int], int]:
    """Round 1 of the array paths: scan the root's neighbour pairs (scalar).

    Returns ``(added, parent, lookups)`` exactly as the scalar paths produce
    them — Δ(Δ-1)/2 pair reads with the double-admission suppression.  Shared
    by the vectorised path below and by the shard-aware builder
    (:class:`repro.parallel.sharded.ShardedSetBuilder`), whose coordinator
    runs round 1 locally because it is tiny.
    """
    row0 = csr.rows[u0]
    d0 = len(row0)
    base0 = csr.pair_base[u0]
    in_added: set[int] = set()
    added: list[int] = []
    parent: dict[int, int] = {}
    lookups = 0
    for i in range(d0):
        v = row0[i]
        for j in range(i + 1, d0):
            w = row0[j]
            if v in in_added and w in in_added:
                continue
            lookups += 1
            if pbuf[base0 + i * (2 * d0 - i - 1) // 2 + (j - i - 1)] == 0:
                for node in (v, w):
                    if node not in in_added:
                        in_added.add(node)
                        added.append(node)
                        parent[node] = u0
    return added, parent, lookups


def _expand_frontier_segment(
    csr,
    buf: np.ndarray,
    member: np.ndarray,
    frontier: np.ndarray,
    parents: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Candidate occurrences of a frontier slice, in sequential visit order.

    Gathers every ``(tester u, neighbour v)`` pair of the slice in
    (u ascending, row position ascending) order — the order the scalar paths
    visit them in — drops current members, and reads each survivor's test
    ``s_u(v, t(u))`` from the flat buffer.  Pure function of round-start
    state; the vectorised path calls it with the whole frontier, the
    shard-aware builder (:mod:`repro.parallel.sharded`) with per-shard
    slices whose concatenation is the same global order.

    Returns ``(v, u, result)`` arrays in slice-local flat order.
    """
    empty = np.empty(0, dtype=np.int64)
    if frontier.size == 0:
        return empty, empty, np.empty(0, dtype=np.uint8)
    indptr, indices, pair_indptr = csr.indptr, csr.indices, csr.pair_indptr

    counts = (indptr[frontier + 1] - indptr[frontier]).astype(np.int64)
    total = int(counts.sum())
    row_starts = np.repeat(indptr[frontier], counts)
    seg_ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(seg_ends - counts, counts)
    nbr = indices[row_starts + within].astype(np.int64)
    src = np.repeat(frontier, counts)
    d_el = np.repeat(counts, counts)

    # Position of each tester's parent inside its sorted row (one match per
    # tester, emitted in tester order by construction).
    parent_el = np.repeat(parents, counts)
    pos_t = within[nbr == parent_el]
    pos_t_el = np.repeat(pos_t, counts)

    keep = ~member[nbr]
    v_c = nbr[keep]
    src_c = src[keep]
    i_c = np.minimum(within[keep], pos_t_el[keep])
    j_c = np.maximum(within[keep], pos_t_el[keep])
    d_c = d_el[keep]
    slots = pair_indptr[src_c] + i_c * (2 * d_c - i_c - 1) // 2 + (j_c - i_c - 1)
    return v_c, src_c, buf[slots]


def _merge_frontier_candidates(
    n: int, v_c: np.ndarray, src_c: np.ndarray, val_c: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """Sequential admission semantics over flat-order candidate occurrences.

    A node joins at its *first* 0-result occurrence (its tester becomes
    ``t(v)`` — the least contributor, since the flat order ascends by
    tester), and occurrences strictly after the admitting one are discounted
    because the sequential procedure never consults tests of a node that has
    already joined.  The reversed fancy-index assignment keeps the first
    occurrence per node without a sort.

    Returns ``(added nodes ascending, their admitting testers, lookups)``.
    This is the single merge the vectorised path and the cross-shard
    coordinator both use — keeping their lookup accounting identical by
    construction.
    """
    m = len(v_c)
    if m == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 0
    idx_m = np.arange(m, dtype=np.int64)
    first0 = np.full(n, m, dtype=np.int64)
    zsel = val_c == 0
    first0[v_c[zsel][::-1]] = idx_m[zsel][::-1]
    lookups = m - int((idx_m > first0[v_c]).sum())
    added_v = np.flatnonzero(first0 < m)
    added_u = src_c[first0[added_v]]
    return added_v, added_u, lookups


def _set_builder_array_vectorized(
    csr,
    syndrome: ArraySyndrome,
    u0: int,
    diagnosability: int,
    stop_on_certificate: bool,
) -> SetBuilderResult:
    """Whole-frontier array path for unrestricted, unbudgeted runs.

    Each round expands the entire frontier with one
    :func:`_expand_frontier_segment` gather and admits through
    :func:`_merge_frontier_candidates`.  The procedure, the tie-breaking
    (``t(v)`` is the least contributor: frontiers ascend and, per added
    node, the first candidate parent in flat order wins) and the
    consulted-entry accounting replicate the scalar paths exactly — a
    candidate stops generating lookups once an earlier tester in the same
    round has already admitted it.
    """
    buf = syndrome.values_array
    lookups = 0

    n = csr.num_nodes
    member = np.zeros(n, dtype=bool)
    member[u0] = True
    parent_np = np.full(n, -1, dtype=np.int64)
    tree_nodes: list[int] = [u0]
    parent: dict[int, int] = {}
    contributors: set[int] = set()
    all_healthy = False
    truncated = False

    # ---------------------------------------------------------------- round 1
    # Δ(Δ-1)/2 pairs of the root's row: scalar (tiny) — identical to the
    # scalar paths.
    added, parent, root_lookups = _expand_root_pairs(csr, syndrome.buffer, u0)
    lookups += root_lookups
    if added:
        added_arr = np.asarray(added, dtype=np.int64)
        member[added_arr] = True
        parent_np[added_arr] = u0
        tree_nodes.extend(added)
        contributors.add(u0)
    rounds = 1 if added else 0
    if len(contributors) > diagnosability:
        all_healthy = True

    frontier = np.asarray(sorted(added), dtype=np.int64)

    # ------------------------------------------------------------ rounds >= 2
    while frontier.size:
        if all_healthy and stop_on_certificate:
            truncated = True
            break
        v_c, src_c, val_c = _expand_frontier_segment(
            csr, buf, member, frontier, parent_np[frontier]
        )
        added_v, added_u, round_lookups = _merge_frontier_candidates(
            n, v_c, src_c, val_c
        )
        lookups += round_lookups
        if added_v.size == 0:
            break
        member[added_v] = True
        parent_np[added_v] = added_u
        parent.update(zip(added_v.tolist(), added_u.tolist()))
        tree_nodes.extend(added_v.tolist())
        contributors.update(added_u.tolist())
        rounds += 1
        if len(contributors) > diagnosability:
            all_healthy = True
        frontier = added_v  # already sorted ascending

    syndrome.lookups += lookups
    return SetBuilderResult(
        root=u0,
        all_healthy=all_healthy,
        nodes=set(tree_nodes),
        parent=parent,
        contributors=contributors,
        rounds=rounds,
        lookups=lookups,
        truncated=truncated,
        member_mask=member,
    )


# --------------------------------------------------------------- stacked kernel
def _stacked_round(csr, n, idx, member_flat, parent_flat, first0, buffers,
                   frontier_keys, lookups):
    """One expansion round over the concatenation of every active frontier.

    The frontier concatenates all still-growing syndromes' round frontiers in
    syndrome-blocked, node-ascending order (flat keys ``syndrome * n + node``),
    so the flat gather order *within* one syndrome's block is exactly the
    order the single-syndrome path visits — which is what keeps first-zero
    admission and lookup discounting bit-identical per syndrome.  First-zero
    admission runs over the flat keys: a key's first 0-result occurrence in
    the global order is also the first in its own syndrome's local order, and
    the comparisons behind the lookup discount never cross syndromes because
    ``first0`` entries only ever point at occurrences of their own key.

    The hot loop is memory-bound, not call-bound, so the layout is built for
    traffic: element arrays use the narrow ``idx`` dtype, the candidate
    subset is carried as *positions* (one ``flatnonzero``, then narrow
    gathers) instead of repeated boolean compressions, per-tester metadata is
    fetched through a segment index rather than repeated out to full element
    width, and the persistent ``first0`` scoreboard is reset per round only
    at the keys it actually touched (never rescanned end to end).

    Mutates ``member_flat``/``parent_flat``/``first0``/``lookups`` in place
    and returns the admitted keys (ascending — directly the next frontier)
    with their admitting testers.
    """
    indices = csr.indices
    empty = np.empty(0, dtype=idx)
    num_syndromes = len(buffers)
    sentinel = np.iinfo(idx).max

    syn_of = frontier_keys // n
    frontier = frontier_keys - syn_of * n
    parents = parent_flat[frontier_keys]
    ip_lo = csr.indptr[frontier]
    counts = csr.indptr[frontier + 1] - ip_lo
    seg_ends = np.cumsum(counts)
    total = int(seg_ends[-1])
    ip_lo = ip_lo.astype(idx)
    counts_n = counts.astype(idx)

    # Flat address into ``indices`` of every (tester, row position) element:
    # one repeat of the per-segment shift plus a single arange, in place.
    addr = np.repeat(ip_lo - (seg_ends - counts).astype(idx), counts)
    addr += np.arange(total, dtype=idx)
    nbr = indices[addr].astype(idx, copy=False)

    # Each tester's sorted row holds its tree parent exactly once; the match
    # positions come out in segment order, giving one parent offset per
    # tester without a per-element companion array.
    pos_t = addr[nbr == np.repeat(parents, counts)] - ip_lo
    assert pos_t.shape == frontier.shape  # one parent per tester, aligned

    key = np.repeat(frontier_keys - frontier, counts)  # syndrome * n
    key += nbr
    keep_pos = np.flatnonzero(~member_flat[key])
    kept = keep_pos.size
    if kept == 0:
        return empty, empty

    # Candidate attributes: per-element values sliced by position, per-tester
    # values through the segment index (narrow gathers, no full-width copies).
    seg_idx = np.repeat(np.arange(frontier.size, dtype=idx), counts)[keep_pos]
    keys_c = key[keep_pos]
    within_c = addr[keep_pos]
    within_c -= ip_lo[seg_idx]
    pos_c = pos_t[seg_idx]
    i_c = np.minimum(within_c, pos_c)
    j_c = np.maximum(within_c, pos_c)
    d_c = counts_n[seg_idx]
    slots = csr.pair_indptr[frontier].astype(idx)[seg_idx]
    slots += i_c * (2 * d_c - i_c - 1) // 2 + (j_c - i_c - 1)

    # Gather each candidate's test result from its own syndrome's buffer.
    # Candidates are syndrome-blocked, so the per-syndrome slices fall out of
    # the block boundaries: frontier-level ends (a searchsorted over the
    # sorted frontier keys) -> element-level ends (prefix sums) -> kept-level
    # ends (a searchsorted over the sorted positions).  B binary searches,
    # never a per-candidate syndrome-id array.
    fb = np.searchsorted(
        frontier_keys, np.arange(1, num_syndromes + 1, dtype=np.int64) * n
    )
    elem_ends = np.concatenate(([0], seg_ends))[fb]
    kb = np.concatenate(([0], np.searchsorted(keep_pos, elem_ends)))
    val_c = np.empty(kept, dtype=np.uint8)
    for b in range(num_syndromes):
        lo, hi = kb[b], kb[b + 1]
        if lo < hi:
            val_c[lo:hi] = buffers[b][slots[lo:hi]]

    # First-zero admission: the reversed assignment leaves each admitted
    # key's *earliest* 0-result position; later occurrences of an admitted
    # key are not consulted (the <= comparison is the lookup discount, and
    # one running sum sliced at the block bounds credits it per syndrome).
    zpos = np.flatnonzero(val_c == 0).astype(idx, copy=False)
    zk = keys_c[zpos]
    first0[zk[::-1]] = zpos[::-1]
    counted = np.arange(kept, dtype=idx) <= first0[keys_c]
    csum = np.concatenate(([0], np.cumsum(counted, dtype=np.int64)))
    lookups += csum[kb[1:]] - csum[kb[:-1]]

    # The admitted set is exactly the keys whose scoreboard entry left the
    # sentinel this round — a linear scan of the (small, cache-resident)
    # scoreboard, already ascending (= syndrome-blocked), instead of a sort
    # over every zero-valued candidate.
    added_keys = np.flatnonzero(first0 != sentinel).astype(idx, copy=False)
    if added_keys.size == 0:
        return empty, empty
    added_u = frontier[seg_idx[first0[added_keys]]]
    first0[added_keys] = sentinel  # reset only the touched keys
    member_flat[added_keys] = True
    parent_flat[added_keys] = added_u
    return added_keys, added_u


def set_builder_many(
    network: InterconnectionNetwork,
    syndromes: Sequence["ArraySyndrome"],
    roots: Sequence[int],
    *,
    diagnosability: int | None = None,
    materialize: bool = True,
) -> list[SetBuilderResult]:
    """Run unrestricted ``Set_Builder`` for a whole stack of syndromes at once.

    One compiled topology, ``B`` syndromes, ``B`` start nodes: every round
    expands the *concatenation* of all still-active per-syndrome frontiers in
    a single array pass (membership and parents live in flattened ``(B, n)``
    arrays keyed by ``syndrome * n + node``).  The batch amortises the
    per-round call overhead *and* runs a leaner per-element pipeline than
    the single-syndrome path (narrow index dtype, position-based candidate
    compression, touched-key scoreboard resets — see :func:`_stacked_round`),
    which is where the serving layer's batch throughput comes from on one
    core.  Syndromes terminate independently — one that adds no nodes in a
    round simply stops contributing candidates while the others keep
    growing.

    Results are **bit-identical** per syndrome to
    :func:`_set_builder_array_vectorized` (grown set, parents, contributors,
    rounds, the certificate, and the consulted-entry count — which is also
    credited to each syndrome's ``lookups`` counter), pinned by the
    differential suite.  Only unrestricted, unbudgeted runs are supported —
    the final network-sized run of the diagnosis algorithm, which is the only
    step worth batching.

    ``materialize=False`` skips building the per-syndrome ``nodes`` /
    ``parent`` / ``contributors`` Python collections (they come back empty);
    ``member_mask``, ``rounds``, ``lookups`` and ``all_healthy`` are always
    exact.  The serving path uses this: it needs only the mask (for the
    boundary) and the counters, and per-syndrome dict/set construction would
    otherwise cap the batch speedup.
    """
    from ..backend.array_syndrome import ArraySyndrome

    if len(syndromes) != len(roots):
        raise ValueError("need exactly one start node per syndrome")
    num_syndromes = len(syndromes)
    if num_syndromes == 0:
        return []
    csr = compile_network(network)
    if diagnosability is None:
        diagnosability = network.diagnosability()
    buffers = []
    for syndrome in syndromes:
        if not isinstance(syndrome, ArraySyndrome) or syndrome.csr is not csr:
            raise ValueError(
                "set_builder_many needs ArraySyndromes over this network's "
                "compiled topology"
            )
        buffers.append(np.ascontiguousarray(syndrome.values_array))
    n = csr.num_nodes
    for u0 in roots:
        if not 0 <= u0 < n:
            raise ValueError(f"start node {u0} is not a node of the network")

    # Narrow index dtype halves the per-round memory traffic; fall back to
    # int64 only when an address space genuinely needs it.
    wide = max(
        num_syndromes * n,
        num_syndromes * csr.num_entries,
        csr.num_pairs,
    ) >= np.iinfo(np.int32).max
    idx = np.int64 if wide else np.int32

    native = load_stacked_kernel()
    member_flat = np.zeros(num_syndromes * n, dtype=bool)
    # The native pass works in int64 throughout; the numpy rounds keep the
    # narrow dtype for memory traffic.
    parent_flat = np.full(
        num_syndromes * n, -1, dtype=np.int64 if native is not None else idx
    )
    rounds = np.zeros(num_syndromes, dtype=np.int64)
    lookups = np.zeros(num_syndromes, dtype=np.int64)
    #: flat ``syndrome * n + tester`` flags of testers already counted as
    #: contributors, plus the running per-syndrome distinct-contributor count
    contributed = np.zeros(num_syndromes * n, dtype=bool)
    contrib_count = np.zeros(num_syndromes, dtype=np.int64)

    # ---------------------------------------------------------------- round 1
    # Per-syndrome scalar root-pair scans (Δ(Δ-1)/2 each — tiny), exactly the
    # single path's round 1; the stacked frontier starts syndrome-blocked.
    frontier_parts: list[np.ndarray] = []
    for b, (syndrome, u0) in enumerate(zip(syndromes, roots)):
        member_flat[b * n + u0] = True
        added, _, root_lookups = _expand_root_pairs(csr, syndrome.buffer, u0)
        lookups[b] += root_lookups
        if added:
            arr = np.asarray(sorted(added), dtype=idx)
            member_flat[b * n + arr] = True
            parent_flat[b * n + arr] = u0
            rounds[b] = 1
            contributed[b * n + u0] = True
            contrib_count[b] = 1
            frontier_parts.append(b * n + arr)
    frontier_keys = (
        np.concatenate(frontier_parts) if frontier_parts
        else np.empty(0, dtype=idx)
    )

    # ------------------------------------------------------------ rounds >= 2
    if native is not None:
        if frontier_keys.size:
            buf_ptr = ctypes.POINTER(ctypes.c_ubyte)
            buf_ptrs = (buf_ptr * num_syndromes)(
                *[b.ctypes.data_as(buf_ptr) for b in buffers]
            )
            code = native(
                csr.indptr, csr.indices, csr.pair_indptr, buf_ptrs,
                n, num_syndromes,
                frontier_keys.astype(np.int64), frontier_keys.size,
                member_flat.view(np.uint8), parent_flat,
                lookups, rounds,
                contributed.view(np.uint8), contrib_count,
            )
            if code != 0:
                raise RuntimeError(
                    f"native stacked kernel failed with code {code}"
                )
    else:
        #: persistent first-zero scoreboard over flat keys; sentinel
        #: everywhere except the keys a round is currently admitting
        first0 = np.full(num_syndromes * n, np.iinfo(idx).max, dtype=idx)
        while frontier_keys.size:
            added_keys, added_u = _stacked_round(
                csr, n, idx, member_flat, parent_flat, first0, buffers,
                frontier_keys, lookups,
            )
            if added_keys.size == 0:
                break
            syn_added = added_keys // n
            rounds += np.bincount(syn_added, minlength=num_syndromes) > 0
            fresh = np.unique(syn_added * n + added_u)
            fresh = fresh[~contributed[fresh]]
            contributed[fresh] = True
            contrib_count += np.bincount(fresh // n, minlength=num_syndromes)
            frontier_keys = added_keys  # sorted: blocked, nodes ascending

    # ----------------------------------------------------------------- results
    member2d = member_flat.reshape(num_syndromes, n)
    parent2d = parent_flat.reshape(num_syndromes, n)
    results: list[SetBuilderResult] = []
    for b, syndrome in enumerate(syndromes):
        if materialize:
            owned = np.flatnonzero(member2d[b])
            child = owned[parent2d[b][owned] >= 0]
            parent_of = parent2d[b][child]
            nodes = set(owned.tolist())
            parent = dict(zip(child.tolist(), parent_of.tolist()))
            contributors = (
                set(np.unique(parent_of).tolist()) if child.size else set()
            )
        else:
            nodes, parent, contributors = set(), {}, set()
        syndrome.lookups += int(lookups[b])
        results.append(
            SetBuilderResult(
                root=int(roots[b]),
                all_healthy=bool(contrib_count[b] > diagnosability),
                nodes=nodes,
                parent=parent,
                contributors=contributors,
                rounds=int(rounds[b]),
                lookups=int(lookups[b]),
                truncated=False,
                member_mask=member2d[b],
            )
        )
    return results
