"""The ``Set_Builder`` procedure (paper Section 4.1).

``Set_Builder(u0)`` grows a set ``U_r`` of nodes from a start node ``u0`` by
repeatedly adding neighbours whose comparison test against the parent of the
tester returned 0:

* ``U_0 = {u0}``;
* ``U_1 = {u0} ∪ {v : (u0, v) ∈ E and ∃ w ≠ v, (u0, w) ∈ E, s_{u0}(v, w) = 0}``
  with ``t(v) = u0`` for the added nodes;
* for ``i ≥ 2``,
  ``U_i = U_{i-1} ∪ {v ∉ U_{i-1} : (u, v) ∈ E for some u ∈ U_{i-1} \\ U_{i-2}
  with s_u(v, t(u)) = 0}``, where ``t(v)`` is the *least* such ``u`` in the
  fixed node ordering.

The function ``t`` describes a tree ``T`` rooted at ``u0``.  The nodes that
appear as some ``t(v)`` are the *contributors* (the internal nodes of ``T``)
and they are either all healthy or all faulty; therefore as soon as more than
``δ`` (the diagnosability, an upper bound on the number of faults) distinct
contributors have been seen, every node of ``U_r`` is certifiably healthy
(``all_healthy``).

This module implements the procedure verbatim, plus two practical controls the
surrounding driver uses: an optional membership restriction (the paper's
``Set_Builder(u0, H)``), an optional node budget, and optional early exit once
the certificate fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..networks.base import InterconnectionNetwork
from .syndrome import Syndrome

__all__ = ["SetBuilderResult", "set_builder", "certificate_node_budget"]


@dataclass
class SetBuilderResult:
    """Outcome of one ``Set_Builder`` run.

    Attributes
    ----------
    root:
        The start node ``u0``.
    all_healthy:
        True iff the contributor certificate fired (more than ``δ`` distinct
        contributors), proving every node of ``nodes`` healthy.
    nodes:
        The grown set ``U_r``.
    parent:
        The tree function ``t``: ``parent[v]`` is the parent of ``v`` in the
        tree ``T`` (the root has no entry).
    contributors:
        The internal nodes of ``T`` (the union of the ``C_i``).
    rounds:
        Number of iterations of the while-loop (the final ``r``).
    lookups:
        Syndrome entries consulted by this run.
    truncated:
        True iff the run stopped because of the node budget or the
        early-certificate exit rather than reaching the fixpoint
        ``U_r = U_{r+1}``.
    """

    root: int
    all_healthy: bool
    nodes: set[int]
    parent: dict[int, int]
    contributors: set[int]
    rounds: int
    lookups: int
    truncated: bool = False

    @property
    def size(self) -> int:
        return len(self.nodes)

    def tree_edges(self) -> list[tuple[int, int]]:
        """Edges ``(t(v), v)`` of the tree ``T`` (the paper's healthy spanning tree)."""
        return [(p, v) for v, p in self.parent.items()]

    def depth_of(self, v: int) -> int:
        """Depth of ``v`` in ``T`` (root has depth 0)."""
        depth = 0
        while v in self.parent:
            v = self.parent[v]
            depth += 1
        return depth


def certificate_node_budget(diagnosability: int, max_degree: int) -> int:
    """Node budget guaranteeing the certificate fires for a healthy root.

    In the tree ``T`` every internal node has at most ``Δ`` children, so a
    tree with more than ``δ·Δ + 1`` nodes necessarily has more than ``δ``
    internal nodes.  Exploring that many nodes from a healthy root therefore
    always produces the ``all_healthy`` certificate (provided the healthy
    component is at least that large); the probing fallback of the diagnosis
    driver uses this budget to keep each probe cheap.
    """
    return diagnosability * max_degree + 2


def set_builder(
    network: InterconnectionNetwork,
    syndrome: Syndrome,
    u0: int,
    *,
    diagnosability: int | None = None,
    restrict: Callable[[int], bool] | None = None,
    max_nodes: int | None = None,
    stop_on_certificate: bool = False,
) -> SetBuilderResult:
    """Run ``Set_Builder(u0)`` (or ``Set_Builder(u0, H)`` when ``restrict`` is given).

    Parameters
    ----------
    network:
        The interconnection network ``G``.
    syndrome:
        The syndrome oracle ``s``.
    u0:
        The start node.
    diagnosability:
        The bound ``δ`` on the number of faults; defaults to
        ``network.diagnosability()``.
    restrict:
        Optional membership predicate defining the subgraph ``H``; only nodes
        satisfying it are ever added (``u0`` must satisfy it).
    max_nodes:
        Optional budget on ``|U_r|``; growth stops once reached (the result is
        then marked ``truncated`` and carries no completeness guarantee, but
        the ``all_healthy`` certificate remains sound).
    stop_on_certificate:
        If True, growth stops as soon as the certificate fires.
    """
    if diagnosability is None:
        diagnosability = network.diagnosability()
    if restrict is not None and not restrict(u0):
        raise ValueError("the start node u0 must belong to the restricted subgraph H")
    if not 0 <= u0 < network.num_nodes:
        raise ValueError(f"start node {u0} is not a node of the network")

    lookups_before = syndrome.lookups
    nodes: set[int] = {u0}
    parent: dict[int, int] = {}
    contributors: set[int] = set()
    all_healthy = False
    truncated = False

    def budget_reached() -> bool:
        return max_nodes is not None and len(nodes) >= max_nodes

    # ---------------------------------------------------------------- round 1
    # U_1: scan the unordered pairs of u0's neighbours (at most Δ(Δ-1)/2
    # syndrome lookups, matching the accounting of Section 6); a 0-result
    # admits both members of the pair.
    neighbors0 = sorted(v for v in network.neighbors(u0) if restrict is None or restrict(v))
    added_set: set[int] = set()
    for i, v in enumerate(neighbors0):
        if budget_reached():
            truncated = True
            break
        for w in neighbors0[i + 1 :]:
            if v in added_set and w in added_set:
                continue
            if syndrome.lookup(u0, v, w) == 0:
                for node in (v, w):
                    if node not in added_set and not budget_reached():
                        added_set.add(node)
                        parent[node] = u0
    nodes.update(added_set)
    rounds = 1 if added_set else 0
    if added_set:
        contributors.add(u0)
    if len(contributors) > diagnosability:
        all_healthy = True

    frontier = sorted(added_set)

    # ------------------------------------------------------------ rounds >= 2
    while frontier:
        if all_healthy and stop_on_certificate:
            truncated = True
            break
        if budget_reached():
            truncated = True
            break
        new_nodes: list[int] = []
        new_set: set[int] = set()
        for u in frontier:  # already sorted: guarantees t(v) is the least contributor
            t_u = parent.get(u, u0)
            for v in network.neighbors(u):
                if v in nodes or v in new_set:
                    continue
                if restrict is not None and not restrict(v):
                    continue
                if budget_reached() or (max_nodes is not None and
                                        len(nodes) + len(new_set) >= max_nodes):
                    truncated = True
                    break
                if syndrome.lookup(u, v, t_u) == 0:
                    new_set.add(v)
                    new_nodes.append(v)
                    parent[v] = u
                    contributors.add(u)
            if truncated:
                break
        if not new_nodes:
            break
        nodes.update(new_set)
        rounds += 1
        if len(contributors) > diagnosability:
            all_healthy = True
        frontier = sorted(new_set)
        if truncated:
            break

    return SetBuilderResult(
        root=u0,
        all_healthy=all_healthy,
        nodes=nodes,
        parent=parent,
        contributors=contributors,
        rounds=rounds,
        lookups=syndrome.lookups - lookups_before,
        truncated=truncated,
    )
