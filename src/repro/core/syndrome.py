"""Syndromes under the comparison (MM) diagnosis model.

Under the MM model (paper Section 2) every node ``u`` tests every unordered
pair ``{v, w}`` of its neighbours and records a result ``s_u(v, w) ∈ {0, 1}``:

* if ``u`` is healthy, ``s_u(v, w) = 0`` iff **both** ``v`` and ``w`` are
  healthy (a faulty node always produces an incorrect response and two faulty
  nodes never produce identical responses, so any faulty neighbour forces a
  ``1``);
* if ``u`` is faulty the result is arbitrary.

The set of all results is the *syndrome*.  Two realisations are provided:

:class:`TableSyndrome`
    The complete syndrome stored as a table — this models the paper's setting
    in which "the syndrome has already been obtained" and makes the size of
    the full table explicit (experiment E5 compares the number of entries the
    algorithm reads against this size).

:class:`LazySyndrome`
    Test results are produced on demand from the hidden fault set (with a
    seeded generator for the arbitrary results of faulty testers) and cached
    so repeated queries are consistent.  This realisation mirrors the paper's
    observation (Section 6) that the algorithm can avoid performing or
    consulting most tests.

Both count every lookup, which is the basis of the Section 6 cost comparison.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Iterable, Iterator, Mapping

from ..networks.base import InterconnectionNetwork

__all__ = [
    "FaultyTesterBehavior",
    "Syndrome",
    "TableSyndrome",
    "LazySyndrome",
    "generate_syndrome",
    "syndrome_table_size",
]


class FaultyTesterBehavior:
    """How a *faulty* tester answers its comparison tests.

    The MM model leaves these results completely arbitrary; a diagnosis
    algorithm must be correct whichever values they take.  The built-in
    behaviours cover the interesting corners:

    ``"random"``
        Independent fair coin per test (seeded).
    ``"all_zero"``
        The faulty tester always claims its neighbours agree — the most
        misleading behaviour for algorithms that trust 0-results.
    ``"all_one"``
        The faulty tester always reports disagreement.
    ``"mimic"``
        The faulty tester answers exactly as a healthy node would — the
        hardest case for algorithms that try to identify faulty testers by
        inconsistent answers.
    ``"anti_mimic"``
        The faulty tester answers the complement of the healthy answer.
    """

    NAMES = ("random", "all_zero", "all_one", "mimic", "anti_mimic")

    def __init__(self, name: str = "random", *, seed: int | None = 0) -> None:
        if name not in self.NAMES:
            raise ValueError(f"unknown faulty-tester behaviour {name!r}; choose from {self.NAMES}")
        self.name = name
        self.seed = seed

    def result(self, u: int, v: int, w: int, healthy_result: int, rng: random.Random) -> int:
        """Result reported by faulty tester ``u`` for the pair ``{v, w}``."""
        if self.name == "random":
            return rng.randint(0, 1)
        if self.name == "all_zero":
            return 0
        if self.name == "all_one":
            return 1
        if self.name == "mimic":
            return healthy_result
        return 1 - healthy_result  # anti_mimic

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"FaultyTesterBehavior({self.name!r})"


def _canonical(u: int, v: int, w: int) -> tuple[int, int, int]:
    """Canonical key for the unordered test ``s_u(v, w)``."""
    return (u, v, w) if v <= w else (u, w, v)


class Syndrome(ABC):
    """Abstract syndrome: a read-only oracle for ``s_u(v, w)`` with lookup counting."""

    def __init__(self) -> None:
        self.lookups = 0

    @abstractmethod
    def _result(self, u: int, v: int, w: int) -> int:
        """Raw result for the canonical key (no counting)."""

    def lookup(self, u: int, v: int, w: int) -> int:
        """The test result ``s_u(v, w)`` (0 or 1).  Order of ``v, w`` is irrelevant."""
        if v == w:
            raise ValueError("a comparison test needs two distinct neighbours")
        self.lookups += 1
        return self._result(*_canonical(u, v, w))

    def reset_lookups(self) -> None:
        """Reset the lookup counter (used between benchmark phases)."""
        self.lookups = 0

    # Convenience alias matching the paper's notation.
    def s(self, u: int, v: int, w: int) -> int:
        """Alias of :meth:`lookup` mirroring the paper's ``s_u(v, w)`` notation."""
        return self.lookup(u, v, w)


class TableSyndrome(Syndrome):
    """A fully materialised syndrome table."""

    def __init__(self, table: Mapping[tuple[int, int, int], int]) -> None:
        super().__init__()
        self._table = {
            _canonical(*key): int(value) for key, value in table.items()
        }

    def _result(self, u: int, v: int, w: int) -> int:
        return self._table[(u, v, w)]

    def __len__(self) -> int:
        """Number of entries in the full table."""
        return len(self._table)

    def items(self) -> Iterator[tuple[tuple[int, int, int], int]]:
        """Iterate ``((u, v, w), result)`` pairs (used by baselines that scan the table)."""
        return iter(self._table.items())

    def with_overrides(
        self, overrides: Mapping[tuple[int, int, int], int]
    ) -> "TableSyndrome":
        """A copy of the table with some entries replaced (used by tests)."""
        table = dict(self._table)
        for key, value in overrides.items():
            table[_canonical(*key)] = int(value)
        return TableSyndrome(table)


class LazySyndrome(Syndrome):
    """A syndrome computed on demand from a hidden fault set.

    Results are cached so that repeated lookups of the same test are
    consistent (the MM model's arbitrary results are arbitrary but fixed for a
    given syndrome).
    """

    def __init__(
        self,
        network: InterconnectionNetwork,
        faults: Iterable[int],
        *,
        behavior: FaultyTesterBehavior | str = "random",
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        self.network = network
        self.faults = frozenset(int(f) for f in faults)
        for f in self.faults:
            if not 0 <= f < network.num_nodes:
                raise ValueError(f"fault {f} is not a node of the network")
        if isinstance(behavior, str):
            behavior = FaultyTesterBehavior(behavior, seed=seed)
        self.behavior = behavior
        self._rng = random.Random(seed)
        self._cache: dict[tuple[int, int, int], int] = {}

    def _healthy_result(self, v: int, w: int) -> int:
        return 1 if (v in self.faults or w in self.faults) else 0

    def _result(self, u: int, v: int, w: int) -> int:
        key = (u, v, w)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        healthy = self._healthy_result(v, w)
        if u in self.faults:
            value = self.behavior.result(u, v, w, healthy, self._rng)
        else:
            value = healthy
        self._cache[key] = value
        return value

    def materialize(self) -> TableSyndrome:
        """Materialise the complete syndrome table for this fault set."""
        table: dict[tuple[int, int, int], int] = {}
        network = self.network
        for u in range(network.num_nodes):
            neighbors = sorted(network.neighbors(u))
            for i, v in enumerate(neighbors):
                for w in neighbors[i + 1 :]:
                    table[(u, v, w)] = self._result(u, v, w)
        return TableSyndrome(table)


def syndrome_table_size(network: InterconnectionNetwork) -> int:
    """Number of entries in the complete syndrome table: ``Σ_u C(deg(u), 2)``."""
    total = 0
    for u in range(network.num_nodes):
        d = network.degree(u)
        total += d * (d - 1) // 2
    return total


def generate_syndrome(
    network: InterconnectionNetwork,
    faults: Iterable[int],
    *,
    behavior: FaultyTesterBehavior | str = "random",
    seed: int | None = 0,
    full_table: bool = False,
    backend: str | None = None,
) -> Syndrome:
    """Generate a syndrome for a fault set under the MM model.

    Parameters
    ----------
    network:
        The interconnection network.
    faults:
        The hidden fault set ``F``.
    behavior:
        How faulty testers answer (see :class:`FaultyTesterBehavior`).
    seed:
        Seed for the arbitrary results of faulty testers.
    full_table:
        If True, the whole syndrome table is materialised up front
        (:class:`TableSyndrome`); otherwise results are produced lazily.
    backend:
        Explicit realisation choice overriding ``full_table``: ``"lazy"``,
        ``"table"`` or ``"array"`` (the flat
        :class:`~repro.backend.array_syndrome.ArraySyndrome` over the compiled
        topology — the fast path of the diagnosis pipeline).  All three agree
        entry for entry for the same faults, behaviour and seed.
    """
    if backend is not None:
        if backend == "array":
            from ..backend.array_syndrome import ArraySyndrome  # deferred: avoids cycle

            return ArraySyndrome.from_faults(network, faults, behavior=behavior, seed=seed)
        if backend not in ("lazy", "table"):
            raise ValueError(f"unknown syndrome backend {backend!r}")
        full_table = backend == "table"
    lazy = LazySyndrome(network, faults, behavior=behavior, seed=seed)
    if full_table:
        return lazy.materialize()
    return lazy
