"""Consistency checks between syndromes, fault sets and diagnoses.

These predicates encode the MM-model semantics of Section 2 and are used by

* the test suite, to validate generated syndromes and diagnosis outputs;
* the exhaustive baseline, which enumerates fault sets and keeps the
  consistent ones;
* the diagnosability utilities, which decide ``δ``-diagnosability of small
  graphs by searching for two distinct consistent fault sets.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from ..backend.csr import compile_network
from ..networks.base import InterconnectionNetwork
from .syndrome import Syndrome

__all__ = [
    "is_consistent_fault_set",
    "consistent_fault_sets",
    "assert_mm_semantics",
]


def is_consistent_fault_set(
    network: InterconnectionNetwork,
    syndrome: Syndrome,
    candidate: Iterable[int],
) -> bool:
    """Whether ``candidate`` could have produced ``syndrome`` under the MM model.

    A fault set ``F`` is consistent with a syndrome iff for every *healthy*
    tester ``u`` (``u ∉ F``) and every pair ``{v, w}`` of its neighbours the
    recorded result equals ``0`` exactly when both ``v`` and ``w`` are outside
    ``F``.  Results of faulty testers are unconstrained.
    """
    fault_set = frozenset(candidate)
    rows = compile_network(network).rows
    for u in range(network.num_nodes):
        if u in fault_set:
            continue
        for v, w in combinations(rows[u], 2):
            expected = 0 if (v not in fault_set and w not in fault_set) else 1
            if syndrome.lookup(u, v, w) != expected:
                return False
    return True


def consistent_fault_sets(
    network: InterconnectionNetwork,
    syndrome: Syndrome,
    max_faults: int,
) -> list[frozenset[int]]:
    """All fault sets of size at most ``max_faults`` consistent with the syndrome.

    Exponential in ``max_faults``; intended for the small instances used to
    validate diagnosability and the exhaustive baseline.
    """
    nodes = range(network.num_nodes)
    found: list[frozenset[int]] = []
    for size in range(max_faults + 1):
        for subset in combinations(nodes, size):
            candidate = frozenset(subset)
            if is_consistent_fault_set(network, syndrome, candidate):
                found.append(candidate)
    return found


def assert_mm_semantics(
    network: InterconnectionNetwork,
    syndrome: Syndrome,
    faults: Iterable[int],
) -> None:
    """Assert that a syndrome obeys the MM model for the given fault set.

    Raises ``AssertionError`` when some healthy tester's result contradicts
    the model (used by the tests of the syndrome generators).
    """
    fault_set = frozenset(faults)
    rows = compile_network(network).rows
    for u in range(network.num_nodes):
        if u in fault_set:
            continue
        for v, w in combinations(rows[u], 2):
            expected = 0 if (v not in fault_set and w not in fault_set) else 1
            actual = syndrome.lookup(u, v, w)
            assert actual == expected, (
                f"healthy tester {u}: s_{u}({v},{w}) = {actual}, expected {expected}"
            )
