"""Diagnosability theory: bounds, sufficient conditions and exact search."""

from .bounds import (
    ChangConditionReport,
    chang_condition,
    indistinguishable_witness,
    min_degree_upper_bound,
)
from .search import are_indistinguishable, exact_diagnosability, is_t_diagnosable

__all__ = [
    "min_degree_upper_bound",
    "indistinguishable_witness",
    "chang_condition",
    "ChangConditionReport",
    "are_indistinguishable",
    "is_t_diagnosable",
    "exact_diagnosability",
]
