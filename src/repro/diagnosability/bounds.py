"""Diagnosability bounds and sufficient conditions (paper Sections 2–3).

Three results from the paper and its references are made executable here:

* the **minimum-degree upper bound** (Section 2): the diagnosability of any
  graph is at most its minimum degree, because the neighbourhood ``N(u)`` of a
  minimum-degree node and ``N(u) ∪ {u}`` are indistinguishable fault sets;
* the **Chang–Lai–Tan–Hsu sufficient condition** [6]: a graph that is regular
  of degree ``n``, has connectivity ``n`` and has at least ``2n + 3`` nodes
  has diagnosability exactly ``n`` under the MM model;
* the **witness construction** for the upper bound, which produces the two
  indistinguishable fault sets explicitly (used by tests and by experiment
  E7 to show non-diagnosability just above the bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..networks.base import InterconnectionNetwork

__all__ = [
    "min_degree_upper_bound",
    "indistinguishable_witness",
    "chang_condition",
    "ChangConditionReport",
]


def min_degree_upper_bound(network: InterconnectionNetwork) -> int:
    """Upper bound on the diagnosability: the minimum degree of the graph."""
    return network.min_degree


def indistinguishable_witness(
    network: InterconnectionNetwork, center: int | None = None
) -> tuple[frozenset[int], frozenset[int]]:
    """Two indistinguishable fault sets realising the minimum-degree bound.

    Following the paper's Section 2 argument: for a node ``u`` of minimum
    degree, the sets ``N(u)`` and ``N(u) ∪ {u}`` admit a common syndrome, so
    the graph is not ``(deg(u) + 1)``-diagnosable.
    """
    if center is None:
        center = min(range(network.num_nodes), key=network.degree)
    neighborhood = frozenset(network.neighbors(center))
    return neighborhood, neighborhood | {center}


@dataclass(frozen=True)
class ChangConditionReport:
    """Outcome of checking the Chang et al. [6] sufficient condition."""

    regular: bool
    degree: int
    connectivity: int
    num_nodes: int
    applies: bool
    implied_diagnosability: int | None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.applies


def chang_condition(
    network: InterconnectionNetwork, *, connectivity: int | None = None
) -> ChangConditionReport:
    """Check the hypotheses of Chang, Lai, Tan & Hsu [6] on a concrete instance.

    The theorem: if a graph is regular of degree ``n``, has connectivity ``n``
    and has at least ``2n + 3`` nodes, its MM-model diagnosability is ``n``.
    ``connectivity`` may be supplied (e.g. the exact value computed by
    networkx); otherwise the network's theoretical value is used.
    """
    degrees = {network.degree(v) for v in range(network.num_nodes)}
    regular = len(degrees) == 1
    degree = next(iter(degrees)) if regular else max(degrees)
    kappa = network.connectivity() if connectivity is None else connectivity
    applies = regular and kappa == degree and network.num_nodes >= 2 * degree + 3
    return ChangConditionReport(
        regular=regular,
        degree=degree,
        connectivity=kappa,
        num_nodes=network.num_nodes,
        applies=applies,
        implied_diagnosability=degree if applies else None,
    )
