"""Exact diagnosability of small graphs by exhaustive distinguishability search.

Under the MM model two fault sets ``F1`` and ``F2`` are *indistinguishable*
iff some syndrome is consistent with both.  Because the results of faulty
testers are unconstrained, this reduces to a purely combinatorial condition:
``F1`` and ``F2`` are indistinguishable iff for every node ``u ∉ F1 ∪ F2`` and
every pair ``{v, w}`` of ``u``'s neighbours,

    ``(v ∈ F1 or w ∈ F1)  ==  (v ∈ F2 or w ∈ F2)``.

A graph is ``t``-diagnosable iff no two *distinct* fault sets of size at most
``t`` are indistinguishable.  The functions below implement this definition
directly; they are exponential and intended for the small instances used by
the tests and by experiment E7 to validate the theoretical diagnosability
values the paper quotes.
"""

from __future__ import annotations

from itertools import combinations

from ..backend.csr import compile_network
from ..networks.base import InterconnectionNetwork

__all__ = ["are_indistinguishable", "is_t_diagnosable", "exact_diagnosability"]


def are_indistinguishable(
    network: InterconnectionNetwork,
    set1: frozenset[int] | set[int],
    set2: frozenset[int] | set[int],
) -> bool:
    """Whether the two fault sets admit a common syndrome under the MM model."""
    f1 = frozenset(set1)
    f2 = frozenset(set2)
    if f1 == f2:
        return True
    union = f1 | f2
    rows = compile_network(network).rows
    for u in range(network.num_nodes):
        if u in union:
            continue
        for v, w in combinations(rows[u], 2):
            in1 = v in f1 or w in f1
            in2 = v in f2 or w in f2
            if in1 != in2:
                return False
    return True


def is_t_diagnosable(network: InterconnectionNetwork, t: int) -> bool:
    """Whether the graph is ``t``-diagnosable (exhaustive; small graphs only)."""
    nodes = range(network.num_nodes)
    candidates: list[frozenset[int]] = []
    for size in range(t + 1):
        candidates.extend(frozenset(c) for c in combinations(nodes, size))
    for i, f1 in enumerate(candidates):
        for f2 in candidates[i + 1 :]:
            if are_indistinguishable(network, f1, f2):
                return False
    return True


def exact_diagnosability(network: InterconnectionNetwork, *, upper_limit: int | None = None) -> int:
    """The largest ``t`` for which the graph is ``t``-diagnosable.

    ``upper_limit`` caps the search (defaults to the minimum degree, which is
    an upper bound on the diagnosability).  Exponential; use only on small
    graphs.
    """
    if upper_limit is None:
        upper_limit = network.min_degree
    best = 0
    for t in range(1, upper_limit + 1):
        if is_t_diagnosable(network, t):
            best = t
        else:
            break
    return best
