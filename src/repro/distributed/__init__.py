"""Distributed self-diagnosis (the paper's further-research direction).

The protocol actually runs here: :class:`~repro.distributed.engine.\
ProtocolEngine` floods invitations and convergecasts reports as real messages
over a channel with per-link latency, loss and duplicate-delivery models,
supports several concurrent known-healthy roots, and records replayable
traces.  :mod:`repro.distributed.simulator` keeps the legacy single-root API
(:class:`DistributedSetBuilder`) as a thin shim plus the original analytical
model (:func:`derived_run_stats`) the engine is property-tested against.
"""

from .engine import GossipOutcome, ProtocolEngine, SetBuilderOutcome, spread_roots
from .events import ChannelConfig, EventLog, Message, replay_stats
from .simulator import (
    DistributedRunStats,
    DistributedSetBuilder,
    derived_run_stats,
    extended_star_gossip_cost,
)

__all__ = [
    "ChannelConfig",
    "DistributedRunStats",
    "DistributedSetBuilder",
    "EventLog",
    "GossipOutcome",
    "Message",
    "ProtocolEngine",
    "SetBuilderOutcome",
    "derived_run_stats",
    "extended_star_gossip_cost",
    "replay_stats",
    "spread_roots",
]
