"""Distributed self-diagnosis simulation (the paper's further-research direction)."""

from .simulator import DistributedRunStats, DistributedSetBuilder, extended_star_gossip_cost

__all__ = ["DistributedSetBuilder", "DistributedRunStats", "extended_star_gossip_cost"]
