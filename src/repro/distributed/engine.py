"""Round-stepped, event-driven engine for the distributed diagnosis protocol.

The legacy simulator (:mod:`repro.distributed.simulator`) *derived* round and
message counts from a sequential ``Set_Builder`` run; nothing ever travelled.
This engine makes the paper's concluding claim (experiment E9) executable as a
real protocol: every node is a state machine with an inbox and an outbox,
invitations/acceptances/convergecast reports are messages scheduled through a
link layer with per-link latency, optional loss and duplicate delivery, and
several known-healthy roots may flood concurrently with deterministic
tree-merge arbitration.  A seeded run is a pure function of its inputs and can
record a replayable trace (:class:`~repro.distributed.events.EventLog`).

Protocol (one tree per root; all roots act in parallel)
-------------------------------------------------------
* **Round 1** — every root consults its *local* test results (its own
  comparison tests — obtaining them costs no communication) and sends an
  ``INVITE`` to each neighbour admitted by the paper's round-1 pair rule.
* **Joining** — a non-member that receives invitations joins the tree of the
  lexicographically least ``(root, inviter)`` among the invitations readable
  that round (single root: the least inviter, matching ``Set_Builder``'s
  "least contributor" tie-break).  It sends an ``ACCEPT`` to its parent in
  the same round and emits its own invitations one round later (the join
  handshake completes before recruiting) to every neighbour ``w`` with
  ``s_v(w, parent) = 0`` that is not its parent and not already known to be
  in a tree.  Tree-membership knowledge is strictly message-derived: a node
  knows exactly the peers it has received frames from.
* **Convergecast** — once growth quiesces, leaves report up the tree; every
  internal node aggregates its subtree (members, boundary candidates and the
  contributor count) into one ``REPORT`` to its parent.  Each root ends up
  holding its tree's summary; the summaries are unioned for the run's
  diagnosis (the trees partition the grown region, so contributors are never
  double counted).  A node's boundary candidates are the neighbours whose
  test against its parent returned 1 — under a healthy root these are
  exactly its faulty neighbours, so message loss can shrink the grown tree
  but can never mark a fault-free node faulty.

Round/message accounting
------------------------
``rounds = growth + convergecast`` where growth is the round of the last
membership change (minimum 2: the root's invitation round plus its listen
round) and convergecast counts report-sending rounds; trailing redundant
invitation deliveries overlap the convergecast, exactly as in the legacy
analytical model.  On a **reliable** channel the protocol runs open-loop and
two invitations crossing one link in opposite directions in the same round
collide and are charged as a single frame (half-duplex coalescing — the
collision itself tells both endpoints the peer is a member).  Under these
conventions a unit-latency, lossless, single-root run reproduces the legacy
``DistributedRunStats`` *exactly* — tree, rounds and messages — which the
property tests assert.  On an unreliable channel the ARQ sublayer activates
(``DECLINE``/``ACK`` responses, timeout retransmissions bounded by
``max_retries``), so every run terminates at any loss rate; quiescence
detection itself is oracle-provided on both sides of the E9 comparison, as
in the legacy model.

The extended-star comparator runs on the same substrate
(:meth:`ProtocolEngine.run_gossip`): a radius-``r`` open-loop flood in which
every node forwards each dissemination batch over every incident link, making
the Chiang & Tan comparison apples-to-apples under identical channel models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..backend.csr import compile_network
from ..core.syndrome import Syndrome
from .events import (
    ACCEPT,
    ACK,
    DECLINE,
    GOSSIP,
    INVITE,
    REPORT,
    ChannelConfig,
    EventLog,
    LatencyModel,
    LossModel,
    Message,
)

__all__ = ["ProtocolEngine", "SetBuilderOutcome", "GossipOutcome", "spread_roots"]


def spread_roots(healthy: Sequence[int], count: int) -> tuple[int, ...]:
    """``count`` evenly spaced roots drawn from a sorted healthy-node list.

    The deterministic root-placement policy shared by the experiment trials,
    the CLI and the benchmarks.
    """
    if count < 1:
        raise ValueError("at least one root is required")
    if count > len(healthy):
        raise ValueError(f"cannot place {count} roots among {len(healthy)} healthy nodes")
    step = len(healthy) // count
    return tuple(healthy[i * step] for i in range(count))

#: Hard cap on simulated rounds — a failed-termination guard, far above any
#: legitimate run (growth is bounded by 2N rounds, ARQ by bounded retries).
_MAX_ROUNDS = 1_000_000


@dataclass
class SetBuilderOutcome:
    """Everything one engine run produced (statistics plus protocol truth)."""

    roots: tuple[int, ...]
    rounds: int
    growth_rounds: int
    convergecast_rounds: int
    messages: int
    invites: int
    accepts: int
    declines: int
    reports: int
    acks: int
    retries: int
    drops: int
    duplicates: int
    collisions: int
    merges: int
    members: frozenset[int]
    parent: dict[int, int]
    root_of: dict[int, int]
    tree_depth: int
    contributors: int
    per_root_sizes: dict[int, int]
    per_root_contributors: dict[int, int]
    faulty: frozenset[int]
    trace: EventLog | None = field(default=None, repr=False)

    @property
    def tree_size(self) -> int:
        return len(self.members)

    @property
    def faults_found(self) -> int:
        return len(self.faulty)


@dataclass
class GossipOutcome:
    """Cost of the extended-star dissemination flood on the same channel."""

    radius: int
    rounds: int
    messages: int
    drops: int
    duplicates: int
    trace: EventLog | None = field(default=None, repr=False)


def _local_result(syndrome: Syndrome, u: int, v: int, w: int) -> int:
    """Node ``u``'s own test result ``s_u(v, w)`` — free, no lookup charged.

    A node holds its local comparison results by construction (they *are* the
    syndrome), so consulting them costs neither messages nor oracle lookups.
    """
    a, b = (v, w) if v < w else (w, v)
    return syndrome._result(u, a, b)


class _Pending:
    """One unacknowledged ARQ frame awaiting its response."""

    __slots__ = ("msg", "attempts", "due")

    def __init__(self, msg: Message, due: int) -> None:
        self.msg = msg
        self.attempts = 0
        self.due = due


class ProtocolEngine:
    """Event-driven protocol simulator over a compiled topology.

    Parameters
    ----------
    topology:
        A network or an already compiled
        :class:`~repro.backend.csr.CSRAdjacency`.
    config:
        The channel model (:class:`~repro.distributed.events.ChannelConfig`);
        defaults to the reliable unit-latency channel, under which the
        set-builder protocol's accounting coincides with the legacy model.
    """

    def __init__(self, topology, *, config: ChannelConfig | None = None) -> None:
        self.csr = compile_network(topology)
        self.config = config or ChannelConfig()
        model = LatencyModel.from_spec(self.config.latency)
        if model.name == "fixed":
            # The common case (and the legacy-parity path): no per-edge dict,
            # no per-frame lookup.
            self._fixed_latency: int | None = model.args[0]
            self._latency: dict[tuple[int, int], int] = {}
        else:
            self._fixed_latency = None
            edges = [
                (u, int(v))
                for u in range(self.csr.num_nodes)
                for v in self.csr.neighbors(u)
                if u < v
            ]
            self._latency = model.sample_links(edges, self.config.seed)

    # ------------------------------------------------------------- utilities
    def _link_latency(self, u: int, v: int) -> int:
        if self._fixed_latency is not None:
            return self._fixed_latency
        return self._latency[(u, v) if u < v else (v, u)]

    # ------------------------------------------------------- set_builder run
    def run_set_builder(
        self,
        syndrome: Syndrome,
        roots: Sequence[int] | int,
        *,
        trace: bool = False,
    ) -> SetBuilderOutcome:
        """Flood the paper's protocol from one or more known-healthy roots.

        ``roots`` must be fault-free (the paper's standing assumption for the
        start node); the engine cannot verify this and a faulty root voids
        the diagnosis guarantee exactly as it does for ``Set_Builder``.
        """
        if isinstance(roots, int):
            roots = (roots,)
        roots = tuple(sorted({int(r) for r in roots}))
        if not roots:
            raise ValueError("at least one root is required")
        for r in roots:
            if not 0 <= r < self.csr.num_nodes:
                raise ValueError(f"root {r} is not a node of the network")

        cfg = self.config
        rows = self.csr.rows
        loss = LossModel(cfg)
        log = EventLog() if trace else None

        n = self.csr.num_nodes
        member = bytearray(n)
        parent: dict[int, int] = {}
        root_of: dict[int, int] = {}
        join_round: dict[int, int] = {}
        known: dict[int, set[int]] = {}
        boundary_cand: dict[int, set[int]] = {}
        children: dict[int, set[int]] = {}
        merge_links: set[tuple[int, int]] = set()

        for r in roots:
            member[r] = 1
            root_of[r] = r
            join_round[r] = 0
            known[r] = set()
            children[r] = set()

        counters = {
            INVITE: 0, ACCEPT: 0, DECLINE: 0, REPORT: 0, ACK: 0,
            "retries": 0, "drops": 0, "dups": 0, "collisions": 0, "messages": 0,
        }
        seq_counter = [0]
        deliveries: dict[int, list[tuple[Message, bool]]] = {}
        emit_at: dict[int, list[int]] = {}
        pending: dict[tuple[int, int], _Pending] = {}  # (src, dst) -> invite ARQ
        outbox: list[Message] = []

        def make(kind: str, src: int, dst: int, tree: int) -> Message:
            seq_counter[0] += 1
            return Message(kind, src, dst, tree, seq_counter[0])

        def transmit(msg: Message, t: int, *, coalesced_with: Message | None = None,
                     retry: int = 0) -> None:
            """Charge one frame and schedule its (and its twin's) delivery."""
            counters["messages"] += 1
            if retry:
                counters["retries"] += 1
            if log is not None:
                log.send(t, msg, retry=retry)
                if coalesced_with is not None:
                    log.send(t, coalesced_with)
                    log.collide(t, msg.src, msg.dst)
            if coalesced_with is not None:
                counters["collisions"] += 1
            frames = [msg] if coalesced_with is None else [msg, coalesced_with]
            if loss.dropped():
                counters["drops"] += len(frames)
                if log is not None:
                    for f in frames:
                        log.drop(t, f)
                return
            for f in frames:
                lat = self._link_latency(f.src, f.dst)
                deliveries.setdefault(t + lat, []).append((f, False))
                if loss.duplicated():
                    counters["dups"] += 1
                    deliveries.setdefault(t + lat + 1, []).append((f, True))

        def flush(t: int) -> None:
            """Flush the round's outbox, coalescing reliable-mode collisions."""
            if not outbox:
                return
            frames = sorted(outbox, key=lambda m: m.seq)
            outbox.clear()
            if cfg.reliable:
                # Opposite-direction invitations on one link in the same
                # round collide into a single half-duplex frame.
                by_link: dict[tuple[int, int], list[Message]] = {}
                for m in frames:
                    if m.kind == INVITE:
                        link = (m.src, m.dst) if m.src < m.dst else (m.dst, m.src)
                        by_link.setdefault(link, []).append(m)
                coalesced: set[int] = set()
                for link, group in by_link.items():
                    if len(group) == 2 and group[0].src == group[1].dst:
                        coalesced.update((group[0].seq, group[1].seq))
                        counters[INVITE] += 2
                        transmit(group[0], t, coalesced_with=group[1])
                for m in frames:
                    if m.seq in coalesced:
                        continue
                    counters[m.kind] += 1
                    transmit(m, t)
            else:
                for m in frames:
                    counters[m.kind] += 1
                    transmit(m, t)

        def do_join(v: int, t: int, tree: int, par: int) -> None:
            member[v] = 1
            parent[v] = par
            root_of[v] = tree
            join_round[v] = t
            boundary_cand[v] = {
                w for w in rows[v]
                if w != par and _local_result(syndrome, v, w, par) == 1
            }
            if log is not None:
                log.join(t, v, par, tree)

        # -------------------------------------------------- round 1: roots
        seen_seqs: dict[int, set[int]] = {}
        for r in roots:
            row = rows[r]
            admitted: set[int] = set()
            for i, v in enumerate(row):
                for w in row[i + 1:]:
                    if _local_result(syndrome, r, v, w) == 0:
                        admitted.add(v)
                        admitted.add(w)
            boundary_cand[r] = set(row) - admitted
            for v in sorted(admitted):
                outbox.append(make(INVITE, r, v, r))
                if not cfg.reliable:
                    msg = outbox[-1]
                    pending[(r, v)] = _Pending(msg, cfg.timeout + 1)

        t = 1
        flush(t)
        last_join = 0

        # ------------------------------------------------------ growth loop
        while True:
            if t > _MAX_ROUNDS:
                raise RuntimeError("protocol engine failed to quiesce (growth)")
            if not deliveries and not emit_at and not pending:
                break
            t += 1
            # 1. process deliveries readable this round, grouped per receiver
            todays = deliveries.pop(t, [])
            todays.sort(key=lambda d: (d[0].dst, d[0].src, d[0].kind, d[0].seq))
            invites_by_dst: dict[int, list[Message]] = {}
            for msg, is_dup in todays:
                if log is not None:
                    log.deliver(t, msg, dup=is_dup)
                seen = seen_seqs.setdefault(msg.dst, set())
                if msg.seq in seen:
                    continue  # duplicate-delivery artifact: idempotent receive
                seen.add(msg.seq)
                v = msg.dst
                known.setdefault(v, set()).add(msg.src)
                if msg.kind == INVITE:
                    invites_by_dst.setdefault(v, []).append(msg)
                elif msg.kind == ACCEPT:
                    children.setdefault(v, set()).add(msg.src)
                    pending.pop((v, msg.src), None)
                elif msg.kind == DECLINE:
                    pending.pop((v, msg.src), None)
            # 2. join decisions (after the whole round's inbox is visible)
            for v in sorted(invites_by_dst):
                invs = invites_by_dst[v]
                if not member[v]:
                    best = min(invs, key=lambda m: (m.tree, m.src))
                    do_join(v, t, best.tree, best.src)
                    children.setdefault(best.src, set()).add(v)
                    last_join = t
                    outbox.append(make(ACCEPT, v, best.src, best.tree))
                    emit_at.setdefault(t + 1, []).append(v)
                    if not cfg.reliable:
                        for m in invs:
                            if m.src != best.src:
                                outbox.append(make(DECLINE, v, m.src, root_of[v]))
                else:
                    for m in invs:
                        if m.tree != root_of[v]:
                            link = (v, m.src) if v < m.src else (m.src, v)
                            if link not in merge_links:
                                merge_links.add(link)
                                if log is not None:
                                    log.merge(t, v, m.src, (root_of[v], m.tree))
                    if not cfg.reliable:
                        for m in invs:
                            kind = ACCEPT if parent.get(v) == m.src else DECLINE
                            outbox.append(make(kind, v, m.src, root_of[v]))
            # 3. invitation emissions due this round
            for v in sorted(emit_at.pop(t, [])):
                par = parent[v]
                ktree = known.get(v, set())
                for w in rows[v]:
                    if w == par or w in ktree:
                        continue
                    if _local_result(syndrome, v, w, par) == 0:
                        outbox.append(make(INVITE, v, w, root_of[v]))
                        if not cfg.reliable:
                            pending[(v, w)] = _Pending(outbox[-1], t + cfg.timeout)
            # 4. ARQ retransmissions due this round
            if pending:
                for key in sorted(pending):
                    entry = pending[key]
                    if entry.due > t:
                        continue
                    if entry.attempts >= cfg.max_retries:
                        del pending[key]
                        continue
                    entry.attempts += 1
                    entry.due = t + cfg.timeout
                    src, dst = key
                    msg = make(INVITE, src, dst, entry.msg.tree)
                    entry.msg = msg
                    counters[INVITE] += 1
                    transmit(msg, t, retry=entry.attempts)
            flush(t)

        growth_rounds = max(2, last_join)
        growth_end = t

        # ------------------------------------------------------ convergecast
        members = frozenset(i for i in range(n) if member[i])
        non_roots = sorted(members - set(roots))
        if log is not None:
            log.stage(growth_end, "convergecast")

        reported: dict[int, set[int]] = {v: set() for v in members}
        payloads: dict[int, dict[int, tuple[frozenset, frozenset, int]]] = {
            v: {} for v in members
        }
        sent_report: set[int] = set()
        report_pending: dict[tuple[int, int], _Pending] = {}
        force_round = cfg.timeout * (cfg.max_retries + 2)
        cc_last_send = 0
        s = 0
        cc_deliveries: dict[int, list[tuple[Message, bool]]] = {}

        def subtree_payload(v: int) -> tuple[frozenset, frozenset, int]:
            mem = {v}
            bnd = set(boundary_cand.get(v, ()) ) - known.get(v, set())
            contrib = 1 if children.get(v) else 0
            for _, (cm, cb, cc) in sorted(payloads[v].items()):
                mem.update(cm)
                bnd.update(cb)
                contrib += cc
            return frozenset(mem), frozenset(bnd), contrib

        def report_transmit(msg: Message, rnd: int, *, retry: int = 0) -> None:
            nonlocal cc_last_send
            counters["messages"] += 1
            counters[msg.kind] += 1
            if retry:
                counters["retries"] += 1
            cc_last_send = max(cc_last_send, rnd - growth_end)
            if log is not None:
                log.send(rnd, msg, retry=retry)
            if loss.dropped():
                counters["drops"] += 1
                if log is not None:
                    log.drop(rnd, msg)
                return
            lat = self._link_latency(msg.src, msg.dst)
            cc_deliveries.setdefault(rnd + lat, []).append((msg, False))
            if loss.duplicated():
                counters["dups"] += 1
                cc_deliveries.setdefault(rnd + lat + 1, []).append((msg, True))

        while True:
            if s > _MAX_ROUNDS:
                raise RuntimeError("protocol engine failed to quiesce (convergecast)")
            s += 1
            rnd = growth_end + s
            for msg, is_dup in sorted(
                cc_deliveries.pop(rnd, []),
                key=lambda d: (d[0].dst, d[0].src, d[0].kind, d[0].seq),
            ):
                if log is not None:
                    log.deliver(rnd, msg, dup=is_dup)
                seen = seen_seqs.setdefault(msg.dst, set())
                if msg.seq in seen:
                    continue
                seen.add(msg.seq)
                u = msg.dst
                if msg.kind == REPORT:
                    payloads[u][msg.src] = msg.payload
                    reported[u].add(msg.src)
                    if not cfg.reliable:
                        report_transmit(make(ACK, u, msg.src, msg.tree), rnd)
                elif msg.kind == ACK:
                    report_pending.pop((u, msg.src), None)
            # which nodes can (or must) send their report this round?
            for v in non_roots:
                if v in sent_report:
                    continue
                kids = children.get(v, set())
                ready = reported[v] >= kids
                forced = (not cfg.reliable) and s >= force_round
                if ready or forced:
                    sent_report.add(v)
                    payload = subtree_payload(v)
                    msg = Message(REPORT, v, parent[v], root_of[v],
                                  seq_counter[0] + 1, payload)
                    seq_counter[0] += 1
                    report_transmit(msg, rnd)
                    if not cfg.reliable:
                        report_pending[(v, parent[v])] = _Pending(msg, rnd + cfg.timeout)
            # ARQ retransmissions for unacked reports
            if report_pending:
                for key in sorted(report_pending):
                    entry = report_pending[key]
                    if entry.due > rnd:
                        continue
                    if entry.attempts >= cfg.max_retries:
                        del report_pending[key]
                        continue
                    entry.attempts += 1
                    entry.due = rnd + cfg.timeout
                    old = entry.msg
                    msg = Message(REPORT, old.src, old.dst, old.tree,
                                  seq_counter[0] + 1, old.payload)
                    seq_counter[0] += 1
                    entry.msg = msg
                    report_transmit(msg, rnd, retry=entry.attempts)
            if not cc_deliveries and not report_pending and \
                    len(sent_report) == len(non_roots):
                break
            if not cc_deliveries and not report_pending and cfg.reliable:
                break  # reliable runs cannot make further progress

        # ------------------------------------------------------- aggregation
        # Each root now holds its tree's summary; the summaries are unioned
        # (the roots are mutually reachable through the assumed-healthy
        # coordination channel; that exchange is not charged — noted as a
        # follow-on in ROADMAP.md).
        agg_members: set[int] = set()
        agg_boundary: set[int] = set()
        per_root_sizes: dict[int, int] = {}
        per_root_contributors: dict[int, int] = {}
        for r in roots:
            mem, bnd, contrib = subtree_payload(r)
            per_root_sizes[r] = len(mem)
            per_root_contributors[r] = contrib
            agg_members.update(mem)
            agg_boundary.update(bnd)
        faulty = frozenset(agg_boundary - agg_members)
        contributors = sum(per_root_contributors.values())

        depth_cache: dict[int, int] = {r: 0 for r in roots}

        def depth_of(v: int) -> int:
            chain = []
            while v not in depth_cache:
                chain.append(v)
                v = parent[v]
            d = depth_cache[v]
            for node in reversed(chain):
                d += 1
                depth_cache[node] = d
            return depth_cache[chain[0]] if chain else d

        tree_depth = max((depth_of(v) for v in members), default=0)
        convergecast_rounds = cc_last_send
        rounds = growth_rounds + convergecast_rounds

        if log is not None:
            log.stats(
                rounds=rounds,
                messages=counters["messages"],
                tree_size=len(members),
                tree_depth=tree_depth,
                faults_found=len(faulty),
                roots=len(roots),
                contributors=contributors,
                drops=counters["drops"],
                retries=counters["retries"],
            )

        return SetBuilderOutcome(
            roots=roots,
            rounds=rounds,
            growth_rounds=growth_rounds,
            convergecast_rounds=convergecast_rounds,
            messages=counters["messages"],
            invites=counters[INVITE],
            accepts=counters[ACCEPT],
            declines=counters[DECLINE],
            reports=counters[REPORT],
            acks=counters[ACK],
            retries=counters["retries"],
            drops=counters["drops"],
            duplicates=counters["dups"],
            collisions=counters["collisions"],
            merges=len(merge_links),
            members=members,
            parent=parent,
            root_of=root_of,
            tree_depth=tree_depth,
            contributors=contributors,
            per_root_sizes=per_root_sizes,
            per_root_contributors=per_root_contributors,
            faulty=faulty,
            trace=log,
        )

    # ------------------------------------------------------------ gossip run
    def run_gossip(self, radius: int = 3, *, trace: bool = False) -> GossipOutcome:
        """Radius-``r`` extended-star data dissemination on the same channel.

        Every node must learn the local test results of its radius-``r``
        neighbourhood (the data Chiang & Tan's per-node rule consumes), so
        each node forwards one dissemination batch per hop over every
        incident link.  The flood is open-loop (no ARQ): with loss, batches
        that stall are force-sent after ``timeout`` rounds, so the flood
        terminates and its delivered coverage simply degrades.  On the
        reliable unit-latency channel the cost is exactly ``radius`` rounds
        and ``radius · 2|E|`` messages — the legacy closed form.
        """
        if radius < 1:
            raise ValueError("radius must be >= 1")
        cfg = self.config
        rows = self.csr.rows
        n = self.csr.num_nodes
        loss = LossModel(cfg)
        log = EventLog() if trace else None

        got: list[list[int]] = [[0] * (radius + 1) for _ in range(n)]
        next_batch = [1] * n
        degree = [len(rows[v]) for v in range(n)]
        deliveries: dict[int, list[tuple[int, int, int, bool]]] = {}
        messages = drops = dups = 0
        last_send = 0
        seq = 0

        t = 0
        while True:
            if t > _MAX_ROUNDS:
                raise RuntimeError("protocol engine failed to quiesce (gossip)")
            t += 1
            for src, dst, batch, is_dup in sorted(deliveries.pop(t, [])):
                if log is not None:
                    msg = Message(GOSSIP, src, dst, batch, 0)
                    log.deliver(t, msg, dup=is_dup)
                if not is_dup:
                    got[dst][batch] += 1
            for v in range(n):
                k = next_batch[v]
                if k > radius:
                    continue
                ready = k == 1 or got[v][k - 1] >= degree[v]
                forced = (not cfg.reliable) and t >= k * cfg.timeout
                if t >= k and (ready or forced):
                    next_batch[v] = k + 1
                    for w in rows[v]:
                        seq += 1
                        messages += 1
                        last_send = t
                        if log is not None:
                            log.send(t, Message(GOSSIP, v, w, k, seq))
                        if loss.dropped():
                            drops += 1
                            if log is not None:
                                log.drop(t, Message(GOSSIP, v, w, k, seq))
                            continue
                        lat = self._link_latency(v, w)
                        deliveries.setdefault(t + lat, []).append((v, w, k, False))
                        if loss.duplicated():
                            dups += 1
                            deliveries.setdefault(t + lat + 1, []).append(
                                (v, w, k, True))
            if not deliveries and all(b > radius for b in next_batch):
                break

        if log is not None:
            log.stats(rounds=last_send, messages=messages, tree_size=0,
                      tree_depth=0, faults_found=0, roots=0,
                      contributors=0, drops=drops, retries=0)
        return GossipOutcome(
            radius=radius,
            rounds=last_send,
            messages=messages,
            drops=drops,
            duplicates=dups,
            trace=log,
        )
