"""Messages, channel models and the replayable trace log of the protocol engine.

The engine (:mod:`repro.distributed.engine`) simulates the paper's distributed
self-diagnosis as *real* messages between node state machines.  This module
holds everything message-shaped:

* :class:`Message` — one protocol frame (kind, endpoints, owning tree);
* :class:`ChannelConfig` — the link-layer knobs of a run: per-link latency
  distribution, message-loss rate, duplicate-delivery rate and the ARQ
  (timeout/retry) parameters that activate on unreliable channels;
* :class:`LatencyModel` / :class:`LossModel` — seeded, deterministic samplers
  behind those knobs (latencies are drawn once per undirected link at engine
  construction; loss and duplication are drawn per transmission in the
  scheduler's canonical order, so a run is a pure function of its inputs);
* :class:`EventLog` — the trace recorder.  Every send, delivery, drop,
  duplicate, collision, join and report is appended as one canonical text
  line; identical inputs produce byte-identical logs, which the golden tests
  check in, and :func:`replay_stats` re-derives the headline statistics from
  the log alone so a trace can be audited without re-running the engine.

Nothing in this module knows the diagnosis protocol; it is the substrate the
engine's state machines run on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = [
    "INVITE",
    "ACCEPT",
    "DECLINE",
    "REPORT",
    "ACK",
    "GOSSIP",
    "Message",
    "ChannelConfig",
    "LatencyModel",
    "LossModel",
    "EventLog",
    "ReplayedStats",
    "replay_stats",
]

# Protocol frame kinds.  INVITE/ACCEPT carry the tree growth, REPORT the
# convergecast; DECLINE and ACK exist only on unreliable channels (the ARQ
# sublayer); GOSSIP is the extended-star dissemination comparator.
INVITE = "INVITE"
ACCEPT = "ACCEPT"
DECLINE = "DECLINE"
REPORT = "REPORT"
ACK = "ACK"
GOSSIP = "GOSSIP"


@dataclass(frozen=True)
class Message:
    """One protocol frame.

    ``tree`` is the root id of the tree the frame belongs to (the flood a
    node is recruiting for, or the convergecast it reports into); ``seq`` is
    a globally unique send sequence number used for receiver-side
    deduplication under duplicate delivery and for trace identity.
    """

    kind: str
    src: int
    dst: int
    tree: int
    seq: int
    payload: tuple = ()


@dataclass(frozen=True)
class ChannelConfig:
    """Link-layer model of one engine run.

    ``latency`` is a distribution spec (``"fixed:K"`` or ``"uniform:A:B"``,
    rounds per hop, minimum 1) sampled once per undirected link;
    ``loss_rate`` / ``duplicate_rate`` are per-transmission probabilities.
    When both rates are zero the channel is *reliable* and the protocol runs
    open-loop — no DECLINEs, ACKs or retransmissions exist, which is what
    makes the baseline accounting coincide with the legacy analytical model.
    On an unreliable channel the ARQ sublayer activates: every INVITE expects
    an ACCEPT or DECLINE, every REPORT expects an ACK, and unanswered frames
    are retransmitted every ``timeout`` rounds up to ``max_retries`` times,
    so every run terminates regardless of the loss rate.
    """

    latency: str = "fixed:1"
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    timeout: int = 4
    max_retries: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must lie in [0, 1)")
        if not 0.0 <= self.duplicate_rate < 1.0:
            raise ValueError("duplicate_rate must lie in [0, 1)")
        if self.timeout < 1 or self.max_retries < 0:
            raise ValueError("timeout must be >= 1 and max_retries >= 0")
        LatencyModel.from_spec(self.latency)  # validate eagerly

    @property
    def reliable(self) -> bool:
        """True when no link-layer fault model is active (open-loop protocol)."""
        return self.loss_rate == 0.0 and self.duplicate_rate == 0.0

    def describe(self) -> str:
        return (f"latency={self.latency} loss={self.loss_rate} "
                f"dup={self.duplicate_rate} seed={self.seed}")


class LatencyModel:
    """Per-link latency distribution, sampled deterministically from a spec."""

    def __init__(self, name: str, args: tuple[int, ...]) -> None:
        self.name = name
        self.args = args

    @classmethod
    def from_spec(cls, spec: str) -> "LatencyModel":
        parts = spec.split(":")
        name, raw = parts[0], parts[1:]
        try:
            args = tuple(int(a) for a in raw)
        except ValueError as exc:
            raise ValueError(f"non-integer latency parameter in {spec!r}") from exc
        if name == "fixed":
            if len(args) != 1 or args[0] < 1:
                raise ValueError(f"fixed latency needs one parameter >= 1, got {spec!r}")
        elif name == "uniform":
            if len(args) != 2 or not 1 <= args[0] <= args[1]:
                raise ValueError(f"uniform latency needs 1 <= A <= B, got {spec!r}")
        else:
            raise ValueError(f"unknown latency distribution {spec!r}")
        return cls(name, args)

    def sample_links(self, edges: Iterable[tuple[int, int]], seed: int) -> dict[tuple[int, int], int]:
        """One symmetric latency per undirected link, in canonical edge order.

        ``edges`` must be iterated in a deterministic order (the engine passes
        the sorted ``u < v`` edge list of the compiled topology), so the same
        spec and seed always produce the same link map.
        """
        rng = random.Random(seed)
        latencies: dict[tuple[int, int], int] = {}
        for u, v in edges:
            if self.name == "fixed":
                lat = self.args[0]
            else:
                lat = rng.randint(self.args[0], self.args[1])
            latencies[(u, v)] = lat
        return latencies


class LossModel:
    """Per-transmission Bernoulli loss and duplication draws (seeded).

    The engine calls :meth:`dropped` / :meth:`duplicated` once per
    transmission in its canonical send order, so the fault pattern is a
    deterministic function of ``(config, topology, protocol inputs)``.
    """

    def __init__(self, config: ChannelConfig) -> None:
        self.config = config
        self._rng = random.Random((config.seed * 0x9E3779B1) & 0xFFFFFFFF)

    def dropped(self) -> bool:
        if self.config.loss_rate == 0.0:
            return False
        return self._rng.random() < self.config.loss_rate

    def duplicated(self) -> bool:
        if self.config.duplicate_rate == 0.0:
            return False
        return self._rng.random() < self.config.duplicate_rate


class EventLog:
    """Append-only trace of one engine run, one canonical text line per event.

    The format is a stable, replayable record: fields are space-separated,
    rounds are zero-padded to four digits and node sets are emitted sorted,
    so a run's log is byte-for-byte reproducible.  ``STATS`` is always the
    final line and carries the run's headline numbers.
    """

    def __init__(self) -> None:
        self.lines: list[str] = []

    # ------------------------------------------------------------- recording
    def event(self, round_no: int, kind: str, *fields: object) -> None:
        parts = [f"R{round_no:04d}", kind]
        parts.extend(str(f) for f in fields)
        self.lines.append(" ".join(parts))

    def send(self, round_no: int, msg: Message, *, retry: int = 0) -> None:
        tag = f" retry={retry}" if retry else ""
        self.event(round_no, "SEND",
                   f"{msg.kind} {msg.src}->{msg.dst} tree={msg.tree} seq={msg.seq}{tag}")

    def deliver(self, round_no: int, msg: Message, *, dup: bool = False) -> None:
        kind = "DUP-DELIVER" if dup else "DELIVER"
        self.event(round_no, kind,
                   f"{msg.kind} {msg.src}->{msg.dst} tree={msg.tree} seq={msg.seq}")

    def drop(self, round_no: int, msg: Message) -> None:
        self.event(round_no, "DROP",
                   f"{msg.kind} {msg.src}->{msg.dst} tree={msg.tree} seq={msg.seq}")

    def collide(self, round_no: int, u: int, v: int) -> None:
        self.event(round_no, "COLLIDE", f"{u}<->{v}")

    def join(self, round_no: int, node: int, parent: int, tree: int) -> None:
        self.event(round_no, "JOIN", f"{node} parent={parent} tree={tree}")

    def merge(self, round_no: int, node: int, other: int, trees: tuple[int, int]) -> None:
        self.event(round_no, "MERGE", f"{node}~{other} trees={trees[0]},{trees[1]}")

    def stage(self, round_no: int, name: str) -> None:
        self.event(round_no, "STAGE", name)

    def stats(self, **numbers: int) -> None:
        body = " ".join(f"{k}={v}" for k, v in sorted(numbers.items()))
        self.lines.append(f"STATS {body}")

    # -------------------------------------------------------------- exports
    def to_text(self) -> str:
        return "\n".join(self.lines) + "\n"

    def __iter__(self) -> Iterator[str]:
        return iter(self.lines)

    def __len__(self) -> int:
        return len(self.lines)


@dataclass(frozen=True)
class ReplayedStats:
    """Statistics re-derived from a trace log (see :func:`replay_stats`)."""

    rounds: int
    messages: int
    tree_size: int
    tree_depth: int
    faults_found: int
    joins: int = 0
    sends: int = 0
    drops: int = 0
    duplicates: int = 0
    collisions: int = 0
    merges: int = field(default=0)


def replay_stats(text: str) -> ReplayedStats:
    """Re-derive a run's statistics from its trace log alone.

    The replay cross-checks the log's internal consistency: the number of
    ``JOIN`` lines must agree with the ``STATS`` tree size (joins exclude the
    roots), and the charged message count must equal the number of ``SEND``
    lines minus the collision-coalesced frames.  A trace that fails these
    checks was corrupted or truncated.
    """
    sends = drops = dups = collisions = joins = merges = 0
    stats: dict[str, int] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("STATS"):
            for token in line.split()[1:]:
                key, value = token.split("=", 1)
                stats[key] = int(value)
            continue
        parts = line.split()
        kind = parts[1]
        if kind == "SEND":
            sends += 1
        elif kind == "DROP":
            drops += 1
        elif kind == "DUP-DELIVER":
            dups += 1
        elif kind == "COLLIDE":
            collisions += 1
        elif kind == "JOIN":
            joins += 1
        elif kind == "MERGE":
            merges += 1
    if not stats:
        raise ValueError("trace log has no STATS line (truncated?)")
    if sends - collisions != stats["messages"]:
        raise ValueError(
            f"trace inconsistent: {sends} SEND lines, {collisions} collisions, "
            f"but STATS claims {stats['messages']} messages"
        )
    if joins + stats["roots"] != stats["tree_size"]:
        raise ValueError(
            f"trace inconsistent: {joins} JOIN lines + {stats['roots']} roots "
            f"!= tree size {stats['tree_size']}"
        )
    return ReplayedStats(
        rounds=stats["rounds"],
        messages=stats["messages"],
        tree_size=stats["tree_size"],
        tree_depth=stats["tree_depth"],
        faults_found=stats["faults_found"],
        joins=joins,
        sends=sends,
        drops=drops,
        duplicates=dups,
        collisions=collisions,
        merges=merges,
    )
