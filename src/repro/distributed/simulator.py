"""Round-based simulation of distributed self-diagnosis.

The paper's concluding section argues that the discovery of the faulty nodes
should itself be performed by the (fault-free) communication system of the
multiprocessor, and reports that a distributed implementation of the paper's
algorithm in hypercubes beats a distributed implementation of Chiang & Tan's.
This module provides the substrate for that claim (experiment E9): a
synchronous message-passing simulator in which

* every node initially holds only its *local* test results
  ``s_u(v, w)`` for its own neighbour pairs (obtaining them costs no
  communication rounds — they are the syndrome);
* the communication network is fault-free and synchronous: in each round a
  node may send one message to each neighbour (the paper's assumption that
  links and the communication system are reliable);
* the paper's algorithm is run in its natural distributed form: the start
  node ``u0`` floods invitations along 0-tests, each invited node joins the
  tree and continues the flood, and contributor counts are aggregated up the
  tree (a convergecast) so the root learns when the certificate fires.

The simulator counts rounds and messages.  The comparison point for Chiang &
Tan's algorithm is the cost of assembling the data their per-node rule needs:
every node must learn the test results of its extended star, which requires
each node to disseminate its local results over a fixed radius.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backend.csr import compile_network
from ..core.set_builder import set_builder
from ..core.syndrome import Syndrome
from ..networks.base import InterconnectionNetwork

__all__ = ["DistributedRunStats", "DistributedSetBuilder", "extended_star_gossip_cost"]


@dataclass(frozen=True)
class DistributedRunStats:
    """Communication cost of one distributed diagnosis run."""

    rounds: int
    messages: int
    tree_size: int
    tree_depth: int
    faults_found: int

    def as_row(self) -> tuple:
        return (self.rounds, self.messages, self.tree_size, self.tree_depth, self.faults_found)


class DistributedSetBuilder:
    """Distributed execution of the paper's algorithm from a known-healthy root.

    The simulation mirrors the message flow of a distributed ``Set_Builder``:

    * **round 2·i** — every node that joined the tree in the previous round
      ("the frontier") sends an *invitation* to each neighbour whose test
      against the sender's parent returned 0 (one message per invited
      neighbour) and a *rejection notice* is implicit (no message);
    * **round 2·i + 1** — invited nodes that are not yet in the tree send an
      *acceptance* back to the chosen parent (one message each);
    * when growth stops, the contributor count and the identity of the
      boundary (the diagnosed faults) are aggregated to the root by a
      convergecast along the tree (``depth`` rounds, one message per tree
      edge).

    The per-round and per-message accounting therefore depends only on the
    final tree, which the simulator obtains by running the sequential
    ``Set_Builder`` on the same syndrome — the distributed protocol explores
    exactly the same sets ``U_i`` because membership decisions depend only on
    local test results.
    """

    def __init__(self, network: InterconnectionNetwork, *, diagnosability: int | None = None):
        self.network = network
        self.csr = compile_network(network)
        self.delta = network.diagnosability() if diagnosability is None else int(diagnosability)

    def run(self, syndrome: Syndrome, root: int) -> DistributedRunStats:
        """Simulate the distributed growth + convergecast from ``root``."""
        result = set_builder(self.network, syndrome, root, diagnosability=self.delta)

        # Depth of the tree = number of growth phases.
        depth = 0
        for node in result.nodes:
            depth = max(depth, result.depth_of(node))

        # Invitations: every node u in the tree sends, while on the frontier,
        # one message to each neighbour it invites (0-test against t(u)); in
        # the worst case it probes all its neighbours, but only invitations
        # are transmitted.  Acceptances: one per tree edge.
        invitations = 0
        for child, parent in result.parent.items():
            invitations += 1  # the successful invitation parent -> child
        # Unsuccessful invitations: parent sends to a neighbour that is
        # already in the tree or whose test returned 0 via another parent; we
        # charge one message per (tree node, neighbour in U_r) pair beyond the
        # tree edges, which upper-bounds duplicate invitations.
        rows = self.csr.rows
        in_tree = bytearray(self.csr.num_nodes)
        for node in result.nodes:
            in_tree[node] = 1
        parent_of = result.parent.get
        duplicate_invitations = 0
        for node in result.nodes:
            for nb in rows[node]:
                if in_tree[nb] and parent_of(nb) != node and parent_of(node) != nb:
                    duplicate_invitations += 1
        duplicate_invitations //= 2

        acceptances = len(result.parent)
        convergecast = len(result.parent)  # one message per tree edge
        messages = invitations + duplicate_invitations + acceptances + convergecast

        # Two rounds per growth phase plus the convergecast (depth rounds).
        rounds = 2 * max(result.rounds, 1) + depth

        boundary = self.csr.boundary(
            result.member_mask if result.member_mask is not None else result.nodes
        )

        return DistributedRunStats(
            rounds=rounds,
            messages=messages,
            tree_size=len(result.nodes),
            tree_depth=depth,
            faults_found=len(boundary),
        )


def extended_star_gossip_cost(
    network: InterconnectionNetwork, *, radius: int = 3
) -> tuple[int, int]:
    """Rounds and messages for every node to learn its radius-``r`` neighbourhood's tests.

    This is the communication lower bound for running Chiang & Tan's per-node
    rule distributively: each node's extended star spans a fixed radius, so
    every node's local test results must be flooded ``radius`` hops.  With
    synchronous one-message-per-link-per-round communication this takes
    ``radius`` rounds and ``radius · |E| · 2`` messages (every edge carries a
    payload in both directions in every round of the flood).
    """
    edges = network.num_edges()
    return radius, 2 * radius * edges
