"""Compatibility shim over the event-driven protocol engine.

.. deprecated::
    This module no longer *is* the simulator.  The distributed protocol now
    actually runs — messages, per-link latency, loss, concurrent roots — in
    :mod:`repro.distributed.engine`; use :class:`~repro.distributed.engine.\
ProtocolEngine` directly for anything beyond the legacy single-root,
    reliable-channel statistics.  :class:`DistributedSetBuilder` is kept as a
    thin adapter so existing callers (and the E9 tables) keep working, and
    :func:`derived_run_stats` preserves the original *analytical* model —
    counts derived after the fact from a sequential ``Set_Builder`` run —
    as the reference the engine's property tests and the backend benchmark
    compare against.

The two agree exactly: for a unit-latency, lossless, single-root run the
engine's tree, round count and message count coincide with the derived
model (this equivalence is property-tested in
``tests/distributed/test_engine.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backend.csr import compile_network
from ..core.set_builder import set_builder
from ..core.syndrome import Syndrome
from ..networks.base import InterconnectionNetwork
from .engine import ProtocolEngine

__all__ = [
    "DistributedRunStats",
    "DistributedSetBuilder",
    "derived_run_stats",
    "extended_star_gossip_cost",
]


@dataclass(frozen=True)
class DistributedRunStats:
    """Communication cost of one distributed diagnosis run."""

    rounds: int
    messages: int
    tree_size: int
    tree_depth: int
    faults_found: int

    def as_row(self) -> tuple:
        return (self.rounds, self.messages, self.tree_size, self.tree_depth, self.faults_found)


class DistributedSetBuilder:
    """Single-root distributed diagnosis on the reliable synchronous channel.

    .. deprecated::
        Thin compatibility adapter: each :meth:`run` delegates to
        :class:`~repro.distributed.engine.ProtocolEngine` with the default
        (unit-latency, lossless) channel and repackages the outcome as
        :class:`DistributedRunStats`.  New code should construct a
        :class:`ProtocolEngine` directly, which also exposes latency/loss
        models, concurrent roots and trace recording.
    """

    def __init__(self, network: InterconnectionNetwork, *, diagnosability: int | None = None):
        self.network = network
        self.csr = compile_network(network)
        self.delta = network.diagnosability() if diagnosability is None else int(diagnosability)
        self.engine = ProtocolEngine(self.csr)

    def run(self, syndrome: Syndrome, root: int) -> DistributedRunStats:
        """Run the protocol from the known-healthy ``root`` and summarise it."""
        outcome = self.engine.run_set_builder(syndrome, root)
        return DistributedRunStats(
            rounds=outcome.rounds,
            messages=outcome.messages,
            tree_size=outcome.tree_size,
            tree_depth=outcome.tree_depth,
            faults_found=outcome.faults_found,
        )


def derived_run_stats(
    network: InterconnectionNetwork,
    syndrome: Syndrome,
    root: int,
    *,
    diagnosability: int | None = None,
) -> DistributedRunStats:
    """The legacy *analytical* model: costs derived from a sequential run.

    This is the original (pre-engine) accounting, preserved verbatim as the
    reference model: run the sequential ``Set_Builder``, then charge

    * two rounds per growth phase plus ``depth`` convergecast rounds,
    * one invitation per edge inside the grown set (tree edges carry the
      successful invitation; every other internal edge is charged one
      duplicate invitation), and
    * one acceptance plus one convergecast message per tree edge.

    The engine reproduces these numbers exactly on its default channel; the
    property tests assert it, and :mod:`benchmarks.bench_backend` times the
    two against each other.
    """
    csr = compile_network(network)
    delta = network.diagnosability() if diagnosability is None else int(diagnosability)
    result = set_builder(network, syndrome, root, diagnosability=delta)

    depth = 0
    for node in result.nodes:
        depth = max(depth, result.depth_of(node))

    invitations = len(result.parent)
    rows = csr.rows
    in_tree = bytearray(csr.num_nodes)
    for node in result.nodes:
        in_tree[node] = 1
    parent_of = result.parent.get
    duplicate_invitations = 0
    for node in result.nodes:
        for nb in rows[node]:
            if in_tree[nb] and parent_of(nb) != node and parent_of(node) != nb:
                duplicate_invitations += 1
    duplicate_invitations //= 2

    acceptances = len(result.parent)
    convergecast = len(result.parent)
    messages = invitations + duplicate_invitations + acceptances + convergecast
    rounds = 2 * max(result.rounds, 1) + depth

    boundary = csr.boundary(
        result.member_mask if result.member_mask is not None else result.nodes
    )
    return DistributedRunStats(
        rounds=rounds,
        messages=messages,
        tree_size=len(result.nodes),
        tree_depth=depth,
        faults_found=len(boundary),
    )


def extended_star_gossip_cost(
    network: InterconnectionNetwork, *, radius: int = 3, engine: ProtocolEngine | None = None
) -> tuple[int, int]:
    """Rounds and messages for every node to learn its radius-``r`` tests.

    This is the communication cost of assembling the data Chiang & Tan's
    per-node rule needs: each node's extended star spans a fixed radius, so
    every node's local test results must be flooded ``radius`` hops.  With no
    ``engine`` the reliable synchronous closed form is returned (``radius``
    rounds, ``radius · 2|E|`` messages).  Passing a
    :class:`~repro.distributed.engine.ProtocolEngine` runs the flood on that
    engine's channel model instead — same latency, loss and duplication as
    the set-builder protocol, making the E9 comparison apples-to-apples —
    and returns the measured ``(rounds, messages)``.
    """
    if engine is not None:
        outcome = engine.run_gossip(radius)
        return outcome.rounds, outcome.messages
    edges = network.num_edges()
    return radius, 2 * radius * edges
