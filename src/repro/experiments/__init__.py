"""Experiment runners regenerating every table of EXPERIMENTS.md."""

from .runners import EXPERIMENTS, ExperimentReport, run_all, run_experiment

__all__ = ["ExperimentReport", "EXPERIMENTS", "run_experiment", "run_all"]
