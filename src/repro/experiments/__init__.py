"""Experiment runners regenerating every table of EXPERIMENTS.md."""

from .reporting import ExperimentReport
from .runners import EXPERIMENTS, run_all, run_experiment
from .trials import TrialPlan, TrialResult, TrialSpec

__all__ = [
    "ExperimentReport",
    "EXPERIMENTS",
    "run_experiment",
    "run_all",
    "TrialPlan",
    "TrialResult",
    "TrialSpec",
]
