"""Regenerate the experiment reports from the command line.

``python -m repro.experiments``           runs every experiment (E1–E9)
``python -m repro.experiments E1 E6``     runs a subset
``python -m repro.experiments --markdown`` emits markdown tables (for EXPERIMENTS.md)
"""

from __future__ import annotations

import argparse
import inspect
import sys

from .runners import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.experiments")
    parser.add_argument("experiments", nargs="*", default=[],
                        help="experiment ids (default: all of E1..E9)")
    parser.add_argument("--markdown", action="store_true",
                        help="emit GitHub-flavoured markdown tables")
    parser.add_argument("--parallel", action="store_true",
                        help="fan the trial table of each diagnosis experiment out "
                             "in chunks over a shared-memory worker pool")
    parser.add_argument("--workers", type=int, default=None, metavar="W",
                        help="pool width for experiments with a sharded mode "
                             "(E1); implies chunked parallel execution")
    args = parser.parse_args(argv)

    names = [name.upper() for name in args.experiments] or sorted(EXPERIMENTS)
    ok = True
    for name in names:
        kwargs = {}
        runner = EXPERIMENTS.get(name)
        parameters = (inspect.signature(runner).parameters
                      if runner is not None else {})
        if args.parallel and "parallel" in parameters:
            kwargs["parallel"] = True
        if args.workers is not None and "workers" in parameters:
            kwargs["workers"] = args.workers
        report = run_experiment(name, **kwargs)
        ok &= report.claims_verified
        if args.markdown:
            print(f"### {report.experiment}: {report.title}\n")
            print(report.to_markdown())
            if report.notes:
                print(f"\n{report.notes}")
            print()
        else:
            print(report.to_text())
            print()
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
