"""Experiment report container shared by the runners and the CLI."""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import format_table

__all__ = ["ExperimentReport"]


@dataclass
class ExperimentReport:
    """Outcome of one experiment runner."""

    experiment: str
    title: str
    headers: list[str]
    rows: list[tuple]
    claims_verified: bool
    notes: str = ""
    elapsed_seconds: float = 0.0

    def to_text(self) -> str:
        table = format_table(self.headers, self.rows, title=f"{self.experiment}: {self.title}")
        status = "all claims verified" if self.claims_verified else "CLAIM VIOLATION"
        footer = f"[{status}] ({self.elapsed_seconds:.1f}s)"
        if self.notes:
            footer += f"\n{self.notes}"
        return f"{table}\n{footer}"

    def to_markdown(self) -> str:
        """The table in GitHub-flavoured markdown (used to refresh EXPERIMENTS.md)."""
        head = "| " + " | ".join(self.headers) + " |"
        sep = "| " + " | ".join("---" for _ in self.headers) + " |"
        body = [
            "| " + " | ".join(_md_cell(c) for c in row) + " |"
            for row in self.rows
        ]
        return "\n".join([head, sep, *body])


def _md_cell(cell) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.3g}"
    return str(cell)
