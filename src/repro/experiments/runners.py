"""Experiment runners: regenerate every table of EXPERIMENTS.md programmatically.

Each function reproduces one experiment of DESIGN.md §5 (E1–E9) at laptop
scale and returns a formatted text table plus the raw rows.  The
``pytest-benchmark`` modules under ``benchmarks/`` measure the same quantities
with statistical rigour; these runners exist so that

* ``python -m repro.experiments`` (or ``repro-diagnose`` users) can regenerate
  the EXPERIMENTS.md tables in one command without pytest, and
* the test suite can assert the *claims* behind every experiment cheaply.

The diagnosis experiments (E1–E4, E6 and the root search of E9) run through
the batched :class:`~repro.experiments.trials.TrialPlan`: the factor-product
trial table executes against one shared compiled topology per
``(family, size)`` — instead of rebuilding the network per trial — and can
optionally fan the topology groups out over a process pool
(``parallel=True``).  The structural experiments (E5, E7, E8) draw their
instances from the same registry memo.
"""

from __future__ import annotations

import time
from typing import Callable

from ..analysis import (
    fit_against_model,
    full_table_size,
    set_builder_lookup_bound,
)
from ..backend.array_syndrome import ArraySyndrome
from ..core.faults import random_faults
from ..core.partitions import class_certifies_when_fault_free, minimal_certifying_level
from ..core.set_builder import set_builder
from ..diagnosability import chang_condition, exact_diagnosability, min_degree_upper_bound
from ..networks.registry import FAMILIES, cached_network, compiled_network
from ..workloads.sweeps import (
    CUBE_VARIANT_INSTANCES,
    DISTRIBUTED_LOSS_RATES,
    DISTRIBUTED_ROOT_COUNTS,
    KARY_INSTANCES,
    PERMUTATION_INSTANCES,
)
from .reporting import ExperimentReport, _md_cell  # noqa: F401  (re-export shim)
from .trials import DistributedTrialPlan, TrialPlan, TrialSpec

__all__ = ["ExperimentReport", "EXPERIMENTS", "run_experiment", "run_all"]


# --------------------------------------------------------------------------- E1
def run_e1(*, dimensions: tuple[int, ...] = (7, 8, 9, 10, 11), seed: int = 0,
           parallel: bool = False, workers: int | None = None) -> ExperimentReport:
    """E1 (Theorem 2): exactness and O(n·2^n) scaling on hypercubes.

    ``workers`` switches the sweep to *sharded mode*: the trial table fans
    out in chunks over a persistent shared-memory worker pool
    (:class:`~repro.parallel.pool.WorkerPool`), with every topology compiled
    once in the coordinator and mapped zero-copy by the workers.  The rows
    are bit-identical to the serial run — only wall-clock distribution
    changes — and the report's notes carry the zero-recompilation evidence.
    """
    start = time.perf_counter()
    plan = TrialPlan(
        TrialSpec(label=f"Q_{n}", family="hypercube", params=(("dimension", n),),
                  placement="random", fault_count=n, seed=seed + n)
        for n in dimensions
    )
    if workers is not None:
        results = plan.run(parallel=True, max_workers=workers)
    else:
        results = plan.run(parallel=parallel)
    rows, models, times = [], [], []
    all_exact = True
    for n, res in zip(dimensions, results):
        all_exact &= res.exact
        models.append(n * 2**n)
        times.append(res.elapsed_seconds)
        rows.append((res.spec.label, res.num_nodes, res.num_faults, res.exact,
                     res.lookups, round(res.elapsed_seconds * 1e3, 2)))
    fit = fit_against_model(models, times)
    claims = all_exact
    if plan.last_run_stats is None:
        claims &= fit.exponent <= 1.35
        scaling_note = (
            f"time vs the paper's n·2^n model: fitted exponent {fit.exponent:.2f} "
            f"(R^2 = {fit.r_squared:.3f}); exponent ≈ 1 means the measured scaling "
            "matches O(n·2^n)."
        )
    else:
        # Pooled per-trial timings include worker cold-start (fork, first
        # attachment, row materialisation), which swamps the n·2^n signal —
        # the scaling gate only means something serial, so sharded mode
        # checks exactness and the zero-recompilation evidence instead.
        stats = plan.last_run_stats
        claims &= stats["worker_compiles"] == 0
        scaling_note = (
            "scaling fit not gated in sharded mode (pooled timings carry worker "
            f"cold-start noise; serial runs gate the n·2^n claim).  Sharded "
            f"mode: {stats['chunks']} chunks over {len(stats['workers'])} "
            f"workers, {stats['worker_compiles']} worker-side topology "
            "compilations (shared-memory CSR)."
        )
    return ExperimentReport(
        "E1",
        "hypercube diagnosis, |F| = n (Theorem 2)",
        ["network", "N", "faults", "exact", "lookups", "time (ms)"],
        rows,
        claims,
        notes=scaling_note,
        elapsed_seconds=time.perf_counter() - start,
    )


# --------------------------------------------------------------------------- E2
def run_e2(*, seed: int = 2, parallel: bool = False) -> ExperimentReport:
    """E2 (Theorem 3): the hypercube variants."""
    start = time.perf_counter()
    plan = TrialPlan.from_factors(
        CUBE_VARIANT_INSTANCES, placements=("random", "clustered"), seeds=(seed,)
    )
    rows = []
    all_exact = True
    for res in plan.run(parallel=parallel):
        all_exact &= res.exact
        rows.append((res.spec.label, res.spec.scenario, res.num_nodes, res.delta,
                     res.exact, res.lookups, round(res.elapsed_seconds * 1e3, 2)))
    return ExperimentReport(
        "E2",
        "hypercube variants, |F| = δ (Theorem 3)",
        ["variant", "scenario", "N", "δ", "exact", "lookups", "time (ms)"],
        rows,
        all_exact,
        elapsed_seconds=time.perf_counter() - start,
    )


# --------------------------------------------------------------------------- E3
def run_e3(*, seed: int = 5, parallel: bool = False) -> ExperimentReport:
    """E3 (Theorem 4): k-ary n-cubes and augmented k-ary n-cubes."""
    start = time.perf_counter()
    plan = TrialPlan.from_factors(KARY_INSTANCES, seeds=(seed,))
    rows = []
    all_exact = True
    for res in plan.run(parallel=parallel):
        all_exact &= res.exact
        rows.append((res.spec.label, res.num_nodes, res.delta, res.exact,
                     res.lookups, round(res.elapsed_seconds * 1e3, 2)))
    return ExperimentReport(
        "E3",
        "k-ary n-cubes and augmented k-ary n-cubes, |F| = δ (Theorem 4)",
        ["instance", "N", "δ", "exact", "lookups", "time (ms)"],
        rows,
        all_exact,
        elapsed_seconds=time.perf_counter() - start,
    )


# --------------------------------------------------------------------------- E4
def run_e4(*, seed: int = 7, parallel: bool = False) -> ExperimentReport:
    """E4 (Theorems 5–7): permutation-based families."""
    start = time.perf_counter()
    plan = TrialPlan.from_factors(PERMUTATION_INSTANCES, seeds=(seed,))
    rows = []
    all_exact = True
    for res in plan.run(parallel=parallel):
        all_exact &= res.exact
        rows.append((res.spec.label, res.num_nodes, res.delta, res.exact,
                     res.used_fallback, res.lookups,
                     round(res.elapsed_seconds * 1e3, 2)))
    return ExperimentReport(
        "E4",
        "(n,k)-stars, stars, pancakes, arrangement graphs, |F| = δ (Theorems 5-7)",
        ["instance", "N", "δ", "exact", "fallback probing", "lookups", "time (ms)"],
        rows,
        all_exact,
        notes=("'fallback probing' = the driver could not rely on the paper's class "
               "counting (notably the arrangement graphs, where k(n-k)+1 classes of "
               "sufficient size do not exist) and used budgeted unrestricted probes "
               "instead; exactness is unaffected."),
        elapsed_seconds=time.perf_counter() - start,
    )


# --------------------------------------------------------------------------- E5
def run_e5(*, seed: int = 13) -> ExperimentReport:
    """E5 (Sections 4.2/6): syndrome-lookup accounting for the final run."""
    start = time.perf_counter()
    instances = {
        "Q_10": ("hypercube", {"dimension": 10}),
        "CQ_10": ("crossed_cube", {"dimension": 10}),
        "AQ_9": ("augmented_cube", {"dimension": 9}),
        "Q^8_3": ("kary_ncube", {"n": 3, "k": 8}),
        "S_7": ("star", {"n": 7}),
        "P_7": ("pancake", {"n": 7}),
    }
    rows = []
    claims = True
    for label, (family, params) in instances.items():
        network, csr = compiled_network(family, **params)
        delta = network.diagnosability()
        faults = random_faults(network, delta, seed=seed)
        syndrome = ArraySyndrome.from_faults(csr, faults, seed=seed)
        root = next(v for v in range(network.num_nodes) if v not in faults)
        syndrome.reset_lookups()
        result = set_builder(network, syndrome, root, diagnosability=delta)
        bound = set_builder_lookup_bound(csr.max_degree, result.size)
        root_tests = csr.max_degree * (csr.max_degree - 1) / 2
        table = full_table_size(network)
        within_bound = result.lookups <= bound + root_tests
        far_below_table = result.lookups < table / 2
        claims &= within_bound and far_below_table
        rows.append((label, result.lookups, int(bound), table,
                     f"{100 * result.lookups / table:.1f}%", within_bound))
    return ExperimentReport(
        "E5",
        "Set_Builder lookup accounting vs the (Δ-1)(Δ/2+|U_r|-1) bound and the full table",
        ["instance", "lookups", "Section 6 bound", "full table", "fraction of table",
         "within bound"],
        rows,
        claims,
        elapsed_seconds=time.perf_counter() - start,
    )


# --------------------------------------------------------------------------- E6
def run_e6(*, dimensions: tuple[int, ...] = (8, 9, 10), seed: int = 17,
           parallel: bool = False) -> ExperimentReport:
    """E6 (Sections 3/6): Stewart vs Yang vs extended-star on identical syndromes."""
    start = time.perf_counter()
    plan = TrialPlan.from_factors(
        [(f"Q_{n}", "hypercube", {"dimension": n}) for n in dimensions],
        seeds=(seed,),
        algorithms=("stewart", "yang", "extended_star"),
    )
    results = plan.run(parallel=parallel)
    rows = []
    claims = True
    by_dim: dict[str, dict[str, tuple[bool, int]]] = {}
    for res in results:
        table = full_table_size(cached_network(res.spec.family, **res.spec.network_kwargs))
        rows.append((res.spec.label, res.spec.algorithm, res.exact, res.lookups,
                     f"{100 * res.lookups / table:.1f}%",
                     round(res.elapsed_seconds * 1e3, 2)))
        by_dim.setdefault(res.spec.label, {})[res.spec.algorithm] = (res.exact, res.lookups)
    for measurements in by_dim.values():
        stewart_exact, stewart_lookups = measurements["stewart"]
        extended_exact, extended_lookups = measurements["extended_star"]
        claims &= stewart_exact and extended_exact and measurements["yang"][0]
        claims &= stewart_lookups * 2 < extended_lookups
    return ExperimentReport(
        "E6",
        "algorithm comparison on identical hypercube syndromes, |F| = n",
        ["network", "algorithm", "exact", "lookups", "table read", "time (ms)"],
        rows,
        claims,
        notes=("Claim checked: every algorithm is exact and the paper's algorithm reads "
               "well under half the entries the extended-star comparator reads."),
        elapsed_seconds=time.perf_counter() - start,
    )


# --------------------------------------------------------------------------- E7
def run_e7(*, families: tuple[str, ...] = ("hypercube", "crossed_cube", "folded_hypercube",
                                           "augmented_cube", "kary_ncube", "star",
                                           "pancake", "nk_star", "arrangement")
           ) -> ExperimentReport:
    """E7: diagnosability bounds (min-degree bound, Chang et al. condition)."""
    start = time.perf_counter()
    rows = []
    claims = True
    for family in families:
        spec = FAMILIES[family]
        network = cached_network(family, **spec.small)
        quoted = network.diagnosability()
        upper = min_degree_upper_bound(network)
        report = chang_condition(network)
        consistent = quoted <= upper and (not report.applies or
                                          report.implied_diagnosability == quoted)
        claims &= consistent
        rows.append((family, network.num_nodes, quoted, upper, report.applies, consistent))
    # Exhaustive check on a graph small enough to brute-force.
    import networkx as nx

    from ..networks import ExplicitNetwork

    petersen = ExplicitNetwork.from_networkx(nx.petersen_graph())
    exact = exact_diagnosability(petersen)
    chang = chang_condition(petersen, connectivity=3)
    claims &= exact == 3 and chang.implied_diagnosability == 3
    rows.append(("petersen (exhaustive)", 10, exact, min_degree_upper_bound(petersen),
                 chang.applies, exact == chang.implied_diagnosability))
    return ExperimentReport(
        "E7",
        "diagnosability: quoted value vs min-degree bound and Chang et al. [6]",
        ["family", "N", "quoted δ", "min-degree bound", "Chang applies", "consistent"],
        rows,
        claims,
        elapsed_seconds=time.perf_counter() - start,
    )


# --------------------------------------------------------------------------- E8
def run_e8(*, dimensions: tuple[int, ...] = (7, 8, 9, 10, 11, 12)) -> ExperimentReport:
    """E8 (ablation): the paper's class size vs the certificate requirement."""
    start = time.perf_counter()
    rows = []
    claims = True
    for n in dimensions:
        cube = cached_network("hypercube", dimension=n)
        level0 = cube.partition_scheme(0).first(1)[0]
        certifies = class_certifies_when_fault_free(cube, level0)
        min_level = minimal_certifying_level(cube)
        rows.append((f"Q_{n}", n, level0.size, certifies,
                     2 * level0.size, min_level))
        claims &= (not certifies) and min_level == 1
    return ExperimentReport(
        "E8",
        "certificate ablation: paper's minimal sub-cube vs the size the certificate needs",
        ["network", "δ", "paper class size (2^m > δ)", "certifies fault-free",
         "required class size", "escalations needed"],
        rows,
        claims,
        notes=("Reproduction finding: a fault-free Set_Builder tree on Q_m has exactly "
               "2^(m-1) internal nodes, so the paper's choice 2^m > δ never reaches the "
               "'> δ contributors' certificate; one doubling (2^m > 2δ) always does. The "
               "driver's automatic escalation absorbs the gap at negligible cost."),
        elapsed_seconds=time.perf_counter() - start,
    )


# --------------------------------------------------------------------------- E9
def run_e9(*, dimensions: tuple[int, ...] = (8, 9, 10), seed: int = 31,
           parallel: bool = False,
           loss_rates: tuple[float, ...] = DISTRIBUTED_LOSS_RATES,
           root_counts: tuple[int, ...] = DISTRIBUTED_ROOT_COUNTS,
           latency: str = "fixed:1") -> ExperimentReport:
    """E9 (further research): the protocol engine vs extended-star gossip.

    Every row is one :class:`~repro.experiments.trials.DistributedTrialSpec`
    run on the event-driven engine — real invitations, acceptances and
    convergecast reports — with the extended-star dissemination flooded over
    the *same* channel model as the comparator.  The sweep covers the
    engine's axes: loss rate × concurrent-root count (plus the latency
    distribution knob, fixed per call).

    Claims checked: on the reliable channel the protocol finds every
    injected fault with fewer messages than the gossip comparator needs;
    under message loss every run still terminates (the ARQ sublayer) and no
    fault-free node is ever accused.
    """
    start = time.perf_counter()
    plan = DistributedTrialPlan.from_factors(
        [(f"Q_{n}", "hypercube", {"dimension": n}) for n in dimensions],
        seeds=(seed,),
        loss_rates=loss_rates,
        root_counts=root_counts,
        latencies=(latency,),
    )
    results = plan.run(parallel=parallel)
    rows = []
    claims = True
    for res in results:
        lossless = res.spec.loss_rate == 0.0 and res.spec.duplicate_rate == 0.0
        if lossless:
            claims &= res.exact and res.messages < res.gossip_messages
        else:
            claims &= res.false_positives == 0
        ratio = res.gossip_messages / res.messages if res.messages else float("inf")
        rows.append((res.spec.label, res.spec.loss_rate, res.spec.root_count,
                     res.rounds, res.messages, res.retries, res.faults_found,
                     res.false_positives, res.gossip_messages, f"{ratio:.1f}x"))
    return ExperimentReport(
        "E9",
        "distributed protocol engine vs extended-star data dissemination",
        ["network", "loss", "roots", "rounds", "messages", "retries",
         "faults found", "false pos", "gossip messages", "message ratio"],
        rows,
        claims,
        notes=("Both protocols run on the same event-driven engine and channel model "
               f"(latency {latency}); lossless rows must beat the gossip message "
               "count and diagnose exactly, lossy rows must terminate without "
               "accusing any fault-free node."),
        elapsed_seconds=time.perf_counter() - start,
    )


EXPERIMENTS: dict[str, Callable[..., ExperimentReport]] = {
    "E1": run_e1,
    "E2": run_e2,
    "E3": run_e3,
    "E4": run_e4,
    "E5": run_e5,
    "E6": run_e6,
    "E7": run_e7,
    "E8": run_e8,
    "E9": run_e9,
}


def run_experiment(name: str, **kwargs) -> ExperimentReport:
    """Run one experiment by name (``"E1"`` .. ``"E9"``)."""
    key = name.upper()
    if key not in EXPERIMENTS:
        raise ValueError(f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[key](**kwargs)


def run_all(**kwargs) -> list[ExperimentReport]:
    """Run every experiment in order."""
    return [runner(**kwargs.get(name.lower(), {})) for name, runner in EXPERIMENTS.items()]
