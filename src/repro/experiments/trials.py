"""Batched trial planning for the experiment layer.

Every experiment of DESIGN.md §5 is, at its core, a *factor product*: a set of
network instances × fault placements × seeds × algorithms, with one diagnosis
per combination.  Before this module each runner re-instantiated (and
re-walked) its topologies per trial; a :class:`TrialPlan` instead materialises
the whole trial table up front — in the style of an experiment-table runner —
and executes it against **shared compiled topologies**:

* network instances come from the registry memo
  (:func:`repro.networks.registry.cached_network`), so every trial on the same
  ``(family, params)`` shares one object and one compiled
  :class:`~repro.backend.csr.CSRAdjacency`;
* syndromes are generated straight into the flat
  :class:`~repro.backend.array_syndrome.ArraySyndrome` layout (vectorised over
  the compiled pair arrays), which is also the diagnosis fast path;
* trials are grouped by topology, and groups fan out — in *chunks* — over a
  persistent shared-memory :class:`~repro.parallel.pool.WorkerPool`: the
  coordinator compiles each topology once, publishes the flat arrays to
  ``multiprocessing.shared_memory``, and workers map them zero-copy, so a
  sweep performs **zero per-worker recompilation** (each chunk task reports
  the compile-count delta it observed; ``last_run_stats`` aggregates the
  proof).  Chunking splits *within* a group too, so a plan over one huge
  topology still uses every worker — the case the old per-group fan-out ran
  inline.

Results are plain dataclasses of primitives, so they cross process boundaries
and feed the report tables of :mod:`repro.experiments.runners` directly.
Every trial carries its own seed (replicate seeds derive positionally via
:func:`repro.parallel.seeding.spawn_seeds`), so parallel execution is
bit-identical to serial execution regardless of worker count or chunk size.

The distributed experiment (E9) has its own factor table,
:class:`DistributedTrialPlan`, whose rows additionally sweep the protocol
engine's channel axes — concurrent-root count, loss rate, duplicate rate and
per-link latency distribution — and carry the extended-star gossip cost
measured on the *same* channel, so every row is a self-contained
protocol-vs-comparator data point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import product
from typing import Iterable, Sequence

from ..backend.array_syndrome import ArraySyndrome
from ..baselines import ExtendedStarDiagnoser, YangCycleDiagnoser
from ..core.diagnosis import GeneralDiagnoser
from ..core.faults import clustered_faults, random_faults, spread_faults
from ..distributed import ChannelConfig, ProtocolEngine, spread_roots
from ..networks.registry import compiled_network
from ..parallel import WorkerPool, spawn_seeds
from ..parallel.pool import compile_delta_probe, worker_network
from ..parallel.shm import TopologyHandle

__all__ = [
    "TrialSpec",
    "TrialResult",
    "TrialPlan",
    "DistributedTrialSpec",
    "DistributedTrialResult",
    "DistributedTrialPlan",
    "PLACEMENTS",
    "ALGORITHMS",
]

#: Fault-placement factor levels (see :mod:`repro.core.faults`).
PLACEMENTS = {
    "random": random_faults,
    "clustered": clustered_faults,
    "spread": spread_faults,
}

#: Algorithm factor levels: the paper's general algorithm plus the two
#: comparators of Section 3 (used by experiment E6).
ALGORITHMS = ("stewart", "yang", "extended_star")


@dataclass(frozen=True)
class TrialSpec:
    """One row of the trial table (a single diagnosis run)."""

    label: str
    family: str
    params: tuple[tuple[str, int], ...]
    placement: str = "random"
    fault_count: int | None = None  # None → the network's diagnosability δ
    seed: int = 0
    behavior: str = "random"
    algorithm: str = "stewart"

    @property
    def network_kwargs(self) -> dict[str, int]:
        return dict(self.params)

    @property
    def scenario(self) -> str:
        """Scenario name matching the sweep convention (``random-max`` etc.)."""
        suffix = "max" if self.fault_count is None else str(self.fault_count)
        return f"{self.placement}-{suffix}"


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial (primitives only: crosses process boundaries)."""

    spec: TrialSpec
    num_nodes: int
    delta: int
    num_faults: int
    exact: bool
    lookups: int
    elapsed_seconds: float
    healthy_root: int | None = None
    partition_level: int | None = None
    num_probes: int = 0

    @property
    def used_fallback(self) -> bool:
        """The healthy-root search resorted to unrestricted probing."""
        return self.spec.algorithm == "stewart" and self.partition_level is None


def _seed_list(seeds: Sequence[int] | int, *, base_seed: int = 0) -> list[int]:
    """Replicate seeds for a factor table.

    An explicit sequence passes through; an integer asks for that many
    replicate seeds derived positionally from ``base_seed`` via
    ``SeedSequence.spawn`` — the worker-count-independent form.
    """
    if isinstance(seeds, int):
        return list(spawn_seeds(base_seed, seeds))
    return list(seeds)


def _chunked(items: list, size: int) -> Iterable[list]:
    for start in range(0, len(items), size):
        yield items[start:start + size]


def _chunk_size(group_size: int, workers: int) -> int:
    """Default chunk size: about two chunks per worker per group.

    Small enough to load every worker even for a single-topology plan, big
    enough that task overhead stays amortised.
    """
    return max(1, -(-group_size // (2 * workers)))


def _run_group(specs: Sequence[TrialSpec]) -> list[TrialResult]:
    """Execute all trials of one ``(family, params)`` group (serial path)."""
    first = specs[0]
    network, csr = compiled_network(first.family, **first.network_kwargs)
    return _run_specs(network, csr, specs)


def _run_trial_chunk(
    handle: TopologyHandle | None, family: str, params: tuple,
    specs: Sequence[TrialSpec],
) -> tuple[list[TrialResult], dict]:
    """Pool task: one chunk of a group, plus worker diagnostics.

    The diagnostics record the compile-count delta the chunk caused in its
    worker — the aggregate over all chunks is how ``TrialPlan.run`` proves
    its zero-recompilation claim.
    """
    probe = compile_delta_probe()
    network, csr = worker_network(family, params, handle)
    results = _run_specs(network, csr, specs)
    return results, probe()


def _run_specs(
    network, csr, specs: Sequence[TrialSpec]
) -> list[TrialResult]:
    """Execute trial specs against an already-resolved compiled topology."""
    delta = network.diagnosability()
    results: list[TrialResult] = []
    for spec in specs:
        count = delta if spec.fault_count is None else spec.fault_count
        faults = PLACEMENTS[spec.placement](network, count, seed=spec.seed)
        syndrome = ArraySyndrome.from_faults(
            csr, faults, behavior=spec.behavior, seed=spec.seed
        )
        healthy_root = None
        partition_level = None
        num_probes = 0
        if spec.algorithm == "stewart":
            diagnoser = GeneralDiagnoser(network)
            start = time.perf_counter()
            outcome = diagnoser.diagnose(syndrome)
            elapsed = time.perf_counter() - start
            diagnosed = outcome.faulty
            healthy_root = outcome.healthy_root
            partition_level = outcome.partition_level
            num_probes = outcome.num_probes
        elif spec.algorithm == "yang":
            algorithm = YangCycleDiagnoser(network)
            start = time.perf_counter()
            diagnosed = algorithm.diagnose(syndrome).faulty
            elapsed = time.perf_counter() - start
        elif spec.algorithm == "extended_star":
            algorithm = ExtendedStarDiagnoser(network)
            start = time.perf_counter()
            diagnosed = algorithm.diagnose(syndrome).faulty
            elapsed = time.perf_counter() - start
        else:
            raise ValueError(f"unknown algorithm {spec.algorithm!r}")
        results.append(
            TrialResult(
                spec=spec,
                num_nodes=network.num_nodes,
                delta=delta,
                num_faults=len(faults),
                exact=diagnosed == faults,
                lookups=syndrome.lookups,
                elapsed_seconds=elapsed,
                healthy_root=healthy_root,
                partition_level=partition_level,
                num_probes=num_probes,
            )
        )
    return results


@dataclass(frozen=True)
class DistributedTrialSpec:
    """One row of a distributed-protocol trial table (a single engine run).

    Extends the diagnosis factor space with the engine's sweep axes: the
    number of concurrent known-healthy roots, the per-transmission loss and
    duplicate rates, and the per-link latency distribution.  The gossip
    comparator (extended-star data dissemination) is run on the same channel
    so each row carries its own apples-to-apples Chiang & Tan cost.
    """

    label: str
    family: str
    params: tuple[tuple[str, int], ...]
    placement: str = "random"
    fault_count: int | None = None  # None → the network's diagnosability δ
    seed: int = 0
    behavior: str = "random"
    root_count: int = 1
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    latency: str = "fixed:1"
    gossip_radius: int = 3

    @property
    def network_kwargs(self) -> dict[str, int]:
        return dict(self.params)

    @property
    def scenario(self) -> str:
        return (f"{self.placement} loss={self.loss_rate} roots={self.root_count} "
                f"latency={self.latency}")

    def channel_config(self) -> ChannelConfig:
        return ChannelConfig(
            latency=self.latency,
            loss_rate=self.loss_rate,
            duplicate_rate=self.duplicate_rate,
            seed=self.seed,
        )


@dataclass(frozen=True)
class DistributedTrialResult:
    """Outcome of one engine trial (primitives only: crosses process boundaries)."""

    spec: DistributedTrialSpec
    num_nodes: int
    num_faults: int
    rounds: int
    messages: int
    tree_size: int
    tree_depth: int
    faults_found: int
    false_positives: int
    drops: int
    retries: int
    merges: int
    contributors: int
    gossip_rounds: int
    gossip_messages: int
    elapsed_seconds: float

    @property
    def exact(self) -> bool:
        """Every injected fault diagnosed and nothing healthy accused."""
        return self.false_positives == 0 and self.faults_found == self.num_faults


def _run_distributed_group(specs: Sequence[DistributedTrialSpec]) -> list[DistributedTrialResult]:
    """Execute all engine trials of one ``(family, params)`` group (serial path)."""
    first = specs[0]
    network, csr = compiled_network(first.family, **first.network_kwargs)
    return _run_distributed_specs(network, csr, specs)


def _run_distributed_chunk(
    handle: TopologyHandle | None, family: str, params: tuple,
    specs: Sequence[DistributedTrialSpec],
) -> tuple[list[DistributedTrialResult], dict]:
    """Pool task: one chunk of an engine group, plus worker diagnostics."""
    probe = compile_delta_probe()
    network, csr = worker_network(family, params, handle)
    results = _run_distributed_specs(network, csr, specs)
    return results, probe()


def _run_distributed_specs(
    network, csr, specs: Sequence[DistributedTrialSpec]
) -> list[DistributedTrialResult]:
    """Execute engine specs against an already-resolved compiled topology.

    The gossip comparator depends only on the channel config and radius (not
    on faults, placement or roots), so its flood — the most expensive
    simulation of a lossy row — is memoized per distinct channel within the
    call (chunked execution re-floods at most once per chunk; the numbers are
    identical because the flood is deterministic per channel).
    """
    gossip_memo: dict[tuple, tuple[int, int]] = {}
    results: list[DistributedTrialResult] = []
    for spec in specs:
        if spec.fault_count is None:
            count = network.diagnosability()
        else:
            count = spec.fault_count
        faults = PLACEMENTS[spec.placement](network, count, seed=spec.seed)
        syndrome = ArraySyndrome.from_faults(
            csr, faults, behavior=spec.behavior, seed=spec.seed
        )
        healthy = [v for v in range(network.num_nodes) if v not in faults]
        roots = spread_roots(healthy, spec.root_count)
        config = spec.channel_config()
        engine = ProtocolEngine(csr, config=config)
        start = time.perf_counter()
        outcome = engine.run_set_builder(syndrome, roots)
        elapsed = time.perf_counter() - start
        gossip_key = (config, spec.gossip_radius)
        if gossip_key not in gossip_memo:
            flood = engine.run_gossip(spec.gossip_radius)
            gossip_memo[gossip_key] = (flood.rounds, flood.messages)
        gossip_rounds, gossip_messages = gossip_memo[gossip_key]
        results.append(
            DistributedTrialResult(
                spec=spec,
                num_nodes=network.num_nodes,
                num_faults=len(faults),
                rounds=outcome.rounds,
                messages=outcome.messages,
                tree_size=outcome.tree_size,
                tree_depth=outcome.tree_depth,
                faults_found=outcome.faults_found,
                false_positives=len(outcome.faulty - faults),
                drops=outcome.drops,
                retries=outcome.retries,
                merges=outcome.merges,
                contributors=outcome.contributors,
                gossip_rounds=gossip_rounds,
                gossip_messages=gossip_messages,
                elapsed_seconds=elapsed,
            )
        )
    return results


def _run_plan_chunked(
    plan, chunk_task, group_runner, *,
    parallel: bool, max_workers: int | None, pool: WorkerPool | None,
    chunk_size: int | None, share_topology: bool,
) -> list:
    """Common chunked executor behind both plan classes.

    Groups by topology; each group's compiled arrays are published to shared
    memory once and its trials fan out in chunks over the (possibly caller-
    owned, persistent) worker pool.  Results return in table order and
    ``plan.last_run_stats`` records the distribution evidence — chunk count,
    worker pids, and the summed worker-side compile deltas (0 when topology
    sharing is on).
    """
    groups = plan.groups()
    results: list = [None] * len(plan.trials)
    use_pool = pool is not None or (parallel and plan.trials)
    plan.last_run_stats = None
    if not use_pool:
        for group in groups:
            for (position, _), result in zip(
                group, group_runner([spec for _, spec in group])
            ):
                results[position] = result
        return results

    own_pool = pool is None
    pool = pool if pool is not None else WorkerPool(max_workers)
    stats = {"chunks": 0, "worker_compiles": 0, "worker_pair_builds": 0,
             "workers": set(), "topologies_published": 0}
    try:
        submissions = []
        for group in groups:
            first = group[0][1]
            handle = None
            if share_topology:
                _, csr = compiled_network(first.family, **first.network_kwargs)
                # Workers generate their chunks' syndromes, so ship the
                # pair-member arrays too — the delta proves nobody rebuilds
                # them per worker.
                handle = pool.publish_topology(csr, include_pair_members=True)
                stats["topologies_published"] += 1
            size = chunk_size or _chunk_size(len(group), pool.max_workers)
            for chunk in _chunked(group, size):
                future = pool.submit(
                    chunk_task, handle, first.family, first.params,
                    [spec for _, spec in chunk],
                )
                submissions.append((chunk, future))
        for chunk, future in submissions:
            chunk_results, chunk_stats = future.result()
            for (position, _), result in zip(chunk, chunk_results):
                results[position] = result
            stats["chunks"] += 1
            stats["worker_compiles"] += chunk_stats["compiles"]
            stats["worker_pair_builds"] += chunk_stats["pair_builds"]
            stats["workers"].add(chunk_stats["pid"])
    finally:
        if own_pool:
            pool.shutdown()
    stats["workers"] = sorted(stats["workers"])
    plan.last_run_stats = stats
    return results


class DistributedTrialPlan:
    """A factor-product table of engine runs over shared compiled topologies.

    The distributed analogue of :class:`TrialPlan`: rows are
    :class:`DistributedTrialSpec` and execution groups by topology so every
    trial on the same ``(family, params)`` shares one compiled CSR; execution
    fans out in chunks over a shared-memory worker pool exactly like
    diagnosis trials.
    """

    #: evidence of the last chunked run (None after a serial run) — see
    #: :func:`_run_plan_chunked`
    last_run_stats: dict | None = None

    def __init__(self, trials: Iterable[DistributedTrialSpec]) -> None:
        self.trials: list[DistributedTrialSpec] = list(trials)

    @classmethod
    def from_factors(
        cls,
        instances: Iterable[tuple[str, str, dict]],
        *,
        placements: Sequence[str] = ("random",),
        fault_count: int | None = None,
        seeds: Sequence[int] | int = (0,),
        behaviors: Sequence[str] = ("random",),
        root_counts: Sequence[int] = (1,),
        loss_rates: Sequence[float] = (0.0,),
        duplicate_rates: Sequence[float] = (0.0,),
        latencies: Sequence[str] = ("fixed:1",),
        gossip_radius: int = 3,
        base_seed: int = 0,
    ) -> "DistributedTrialPlan":
        """Build the factor-product table (innermost factor varies fastest).

        As with :meth:`TrialPlan.from_factors`, an integer ``seeds`` spawns
        that many positional replicate seeds from ``base_seed``.
        """
        seeds = _seed_list(seeds, base_seed=base_seed)
        trials = [
            DistributedTrialSpec(
                label=label,
                family=family,
                params=tuple(sorted(params.items())),
                placement=placement,
                fault_count=fault_count,
                seed=seed,
                behavior=behavior,
                root_count=root_count,
                loss_rate=loss_rate,
                duplicate_rate=duplicate_rate,
                latency=latency,
                gossip_radius=gossip_radius,
            )
            for (label, family, params), placement, seed, behavior, latency,
                loss_rate, duplicate_rate, root_count
            in product(list(instances), placements, seeds, behaviors, latencies,
                       loss_rates, duplicate_rates, root_counts)
        ]
        return cls(trials)

    def __len__(self) -> int:
        return len(self.trials)

    def groups(self) -> list[list[tuple[int, DistributedTrialSpec]]]:
        grouped: dict[tuple, list[tuple[int, DistributedTrialSpec]]] = {}
        for position, spec in enumerate(self.trials):
            grouped.setdefault((spec.family, spec.params), []).append((position, spec))
        return list(grouped.values())

    def run(
        self, *, parallel: bool = False, max_workers: int | None = None,
        pool: WorkerPool | None = None, chunk_size: int | None = None,
        share_topology: bool = True,
    ) -> list[DistributedTrialResult]:
        """Execute every trial; results come back in table order.

        With ``parallel=True`` (or an explicit ``pool``) the engine trials
        fan out in chunks over a shared-memory worker pool; see
        :meth:`TrialPlan.run` for the knobs.
        """
        return _run_plan_chunked(
            self, _run_distributed_chunk, _run_distributed_group,
            parallel=parallel, max_workers=max_workers, pool=pool,
            chunk_size=chunk_size, share_topology=share_topology,
        )


class TrialPlan:
    """An ordered trial table executed against shared compiled topologies."""

    #: evidence of the last chunked run (None after a serial run) — see
    #: :func:`_run_plan_chunked`
    last_run_stats: dict | None = None

    def __init__(self, trials: Iterable[TrialSpec]) -> None:
        self.trials: list[TrialSpec] = list(trials)

    @classmethod
    def from_factors(
        cls,
        instances: Iterable[tuple[str, str, dict]],
        *,
        placements: Sequence[str] = ("random",),
        fault_count: int | None = None,
        seeds: Sequence[int] | int = (0,),
        behaviors: Sequence[str] = ("random",),
        algorithms: Sequence[str] = ("stewart",),
        base_seed: int = 0,
    ) -> "TrialPlan":
        """Build the factor-product table.

        ``instances`` is an iterable of ``(label, family, params)``; the other
        factors multiply out in the order placement → seed → behaviour →
        algorithm (innermost varies fastest), matching the row order of the
        experiment tables.  ``seeds`` may be an explicit sequence or an
        integer replicate count, in which case the seeds derive positionally
        from ``base_seed`` via ``SeedSequence.spawn`` (bit-identical results
        however the table is later chunked across workers).
        """
        seeds = _seed_list(seeds, base_seed=base_seed)
        trials = [
            TrialSpec(
                label=label,
                family=family,
                params=tuple(sorted(params.items())),
                placement=placement,
                fault_count=fault_count,
                seed=seed,
                behavior=behavior,
                algorithm=algorithm,
            )
            for (label, family, params), placement, seed, behavior, algorithm
            in product(list(instances), placements, seeds, behaviors, algorithms)
        ]
        return cls(trials)

    def __len__(self) -> int:
        return len(self.trials)

    def groups(self) -> list[list[tuple[int, TrialSpec]]]:
        """Trials grouped by topology, each tagged with its table position."""
        grouped: dict[tuple, list[tuple[int, TrialSpec]]] = {}
        for position, spec in enumerate(self.trials):
            grouped.setdefault((spec.family, spec.params), []).append((position, spec))
        return list(grouped.values())

    def run(
        self, *, parallel: bool = False, max_workers: int | None = None,
        pool: WorkerPool | None = None, chunk_size: int | None = None,
        share_topology: bool = True,
    ) -> list[TrialResult]:
        """Execute every trial; results come back in table order.

        Parameters
        ----------
        parallel:
            Fan the trial table out over a worker pool.  Unlike the old
            per-group fan-out, parallelism is *chunked within groups* too:
            a plan over one huge topology still loads every worker, and no
            worker ever recompiles a topology (the compiled arrays arrive
            through shared memory).
        max_workers:
            Pool width when the pool is created here (ignored with ``pool``).
        pool:
            An existing persistent :class:`~repro.parallel.pool.WorkerPool`
            to run on (and keep warm across plans); implies parallelism.
        chunk_size:
            Trials per task; defaults to about two chunks per worker per
            group.
        share_topology:
            Publish compiled topologies to shared memory (the default).
            ``False`` restores per-worker recompilation — kept only as the
            benchmark's A/B baseline.

        Results are bit-identical across all execution modes: every trial
        carries its own derived seed, so scheduling cannot leak into the
        numbers.  After a pooled run, ``last_run_stats`` holds the chunk
        count, worker pids and the summed worker-side compile deltas
        (0 with ``share_topology=True``).
        """
        return _run_plan_chunked(
            self, _run_trial_chunk, _run_group,
            parallel=parallel, max_workers=max_workers, pool=pool,
            chunk_size=chunk_size, share_topology=share_topology,
        )
