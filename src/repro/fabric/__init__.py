"""`repro.fabric` — the cross-machine worker fabric.

This package is where the repo's two scale-out halves finally meet:
:mod:`repro.parallel` shards within one machine over shared memory, and
:mod:`repro.distributed` models lossy channels — the fabric moves *real*
diagnosis batches between machines over a framed-socket sibling of the HTTP
wire protocol, with the channel models injected on the data plane:

* :mod:`~repro.fabric.protocol` — length-prefixed JSON framing, the
  control/data-plane split, and :class:`FaultPolicy` /
  :class:`FrameChannel` (drop / duplicate / delay injection reusing
  :class:`~repro.distributed.events.ChannelConfig`);
* :mod:`~repro.fabric.registry` — :class:`WorkerRegistry`, the pure
  register → heartbeat → miss → dead → rejoin state machine;
* :mod:`~repro.fabric.coordinator` — :class:`FabricCoordinator`, the
  asyncio server leasing coalesced batches to live workers with
  timeout-and-backoff retry, death-triggered requeue and
  duplicate-completion dedup;
* :mod:`~repro.fabric.worker` — :class:`FabricWorker`, the remote process:
  hello/heartbeat plus lease execution through exactly the local batch
  path (:func:`~repro.service.executor.run_batch_local`), so fabric
  responses are bit-identical to direct serving.

Attribute access is lazy (PEP 562), mirroring :mod:`repro.service`.
"""

from __future__ import annotations

_EXPORTS = {
    "DATA_PLANE_KINDS": "protocol",
    "FabricUnavailableError": "protocol",
    "FaultPolicy": "protocol",
    "FrameChannel": "protocol",
    "FrameError": "protocol",
    "MAX_FRAME_BYTES": "protocol",
    "PROTOCOL_VERSION": "protocol",
    "read_frame": "protocol",
    "write_frame": "protocol",
    "WorkerInfo": "registry",
    "WorkerRegistry": "registry",
    "FabricCoordinator": "coordinator",
    "FabricWorker": "worker",
    "run_worker": "worker",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
