"""The fabric coordinator: accept workers, lease batches, survive their death.

:class:`FabricCoordinator` is the remote half of the serving layer's
dispatch policy.  It listens on a framed-socket port
(:mod:`~repro.fabric.protocol`); workers connect, say ``hello`` and then
heartbeat, and the coordinator hands each coalesced batch to one live
worker as a **lease**:

* a lease keeps its id — and its caller-visible future — across every
  retry, so a late or duplicated ``result`` frame from an earlier attempt
  still answers it, and the first completion wins (later ones are counted
  and dropped: duplicate-completion dedup);
* an unanswered lease times out and is retried with exponential backoff,
  against whichever worker round-robin picks next (the store's content
  addressing makes double execution idempotent);
* a dying worker (connection EOF, or heartbeats silent past the registry
  deadline) is evicted and its in-flight leases are requeued immediately —
  no caller waits a full lease timeout for a death the socket already
  announced.

Per-worker accounting (dispatched / completed / retried / requeued /
evictions) lands in the shared :class:`~repro.service.metrics.ServiceMetrics`
so ``/stats``, ``/metrics`` and the dashboard see the fabric with no extra
plumbing.  When nothing can serve a lease (no live workers, retry budget
exhausted) :class:`~repro.fabric.protocol.FabricUnavailableError` surfaces,
and :class:`~repro.service.service.DiagnosisService` falls back to local
execution — the fabric can only ever lose throughput, never requests.
"""

from __future__ import annotations

import asyncio
import itertools

from ..service.metrics import ServiceMetrics
from ..service.requests import DiagnosisRequest, DiagnosisResponse, decode_result, encode_lease
from .protocol import PROTOCOL_VERSION, FabricUnavailableError, FrameChannel, FrameError
from .registry import WorkerRegistry

__all__ = ["FabricCoordinator", "FabricUnavailableError"]


class _Lease:
    """One batch's dispatch state (id and future stable across retries)."""

    __slots__ = ("lease_id", "requests", "future", "requeue", "attempts")

    def __init__(self, lease_id: int, requests, future) -> None:
        self.lease_id = lease_id
        self.requests = requests
        self.future = future
        self.requeue = asyncio.Event()
        self.attempts = 0


class _WorkerLink:
    """One live worker connection and the lease ids in flight on it."""

    __slots__ = ("worker_id", "generation", "channel", "inflight")

    def __init__(self, worker_id: str, generation: int, channel: FrameChannel) -> None:
        self.worker_id = worker_id
        self.generation = generation
        self.channel = channel
        self.inflight: set[int] = set()


class FabricCoordinator:
    """Accepts fabric workers and executes batches through them.

    Parameters
    ----------
    metrics:
        The :class:`ServiceMetrics` to account per-worker counters into —
        pass the serving service's instance so ``/stats`` and ``/metrics``
        cover the fabric.  A private one is created if omitted.
    heartbeat_interval / max_missed:
        Liveness policy handed to the :class:`WorkerRegistry` (workers are
        told the interval in their ``welcome``).
    lease_timeout:
        Seconds an unanswered lease waits before being retried; also the
        bound on waiting for *any* live worker to appear.
    max_attempts:
        Dispatch attempts per lease before giving up with
        :class:`FabricUnavailableError` (worker-death requeues count as
        attempts too — a lease cannot ping-pong between dying workers
        forever).
    backoff_base / backoff_cap:
        Exponential retry backoff after a lease timeout, in seconds.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: ServiceMetrics | None = None,
        heartbeat_interval: float = 1.0,
        max_missed: int = 3,
        lease_timeout: float = 10.0,
        max_attempts: int = 8,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.host = host
        self.port = port
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        #: True while the coordinator runs on a private ServiceMetrics; a
        #: DiagnosisService given this coordinator as ``remote`` replaces it
        #: with its own so all counters share one snapshot.
        self.owns_metrics = metrics is None
        self.registry = WorkerRegistry(
            heartbeat_interval=heartbeat_interval, max_missed=max_missed
        )
        self.lease_timeout = lease_timeout
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._links: dict[str, _WorkerLink] = {}
        self._leases: dict[int, _Lease] = {}
        self._lease_ids = itertools.count(1)
        self._workers_changed = asyncio.Event()
        self._round_robin = 0
        self.duplicate_completions = 0
        self.protocol_errors = 0
        #: worker id -> most recent terminal error message it reported;
        #: surfaced via :meth:`stats` so a failing environment names itself
        self.last_worker_errors: dict[str, str] = {}
        self._server: asyncio.AbstractServer | None = None
        self._sweeper: asyncio.Task | None = None
        self._closed = False

    # ------------------------------------------------------------- lifecycle
    async def __aenter__(self) -> "FabricCoordinator":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._sweeper = asyncio.create_task(self._sweep_loop())

    async def close(self) -> None:
        self._closed = True
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass  # the cancellation above is the expected outcome
            self._sweeper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for link in list(self._links.values()):
            await link.channel.close()
        self._links.clear()
        for lease in list(self._leases.values()):
            if not lease.future.done():
                lease.future.set_exception(
                    FabricUnavailableError("coordinator closed")
                )
        self._leases.clear()
        self._workers_changed.set()  # wake any worker-waiters to see _closed

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # ----------------------------------------------------------- connections
    async def _handle_connection(self, reader, writer) -> None:
        channel = FrameChannel(reader, writer)
        loop = asyncio.get_running_loop()
        try:
            hello = await asyncio.wait_for(channel.recv(), self.lease_timeout)
        except (TimeoutError, FrameError):
            await channel.close()
            return
        if (hello is None or hello.get("kind") != "hello"
                or not isinstance(hello.get("worker"), str)
                or not hello["worker"]):
            if hello is not None:
                self.protocol_errors += 1
            await channel.close()
            return
        worker_id = hello["worker"]
        info = self.registry.register(worker_id, loop.time())
        stale = self._links.get(worker_id)
        link = _WorkerLink(worker_id, info.generation, channel)
        self._links[worker_id] = link
        if stale is not None:
            # Same id reconnected: the old socket is stale, not the worker.
            await stale.channel.close()
            self._requeue_inflight(stale)
        try:
            await channel.send({
                "kind": "welcome",
                "protocol": PROTOCOL_VERSION,
                "worker": worker_id,
                "generation": info.generation,
                "heartbeat_interval": self.registry.heartbeat_interval,
                "lease_timeout": self.lease_timeout,
            })
        except (ConnectionError, OSError):
            await self._drop_link(link)
            return
        self._workers_changed.set()
        try:
            while True:
                try:
                    frame = await channel.recv()
                except FrameError:
                    self.protocol_errors += 1
                    break
                if frame is None:
                    break
                kind = frame.get("kind")
                if kind == "heartbeat":
                    self.registry.heartbeat(worker_id, loop.time())
                elif kind == "result":
                    self._handle_result(link, frame)
                elif kind == "error":
                    self._handle_worker_error(link, frame)
                else:
                    self.protocol_errors += 1
        finally:
            await self._drop_link(link)

    async def _drop_link(self, link: _WorkerLink) -> None:
        """Retire one connection: evict its worker (if this link is still
        current) and requeue whatever it was executing."""
        await link.channel.close()
        if self._links.get(link.worker_id) is link:
            del self._links[link.worker_id]
            if self.registry.mark_dead(link.worker_id):
                self.metrics.worker(link.worker_id)["evictions"] += 1
            self._workers_changed.set()
        self._requeue_inflight(link)

    def _requeue_inflight(self, link: _WorkerLink) -> None:
        for lease_id in list(link.inflight):
            lease = self._leases.get(lease_id)
            if lease is not None and not lease.future.done():
                self.metrics.worker(link.worker_id)["requeued"] += 1
                lease.requeue.set()
        link.inflight.clear()

    async def _sweep_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.registry.heartbeat_interval)
            for worker_id in self.registry.sweep(loop.time()):
                self.metrics.worker(worker_id)["evictions"] += 1
                link = self._links.pop(worker_id, None)
                if link is not None:
                    await link.channel.close()
                    self._requeue_inflight(link)
            self._workers_changed.set()

    # ---------------------------------------------------------- result plane
    def _handle_result(self, link: _WorkerLink, frame: dict) -> None:
        try:
            lease_id, responses, stats = decode_result(frame)
        except ValueError:
            self.protocol_errors += 1
            return
        link.inflight.discard(lease_id)
        lease = self._leases.get(lease_id)
        if lease is None or lease.future.done():
            # A duplicated frame, or a slow attempt answering a lease a
            # faster retry already resolved: first completion won.
            self.duplicate_completions += 1
            return
        del self._leases[lease_id]
        self.metrics.worker(link.worker_id)["completed"] += 1
        lease.future.set_result((responses, stats))

    def _handle_worker_error(self, link: _WorkerLink, frame: dict) -> None:
        """A worker reported a terminal execution failure for a lease.

        Requests are validated before they are ever queued, so this is an
        environment problem (e.g. the worker cannot build the topology) —
        retrying the identical work elsewhere may still succeed, so treat
        it exactly like a death of that one lease: requeue it.
        """
        lease_id = frame.get("lease")
        link.inflight.discard(lease_id)
        # Record the report even when the lease is already resolved: the
        # message is the only evidence of *why* a worker's environment is
        # failing, and dropping it made these faults undiagnosable.
        self.metrics.worker(link.worker_id)["errors"] += 1
        message = frame.get("message")
        if isinstance(message, str) and message:
            self.last_worker_errors[link.worker_id] = message
        lease = self._leases.get(lease_id)
        if lease is not None and not lease.future.done():
            self.metrics.worker(link.worker_id)["requeued"] += 1
            lease.requeue.set()

    # -------------------------------------------------------------- dispatch
    def live_workers(self) -> list[str]:
        """Workers that are registry-alive *and* currently connected."""
        return [w for w in self.registry.live() if w in self._links]

    def has_workers(self) -> bool:
        return bool(self.live_workers())

    async def _acquire_link(self) -> _WorkerLink:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.lease_timeout
        while True:
            if self._closed:
                raise FabricUnavailableError("coordinator closed")
            live = self.live_workers()
            if live:
                worker_id = live[self._round_robin % len(live)]
                self._round_robin += 1
                return self._links[worker_id]
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise FabricUnavailableError(
                    f"no live workers within {self.lease_timeout:.1f}s"
                )
            self._workers_changed.clear()
            try:
                await asyncio.wait_for(self._workers_changed.wait(), remaining)
            except TimeoutError:
                raise FabricUnavailableError(
                    f"no live workers within {self.lease_timeout:.1f}s"
                ) from None

    async def _await_lease(self, lease: _Lease) -> str:
        """Wait one attempt out; ``"done"`` / ``"requeued"`` / ``"timeout"``."""
        result = asyncio.ensure_future(asyncio.shield(lease.future))
        requeued = asyncio.ensure_future(lease.requeue.wait())
        done, pending = await asyncio.wait(
            {result, requeued},
            timeout=self.lease_timeout,
            return_when=asyncio.FIRST_COMPLETED,
        )
        for task in pending:
            task.cancel()
        for task in done:
            task.exception()  # retrieved; the real outcome reads lease.future
        if lease.future.done():
            return "done"
        if lease.requeue.is_set():
            return "requeued"
        return "timeout"

    async def execute(
        self, topology: str, requests: list[DiagnosisRequest]
    ) -> tuple[list[DiagnosisResponse], dict]:
        """Run one batch on some live worker; retries/requeues are internal.

        Returns the same ``(responses, stats)`` shape as
        :func:`~repro.service.executor.run_batch_local` so the service's
        batch tail (metrics, store commit, future resolution) is identical
        whichever executor ran the work.  Raises
        :class:`FabricUnavailableError` when the fabric cannot complete the
        lease — the caller's cue to execute locally.
        """
        if self._closed:
            raise FabricUnavailableError("coordinator closed")
        loop = asyncio.get_running_loop()
        lease = _Lease(next(self._lease_ids), list(requests), loop.create_future())
        self._leases[lease.lease_id] = lease
        frame = encode_lease(lease.lease_id, lease.requests)
        try:
            while True:
                if lease.future.done():  # a straggler from a prior attempt
                    return lease.future.result()
                if lease.attempts >= self.max_attempts:
                    raise FabricUnavailableError(
                        f"lease {lease.lease_id} exhausted "
                        f"{self.max_attempts} dispatch attempts"
                    )
                link = await self._acquire_link()
                lease.attempts += 1
                lease.requeue = asyncio.Event()
                link.inflight.add(lease.lease_id)
                self.metrics.worker(link.worker_id)["dispatched"] += 1
                try:
                    await link.channel.send(frame)
                except (ConnectionError, OSError):
                    # The reader loop notices the same death and evicts; for
                    # this lease the failed send *is* the requeue.
                    link.inflight.discard(lease.lease_id)
                    self.metrics.worker(link.worker_id)["requeued"] += 1
                    continue
                outcome = await self._await_lease(lease)
                if outcome == "done":
                    return lease.future.result()
                if outcome == "requeued":
                    continue
                # Lease timeout: the worker is alive but the answer never
                # came (lost lease, lost result, or genuinely slow work).
                link.inflight.discard(lease.lease_id)
                self.metrics.worker(link.worker_id)["retried"] += 1
                await asyncio.sleep(min(
                    self.backoff_base * 2 ** (lease.attempts - 1),
                    self.backoff_cap,
                ))
        finally:
            self._leases.pop(lease.lease_id, None)

    # ----------------------------------------------------------------- stats
    def stats(self) -> dict:
        """The fabric section of the service's ``stats()`` snapshot."""
        registry = self.registry.stats()
        return {
            "address": self.address,
            "workers_known": registry["known"],
            "workers_live": len(self.live_workers()),
            "live_workers": self.live_workers(),
            "worker_evictions": registry["evictions"],
            "outstanding_leases": len(self._leases),
            "duplicate_completions": self.duplicate_completions,
            "protocol_errors": self.protocol_errors,
            "last_worker_errors": dict(self.last_worker_errors),
            "workers": registry["workers"],
        }
