"""Framing and fault injection of the worker-fabric wire protocol.

The fabric speaks a leaner framed-socket sibling of the HTTP wire protocol:
every frame is a 4-byte big-endian length prefix followed by one UTF-8 JSON
object with a ``kind`` field.  The control plane (``hello`` / ``welcome`` /
``heartbeat`` / ``error``) keeps registration and liveness honest; the data
plane (``lease`` / ``result``, see
:func:`repro.service.requests.encode_lease` /
:func:`~repro.service.requests.encode_result`) moves the actual diagnosis
batches.

Failure injection reuses the distributed engine's channel models
(:class:`~repro.distributed.events.ChannelConfig`,
:class:`~repro.distributed.events.LossModel`,
:class:`~repro.distributed.events.LatencyModel`): a :class:`FaultPolicy`
draws seeded per-frame drop/duplicate decisions and a per-link delay, and a
:class:`FrameChannel` built with one applies them to **data-plane frames
only** — a hostile link may eat or double a lease or a result, but never a
heartbeat, so liveness tracking stays truthful while the retry/requeue/dedup
machinery is exercised for real.  The coordinator's timeout-and-backoff
retry plus the store's content addressing make every injected fault
invisible to the caller (the chaos suite pins that).
"""

from __future__ import annotations

import asyncio
import json
import struct

from ..distributed.events import ChannelConfig, LatencyModel, LossModel

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "DATA_PLANE_KINDS",
    "FrameError",
    "FabricUnavailableError",
    "FaultPolicy",
    "FrameChannel",
    "read_frame",
    "write_frame",
]

PROTOCOL_VERSION = 1

#: Hard bound on one frame's JSON body.  A lease of ``max_batch_size``
#: explicit syndromes on the largest bench topology is a few MB; anything
#: near this bound is a corrupt length prefix, not a real batch.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Frame kinds the fault policy may drop/duplicate/delay.  Everything else
#: is control plane and always delivered intact.
DATA_PLANE_KINDS = frozenset({"lease", "result"})

_HEADER = struct.Struct(">I")


class FrameError(ConnectionError):
    """The peer sent bytes that are not a valid fabric frame."""


class FabricUnavailableError(RuntimeError):
    """The fabric cannot execute a batch right now (no live workers, or a
    lease exhausted its retry budget).  The service treats this as a signal
    to fall back to local execution, so fabric trouble degrades throughput,
    never correctness."""


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """One length-prefixed JSON frame, or ``None`` on a clean/abrupt EOF."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        return None
    (size,) = _HEADER.unpack(header)
    if size > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {size} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(size)
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        return None
    try:
        frame = json.loads(body)
    except ValueError as exc:
        raise FrameError(f"frame body is not JSON: {exc}") from None
    if not isinstance(frame, dict) or not isinstance(frame.get("kind"), str):
        raise FrameError("frame must be a JSON object with a string 'kind'")
    return frame


async def write_frame(writer: asyncio.StreamWriter, frame: dict) -> None:
    """Serialise and send one frame (length prefix + JSON body)."""
    body = json.dumps(frame, separators=(",", ":")).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    writer.write(_HEADER.pack(len(body)) + body)
    await writer.drain()


class FaultPolicy:
    """Seeded drop/duplicate/delay draws for one end of a fabric link.

    Drop and duplication come from the engine's per-transmission
    :class:`LossModel` draws (canonical order: the drop draw first, then —
    only for delivered frames — the duplication draw), so a policy's fault
    pattern is a deterministic function of its :class:`ChannelConfig`.
    Delay reuses :class:`LatencyModel`: the coordinator-worker connection is
    one link, so its latency is sampled **once** from the spec (``"fixed:K"``
    or ``"uniform:A:B"``, in rounds) and converted to seconds at
    ``delay_unit`` per round above the first — ``fixed:1``, the default,
    means no added delay.
    """

    def __init__(
        self, config: ChannelConfig, *, delay_unit: float = 0.01
    ) -> None:
        if delay_unit < 0:
            raise ValueError("delay_unit must be non-negative")
        self.config = config
        self.delay_unit = delay_unit
        self._loss = LossModel(config)
        model = LatencyModel.from_spec(config.latency)
        rounds = model.sample_links([(0, 1)], config.seed)[(0, 1)]
        self.delay_seconds = (rounds - 1) * delay_unit

    def copies(self) -> int:
        """How many times the next data-plane frame is delivered (0/1/2)."""
        if self._loss.dropped():
            return 0
        return 2 if self._loss.duplicated() else 1

    def describe(self) -> str:
        return (f"{self.config.describe()} "
                f"delay={self.delay_seconds * 1e3:.0f}ms")


class FrameChannel:
    """One fabric connection: framed send/recv plus optional fault injection.

    ``send`` serialises writers behind a lock (frames from concurrent lease
    tasks must not interleave); when a :class:`FaultPolicy` is attached,
    outgoing **data-plane** frames are subject to its drop/duplicate/delay
    draws — control frames always go out intact, and the delay sleep happens
    outside the lock so a delayed result never stalls a heartbeat.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        fault_policy: FaultPolicy | None = None,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.faults = fault_policy
        self._send_lock = asyncio.Lock()
        #: injected-fault evidence, for tests and worker stats
        self.dropped_frames = 0
        self.duplicated_frames = 0

    async def send(self, frame: dict) -> None:
        copies = 1
        if self.faults is not None and frame.get("kind") in DATA_PLANE_KINDS:
            copies = self.faults.copies()
            if copies == 0:
                self.dropped_frames += 1
                return  # eaten by the (simulated) wire
            if copies > 1:
                self.duplicated_frames += 1
            if self.faults.delay_seconds:
                await asyncio.sleep(self.faults.delay_seconds)
        # repro: allow[RPR009] frame serialization IS the critical section:
        # the awaited work is the socket write this lock keeps atomic, so
        # concurrent senders cannot interleave frame bytes on the wire
        async with self._send_lock:
            for _ in range(copies):
                await write_frame(self.writer, frame)

    async def recv(self) -> dict | None:
        return await read_frame(self.reader)

    async def close(self) -> None:
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # already closing; the peer being gone is success here
