"""The coordinator's worker-liveness state machine.

One :class:`WorkerRegistry` tracks every worker that ever said ``hello``:
**register** makes (or revives) a worker, each **heartbeat** refreshes its
lease on life, a **sweep** declares workers dead once they have missed
``max_missed`` heartbeat intervals, and an EOF on the connection is an
immediate **mark_dead**.  A dead worker that reconnects *rejoins*: same id,
``generation`` bumped, so stale state from its previous life is
distinguishable (the coordinator drops the old link and requeues its
leases).

The registry is deliberately pure bookkeeping over an injected clock — no
sockets, no tasks — which is what makes the register → heartbeat → miss →
dead → rejoin cycle property-testable against a reference model
(``tests/fabric/test_registry.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WorkerInfo", "WorkerRegistry"]


@dataclass
class WorkerInfo:
    """One worker's liveness record."""

    worker_id: str
    generation: int
    registered_at: float
    last_heartbeat: float
    alive: bool = True

    def as_dict(self) -> dict:
        return {
            "generation": self.generation,
            "alive": self.alive,
            "last_heartbeat": self.last_heartbeat,
        }


class WorkerRegistry:
    """Register/heartbeat/sweep bookkeeping for the fabric coordinator.

    ``heartbeat_interval`` is what workers are told to beat at;
    ``max_missed`` is how many intervals of silence the registry tolerates
    before a sweep declares the worker dead (the deadline is strict:
    exactly ``max_missed`` intervals of silence is still alive, beyond it
    is dead).  All timestamps come from the caller's clock, so tests drive
    the machine with a virtual one.
    """

    def __init__(
        self, *, heartbeat_interval: float, max_missed: int = 3
    ) -> None:
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if max_missed < 1:
            raise ValueError("max_missed must be at least 1")
        self.heartbeat_interval = heartbeat_interval
        self.max_missed = max_missed
        self.workers: dict[str, WorkerInfo] = {}
        #: total dead-worker declarations (sweeps + explicit mark_dead)
        self.evictions = 0

    @property
    def deadline(self) -> float:
        """Silence beyond this many seconds means dead."""
        return self.heartbeat_interval * self.max_missed

    # --------------------------------------------------------------- events
    def register(self, worker_id: str, now: float) -> WorkerInfo:
        """A worker said hello: create it, or revive it with a new generation.

        Re-registration always bumps the generation — even for a worker the
        registry still believed alive (its old connection is stale the
        moment a new one authenticates as the same id).
        """
        info = self.workers.get(worker_id)
        if info is None:
            info = WorkerInfo(
                worker_id=worker_id,
                generation=1,
                registered_at=now,
                last_heartbeat=now,
            )
            self.workers[worker_id] = info
        else:
            info.generation += 1
            info.alive = True
            info.registered_at = now
            info.last_heartbeat = now
        return info

    def heartbeat(self, worker_id: str, now: float) -> bool:
        """Refresh a worker's liveness; ``False`` if unknown or dead.

        A heartbeat from a dead worker does **not** revive it — its leases
        were already requeued, so it must re-register (new generation) to
        take work again.
        """
        info = self.workers.get(worker_id)
        if info is None or not info.alive:
            return False
        info.last_heartbeat = now
        return True

    def mark_dead(self, worker_id: str) -> bool:
        """Immediate death (connection EOF); ``True`` if it was alive."""
        info = self.workers.get(worker_id)
        if info is None or not info.alive:
            return False
        info.alive = False
        self.evictions += 1
        return True

    def sweep(self, now: float) -> list[str]:
        """Declare every worker silent past the deadline dead; return them."""
        dead = [
            worker_id
            for worker_id, info in self.workers.items()
            if info.alive and now - info.last_heartbeat > self.deadline
        ]
        for worker_id in dead:
            self.mark_dead(worker_id)
        return dead

    # -------------------------------------------------------------- queries
    def live(self) -> list[str]:
        """Alive worker ids, in first-registration order."""
        return [w for w, info in self.workers.items() if info.alive]

    def is_live(self, worker_id: str) -> bool:
        info = self.workers.get(worker_id)
        return info is not None and info.alive

    def generation(self, worker_id: str) -> int:
        info = self.workers.get(worker_id)
        return 0 if info is None else info.generation

    def stats(self) -> dict:
        return {
            "known": len(self.workers),
            "live": len(self.live()),
            "evictions": self.evictions,
            "workers": {
                worker_id: info.as_dict()
                for worker_id, info in sorted(self.workers.items())
            },
        }
