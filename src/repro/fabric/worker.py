"""The remote diagnosis worker: connect, heartbeat, execute leases.

:class:`FabricWorker` is the process that actually runs batches on another
machine.  It dials the coordinator, introduces itself (``hello`` →
``welcome``, which carries the heartbeat interval it must keep), then
serves ``lease`` frames until the connection ends: each lease's topology is
resolved locally (through a small bounded LRU — remote workers pay their
own compile once per topology, *outside* the measured batch) and the batch
runs through exactly :func:`~repro.service.executor.run_batch_local`, the
same code path as in-process serving — which is the whole bit-identity
argument: the fabric moves work, it never changes it.

Batches execute on the default thread executor so the event loop keeps
heartbeating mid-batch; a slow batch must never look like a dead worker.

A worker built with a :class:`~repro.distributed.events.ChannelConfig`
simulates a hostile link: incoming leases are subject to drop/duplicate
draws (a dropped lease is simply never executed — the coordinator's lease
timeout covers it; a duplicated lease executes twice and the coordinator
dedups the second completion) and outgoing results pass through the same
:class:`~repro.fabric.protocol.FaultPolicy` on the channel (drop, double
or delay).  Control frames are never faulted.
"""

from __future__ import annotations

import asyncio
import os

from ..distributed.events import ChannelConfig
from ..service.cache import LRUCache
from ..service.executor import resolve_topology, run_batch_local
from ..service.requests import decode_lease, encode_result
from .protocol import PROTOCOL_VERSION, FaultPolicy, FrameChannel

__all__ = ["FabricWorker", "run_worker"]


class FabricWorker:
    """One remote worker process's client-side state machine.

    Parameters
    ----------
    host / port:
        The coordinator's fabric endpoint.
    worker_id:
        Stable identity across reconnects (rejoin bumps the registry
        generation).  Defaults to ``worker-<pid>``.
    fault_config:
        Optional :class:`ChannelConfig` activating data-plane fault
        injection (drop / duplicate / delay) on this worker's link.
    delay_unit:
        Seconds per latency round above the first (see
        :class:`~repro.fabric.protocol.FaultPolicy`).
    topology_cache_capacity:
        Bound of the worker-local compiled-topology LRU.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        worker_id: str | None = None,
        fault_config: ChannelConfig | None = None,
        delay_unit: float = 0.01,
        topology_cache_capacity: int = 8,
    ) -> None:
        self.host = host
        self.port = port
        self.worker_id = worker_id or f"worker-{os.getpid()}"
        self.faults = (
            FaultPolicy(fault_config, delay_unit=delay_unit)
            if fault_config is not None else None
        )
        self._topologies: LRUCache[str, tuple] = LRUCache(
            topology_cache_capacity
        )
        self.heartbeat_interval: float | None = None
        self.generation: int | None = None
        self.leases_received = 0
        self.leases_served = 0
        self.leases_dropped = 0

    async def run(self, *, ready=None) -> None:
        """Serve one connection until the coordinator goes away.

        ``ready(worker)`` fires once the ``welcome`` handshake completed —
        the in-process equivalent of the CLI's ready-file.  Raises
        :class:`ConnectionError` if the handshake fails; returns normally
        on EOF (coordinator closed).
        """
        reader, writer = await asyncio.open_connection(self.host, self.port)
        channel = FrameChannel(reader, writer, fault_policy=self.faults)
        await channel.send({
            "kind": "hello",
            "worker": self.worker_id,
            "pid": os.getpid(),
            "protocol": PROTOCOL_VERSION,
        })
        welcome = await channel.recv()
        if welcome is None or welcome.get("kind") != "welcome":
            await channel.close()
            raise ConnectionError(
                f"coordinator at {self.host}:{self.port} refused the handshake"
            )
        self.heartbeat_interval = float(welcome["heartbeat_interval"])
        self.generation = int(welcome.get("generation", 0))
        heartbeat = asyncio.create_task(self._heartbeat_loop(channel))
        lease_tasks: set[asyncio.Task] = set()
        try:
            if ready is not None:
                ready(self)
            while True:
                frame = await channel.recv()
                if frame is None:
                    return  # coordinator closed the connection
                if frame.get("kind") != "lease":
                    continue
                self.leases_received += 1
                copies = 1 if self.faults is None else self.faults.copies()
                if copies == 0:
                    # The (simulated) wire ate the lease; the coordinator's
                    # timeout-and-retry owns recovery.
                    self.leases_dropped += 1
                    continue
                for _ in range(copies):
                    task = asyncio.create_task(
                        self._serve_lease(channel, frame)
                    )
                    lease_tasks.add(task)
                    task.add_done_callback(lease_tasks.discard)
        finally:
            heartbeat.cancel()
            for task in list(lease_tasks):
                task.cancel()
            await channel.close()

    async def _heartbeat_loop(self, channel: FrameChannel) -> None:
        frame = {"kind": "heartbeat", "worker": self.worker_id}
        try:
            while True:
                await asyncio.sleep(self.heartbeat_interval)
                await channel.send(frame)
        except (ConnectionError, OSError):
            return  # the main recv loop sees the same EOF and unwinds

    async def _serve_lease(self, channel: FrameChannel, frame: dict) -> None:
        loop = asyncio.get_running_loop()
        try:
            lease_id, requests = decode_lease(frame)
        except ValueError:
            return  # corrupt lease: nothing useful to answer
        try:
            first = requests[0]
            entry = self._topologies.get(first.topology_key)
            if entry is None:
                entry = await loop.run_in_executor(
                    None, resolve_topology, first.family, first.network_kwargs
                )
                self._topologies.put(first.topology_key, entry)
            network, csr = entry
            responses, stats = await loop.run_in_executor(
                None, run_batch_local, network, csr, requests
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            try:
                await channel.send({
                    "kind": "error",
                    "lease": lease_id,
                    "worker": self.worker_id,
                    "message": f"{type(exc).__name__}: {exc}",
                })
            except (ConnectionError, OSError):
                pass  # connection died mid-report; the coordinator requeues
            return
        self.leases_served += 1
        try:
            await channel.send(encode_result(lease_id, responses, stats))
        except (ConnectionError, OSError):
            pass  # connection died mid-send; the coordinator requeues


async def run_worker(
    host: str,
    port: int,
    *,
    worker_id: str | None = None,
    fault_config: ChannelConfig | None = None,
    delay_unit: float = 0.01,
    topology_cache_capacity: int = 8,
    ready=None,
    stop: asyncio.Event | None = None,
) -> FabricWorker:
    """Run one worker until the coordinator disconnects or ``stop`` is set.

    The CLI's ``worker`` subcommand wraps this; tests drive it directly.
    Returns the worker so callers can read its served/dropped counters.
    """
    worker = FabricWorker(
        host, port,
        worker_id=worker_id,
        fault_config=fault_config,
        delay_unit=delay_unit,
        topology_cache_capacity=topology_cache_capacity,
    )
    serving = asyncio.create_task(worker.run(ready=ready))
    if stop is None:
        await serving
        return worker
    stopper = asyncio.create_task(stop.wait())
    try:
        done, pending = await asyncio.wait(
            {serving, stopper}, return_when=asyncio.FIRST_COMPLETED
        )
    except asyncio.CancelledError:
        # Cancelling run_worker must kill the connection too — asyncio.wait
        # leaves its awaitables running, which would turn a "killed" worker
        # into a zombie that keeps serving leases.
        serving.cancel()
        stopper.cancel()
        await asyncio.gather(serving, stopper, return_exceptions=True)
        raise
    for task in pending:
        task.cancel()
    await asyncio.gather(*pending, return_exceptions=True)
    if serving in done:
        serving.result()  # surface connection errors
    return worker
