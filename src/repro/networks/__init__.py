"""Interconnection-network topologies used in the paper (Section 5).

The module exposes the fourteen families the paper applies its algorithm to,
plus the abstract base classes and a registry for uniform instantiation.
"""

from .arrangement import ArrangementGraph
from .augmented_cube import AugmentedCube
from .base import (
    DimensionalNetwork,
    ExplicitNetwork,
    InterconnectionNetwork,
    PartitionClass,
    PartitionScheme,
    PermutationNetwork,
)
from .crossed_cube import CrossedCube
from .extensions import LocallyTwistedCube, MobiusCube
from .folded_hypercube import EnhancedHypercube, FoldedHypercube
from .hypercube import Hypercube, gray_code_cycle
from .kary_ncube import AugmentedKAryNCube, KAryNCube
from .pancake import PancakeGraph
from .properties import (
    PropertyReport,
    check_partition,
    is_regular,
    verify_theorem1_preconditions,
    vertex_connectivity,
)
from .registry import (
    EXTENSION_FAMILIES,
    FAMILIES,
    PAPER_FAMILIES,
    FamilySpec,
    available_families,
    create_network,
    default_instances,
)
from .shuffle_cube import ShuffleCube
from .star_graph import NKStarGraph, StarGraph
from .twisted_cube import TwistedCube
from .twisted_n_cube import TwistedNCube

__all__ = [
    # base
    "InterconnectionNetwork",
    "DimensionalNetwork",
    "PermutationNetwork",
    "ExplicitNetwork",
    "PartitionClass",
    "PartitionScheme",
    # families
    "Hypercube",
    "CrossedCube",
    "TwistedCube",
    "FoldedHypercube",
    "EnhancedHypercube",
    "AugmentedCube",
    "ShuffleCube",
    "TwistedNCube",
    "KAryNCube",
    "AugmentedKAryNCube",
    "StarGraph",
    "NKStarGraph",
    "PancakeGraph",
    "ArrangementGraph",
    "LocallyTwistedCube",
    "MobiusCube",
    # helpers
    "gray_code_cycle",
    "FAMILIES",
    "PAPER_FAMILIES",
    "EXTENSION_FAMILIES",
    "FamilySpec",
    "available_families",
    "create_network",
    "default_instances",
    "PropertyReport",
    "is_regular",
    "vertex_connectivity",
    "check_partition",
    "verify_theorem1_preconditions",
]
