"""The arrangement graph ``A_{n,k}`` (Day & Tripathi [11]).

Nodes are the ``k``-arrangements of ``{1, .., n}``; two arrangements are
adjacent iff they differ in exactly one position.  ``A_{n,k}`` is
``k(n-k)``-regular with connectivity ``k(n-k)`` and diagnosability ``k(n-k)``
(paper Theorem 7).  ``A_{n,1}`` is the complete graph ``K_n`` and
``A_{n,n-1}`` is isomorphic to the star graph ``S_n``.

Partitioning: fixing the symbols in the trailing ``j`` positions splits
``A_{n,k}`` into ``n!/(n-j)!`` copies of ``A_{n-j, k-j}``.  Because the
diagnosability ``k(n-k)`` can exceed ``n``, a single fixed position does not
always provide more classes than faults; :meth:`ArrangementGraph.partition_scheme`
therefore fixes as many trailing positions as needed (and exposes coarser
levels by fixing fewer).
"""

from __future__ import annotations

from math import factorial
from typing import Iterator

from .base import PartitionClass, PartitionScheme, PermutationNetwork

__all__ = ["ArrangementGraph"]


class ArrangementGraph(PermutationNetwork):
    """The arrangement graph ``A_{n,k}``."""

    family = "arrangement"

    def __init__(self, n: int, k: int) -> None:
        if not 1 <= k <= n - 1:
            raise ValueError("the arrangement graph requires 1 <= k <= n - 1")
        super().__init__(n, k)

    # ------------------------------------------------------------------ edges
    def _label_neighbors(self, label: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
        used = set(label)
        for position in range(self.k):
            for symbol in range(1, self.n + 1):
                if symbol not in used:
                    yield label[:position] + (symbol,) + label[position + 1 :]

    # --------------------------------------------------------------- metadata
    def degree(self, v: int) -> int:
        return self.k * (self.n - self.k)

    @property
    def max_degree(self) -> int:
        return self.k * (self.n - self.k)

    @property
    def min_degree(self) -> int:
        return self.k * (self.n - self.k)

    def diagnosability(self) -> int:
        """Diagnosability ``k(n-k)`` of ``A_{n,k}`` for ``n ≥ 4`` (paper Theorem 7)."""
        if self.n < 4:
            raise ValueError("diagnosability of A_{n,k} under the MM model requires n >= 4")
        return self.k * (self.n - self.k)

    def connectivity(self) -> int:
        return self.k * (self.n - self.k)

    # -------------------------------------------------------------- partitions
    def _min_fixed_positions(self) -> int:
        """Smallest ``j`` such that fixing ``j`` trailing positions yields more
        classes than the diagnosability (so a fault-free class must exist)."""
        delta = self.diagnosability()
        j = 1
        while j < self.k and factorial(self.n) // factorial(self.n - j) <= delta:
            j += 1
        return j

    def max_partition_level(self) -> int:
        return max(0, self._min_fixed_positions() - 1)

    def partition_scheme(self, level: int = 0) -> PartitionScheme:
        """Partition by the symbols in the trailing ``j`` positions.

        ``level`` 0 fixes the minimal number of positions needed to obtain
        more classes than the diagnosability; higher levels *reduce* the
        number of fixed positions (coarser classes), ending at a single fixed
        position.
        """
        j = self._min_fixed_positions() - int(level)
        if j < 1:
            raise ValueError(f"partition level {level} too coarse for A_({self.n},{self.k})")
        return self._suffix_partition(j)

    def _suffix_partition(self, fixed_positions: int) -> PartitionScheme:
        from itertools import permutations

        n, k, j = self.n, self.k, fixed_positions
        labels = self._labels
        index = self._index
        num_classes = factorial(n) // factorial(n - j)
        size = self.num_nodes // num_classes

        def make_class(suffix: tuple[int, ...]) -> PartitionClass:
            remaining = [s for s in range(1, n + 1) if s not in suffix]
            representative_label = tuple(remaining[: k - j]) + suffix
            representative = index[representative_label]

            def contains(v: int, _suffix: tuple[int, ...] = suffix) -> bool:
                return labels[v][k - j :] == _suffix

            return PartitionClass(
                representative=representative,
                size=size,
                contains=contains,
                label=f"suffix={suffix}",
            )

        def classes() -> Iterator[PartitionClass]:
            for suffix in permutations(range(1, n + 1), j):
                yield make_class(suffix)

        return PartitionScheme(
            classes,
            num_classes=num_classes,
            class_size=size,
            description=f"arrangement: fix trailing {j} positions",
        )
