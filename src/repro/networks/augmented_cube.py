"""The augmented cube ``AQ_n`` (Choudum & Sunitha [10]).

``AQ_n`` is defined recursively: ``AQ_1 = K_2`` and ``AQ_n`` consists of two
copies ``0·AQ_{n-1}`` and ``1·AQ_{n-1}`` where node ``0u`` is joined to both
``1u`` (hypercube edge) and ``1ū`` (complement edge).  Unfolding the recursion
gives the closed form used here: node ``u`` is adjacent to

* ``u`` with bit ``i`` flipped, for every ``i`` (the ``n`` hypercube edges),
* ``u`` with bits ``i-1 .. 0`` all flipped, for ``i = 2 .. n`` (the ``n - 1``
  complement edges).

``AQ_n`` is ``(2n-1)``-regular with connectivity ``2n - 1`` and diagnosability
``2n - 1`` for ``n ≥ 5`` (paper Section 5.1).  Fixing the leading bit yields
two copies of ``AQ_{n-1}``, so the prefix partition of
:class:`~repro.networks.base.DimensionalNetwork` applies unchanged.
"""

from __future__ import annotations

from typing import Sequence

from .base import DimensionalNetwork

__all__ = ["AugmentedCube"]


class AugmentedCube(DimensionalNetwork):
    """The augmented cube ``AQ_n``."""

    family = "augmented_cube"

    def __init__(self, dimension: int) -> None:
        super().__init__(dimension, radix=2)

    # ------------------------------------------------------------------ graph
    def neighbors(self, v: int) -> Sequence[int]:
        result = [v ^ (1 << i) for i in range(self.dimension)]
        result.extend(v ^ ((1 << i) - 1) for i in range(2, self.dimension + 1))
        return result

    def degree(self, v: int) -> int:
        return 2 * self.dimension - 1

    @property
    def max_degree(self) -> int:
        return 2 * self.dimension - 1

    @property
    def min_degree(self) -> int:
        return 2 * self.dimension - 1

    # --------------------------------------------------------------- metadata
    def diagnosability(self) -> int:
        """Diagnosability ``2n - 1`` of ``AQ_n`` for ``n ≥ 5`` (paper, via [6])."""
        if self.dimension < 5:
            raise ValueError("diagnosability of AQ_n under the MM model requires n >= 5")
        return 2 * self.dimension - 1

    def connectivity(self) -> int:
        return 2 * self.dimension - 1
