"""Base classes for interconnection-network topologies.

Every topology used in the paper (Section 5) is exposed through the
:class:`InterconnectionNetwork` interface.  The fault-diagnosis algorithm only
needs a handful of operations from a topology:

* ``num_nodes`` and ``neighbors(v)`` — the graph structure, with nodes encoded
  as dense integers ``0 .. N-1``;
* ``diagnosability()`` — the value of ``δ`` established in the literature and
  quoted by the paper;
* ``connectivity()`` — the (theoretical) vertex connectivity ``κ``; Theorem 1
  requires ``κ ≥ δ``;
* ``partition_scheme(level)`` — a decomposition of the node set into many
  node-disjoint, connected, equally sized classes, each with an easily
  computed representative (paper Section 5: sub-cubes obtained by fixing
  leading coordinates, sub-stars obtained by fixing a symbol, ...).

Two intermediate base classes cover the two structural families in the paper:

* :class:`DimensionalNetwork` — nodes are strings of digits (bit-strings for
  the cube variants, base-``k`` strings for k-ary n-cubes); partitions fix a
  prefix of the digits.
* :class:`PermutationNetwork` — nodes are permutations or arrangements of
  symbols; partitions fix the final symbol.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

import networkx as nx

__all__ = [
    "PartitionClass",
    "PartitionScheme",
    "InterconnectionNetwork",
    "DimensionalNetwork",
    "PermutationNetwork",
    "ExplicitNetwork",
]


@dataclass(frozen=True)
class PartitionClass:
    """One class of a node-disjoint partition of a network.

    Attributes
    ----------
    representative:
        A canonical node of the class; the diagnosis driver starts
        ``Set_Builder`` from this node.
    size:
        Number of nodes in the class.
    contains:
        Membership predicate ``node -> bool``; must run in O(1) for the
        restricted ``Set_Builder`` to stay within its time bound.
    label:
        Human-readable identifier of the class (used in reports).
    """

    representative: int
    size: int
    contains: Callable[[int], bool]
    label: str = ""

    def members(self, network: "InterconnectionNetwork") -> list[int]:
        """Enumerate the members of the class (O(N); used only by tests)."""
        return [v for v in range(network.num_nodes) if self.contains(v)]


class PartitionScheme:
    """A full partition of the node set into :class:`PartitionClass` objects.

    ``PartitionScheme`` is a thin container: the per-topology subclasses of
    :class:`InterconnectionNetwork` construct the classes lazily so that a
    scheme over exponentially many classes never materialises more classes
    than the diagnosis driver actually probes.
    """

    def __init__(
        self,
        classes: Iterable[PartitionClass] | Callable[[], Iterator[PartitionClass]],
        *,
        num_classes: int,
        class_size: int,
        description: str = "",
    ) -> None:
        self._classes = classes
        self.num_classes = int(num_classes)
        self.class_size = int(class_size)
        self.description = description

    def __iter__(self) -> Iterator[PartitionClass]:
        if callable(self._classes):
            return self._classes()
        return iter(self._classes)

    def first(self, count: int) -> list[PartitionClass]:
        """Return the first ``count`` classes (or all of them if fewer)."""
        out: list[PartitionClass] = []
        for cls in self:
            out.append(cls)
            if len(out) >= count:
                break
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PartitionScheme({self.description!r}, num_classes={self.num_classes}, "
            f"class_size={self.class_size})"
        )


class InterconnectionNetwork(ABC):
    """Abstract interconnection network with integer-encoded nodes."""

    #: short machine-readable family name, e.g. ``"hypercube"``
    family: str = "abstract"

    # ------------------------------------------------------------------ graph
    @property
    @abstractmethod
    def num_nodes(self) -> int:
        """Number of nodes ``N`` of the network."""

    @abstractmethod
    def neighbors(self, v: int) -> Sequence[int]:
        """Neighbours of node ``v`` (any order, no duplicates)."""

    def degree(self, v: int) -> int:
        """Degree of node ``v``."""
        return len(self.neighbors(v))

    @property
    def max_degree(self) -> int:
        """Maximum degree ``Δ``.  Regular networks override with the constant."""
        return max(self.degree(v) for v in range(self.num_nodes))

    @property
    def min_degree(self) -> int:
        """Minimum degree ``d``."""
        return min(self.degree(v) for v in range(self.num_nodes))

    def nodes(self) -> range:
        """Iterate the integer node identifiers."""
        return range(self.num_nodes)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate each undirected edge exactly once as ``(u, v)`` with ``u < v``."""
        for u in range(self.num_nodes):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, v)

    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(self.neighbors(v)) for v in range(self.num_nodes)) // 2

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge (sorted-row bisect on the compiled CSR)."""
        from ..backend.csr import compile_network  # deferred: backend builds on this module

        return compile_network(self).has_edge(u, v)

    # ------------------------------------------------------- labels / encoding
    def node_label(self, v: int):
        """Structured label of node ``v`` (tuple of digits / permutation)."""
        return v

    def node_index(self, label) -> int:
        """Inverse of :meth:`node_label`."""
        return int(label)

    # --------------------------------------------------------------- metadata
    @abstractmethod
    def diagnosability(self) -> int:
        """Diagnosability ``δ`` of the network under the MM model.

        The values are the ones quoted in the paper (Section 5) and its
        references; a ``ValueError`` is raised for parameter ranges where the
        literature value does not apply.
        """

    @abstractmethod
    def connectivity(self) -> int:
        """(Theoretical) vertex connectivity ``κ`` of the network."""

    # -------------------------------------------------------------- partitions
    @abstractmethod
    def partition_scheme(self, level: int = 0) -> PartitionScheme:
        """A node-disjoint partition into connected classes.

        ``level`` selects the granularity: level 0 is the paper's choice (the
        smallest classes satisfying the counting argument of Section 5);
        higher levels coarsen the partition (classes grow, their number
        shrinks), which the diagnosis driver uses as an escalation ladder when
        the certificate threshold is not reached (see DESIGN.md §4.5).
        A ``ValueError`` is raised when no coarser partition exists.
        """

    def max_partition_level(self) -> int:
        """Largest admissible ``level`` for :meth:`partition_scheme`."""
        return 0

    # ------------------------------------------------------------ conversions
    def to_networkx(self) -> nx.Graph:
        """Materialise the network as a :class:`networkx.Graph` (for tests)."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_nodes))
        graph.add_edges_from(self.edges())
        return graph

    def adjacency_lists(self) -> list[tuple[int, ...]]:
        """Materialise all adjacency lists (used by cost-sensitive callers)."""
        return [tuple(self.neighbors(v)) for v in range(self.num_nodes)]

    # ---------------------------------------------------------------- dunders
    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        return f"{type(self).__name__}(N={self.num_nodes})"


class DimensionalNetwork(InterconnectionNetwork):
    """Base class for networks whose nodes are length-``n`` strings of digits.

    Nodes are encoded as integers by interpreting the digit string
    ``(u_{n-1}, ..., u_0)`` in base ``radix``, with ``u_{n-1}`` (the "first
    component" in the paper's wording) as the most significant digit.  The
    canonical partition of Section 5 fixes the leading ``n - m`` digits, so a
    class is simply a contiguous block of the integer encoding and membership
    is a single shift-and-compare.
    """

    def __init__(self, dimension: int, radix: int) -> None:
        if dimension < 1:
            raise ValueError("dimension must be >= 1")
        if radix < 2:
            raise ValueError("radix must be >= 2")
        self.dimension = int(dimension)
        self.radix = int(radix)
        self._num_nodes = self.radix**self.dimension

    # ------------------------------------------------------------------ graph
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    # ------------------------------------------------------- labels / encoding
    def node_label(self, v: int) -> tuple[int, ...]:
        """Digits ``(u_{n-1}, ..., u_0)`` of node ``v`` (most significant first)."""
        digits = []
        for _ in range(self.dimension):
            digits.append(v % self.radix)
            v //= self.radix
        return tuple(reversed(digits))

    def node_index(self, label: Sequence[int]) -> int:
        if len(label) != self.dimension:
            raise ValueError(
                f"label must have {self.dimension} digits, got {len(label)}"
            )
        value = 0
        for digit in label:
            digit = int(digit)
            if not 0 <= digit < self.radix:
                raise ValueError(f"digit {digit} out of range for radix {self.radix}")
            value = value * self.radix + digit
        return value

    def digit(self, v: int, position: int) -> int:
        """Digit ``u_position`` of node ``v`` (position 0 = least significant)."""
        return (v // self.radix**position) % self.radix

    # -------------------------------------------------------------- partitions
    def _min_subdimension(self) -> int:
        """Smallest sub-network dimension ``m`` used by the paper's partition.

        The paper chooses the minimal ``m`` with ``radix**m > δ`` so that each
        class has more than ``δ`` nodes while the number of classes
        ``radix**(n-m)`` still exceeds ``δ``.
        """
        delta = self.diagnosability()
        m = 1
        while self.radix**m <= delta:
            m += 1
        return m

    def max_partition_level(self) -> int:
        m0 = self._min_subdimension()
        # Need at least two classes, i.e. m <= dimension - 1.
        return max(0, self.dimension - 1 - m0)

    def partition_scheme(self, level: int = 0) -> PartitionScheme:
        m = self._min_subdimension() + int(level)
        if m >= self.dimension:
            raise ValueError(
                f"partition level {level} too coarse for dimension {self.dimension}"
            )
        return self._prefix_partition(m)

    def _prefix_partition(self, sub_dimension: int) -> PartitionScheme:
        """Partition obtained by fixing the leading ``n - m`` digits."""
        n, m, radix = self.dimension, sub_dimension, self.radix
        block = radix**m
        num_classes = radix ** (n - m)

        def make_class(prefix: int) -> PartitionClass:
            base = prefix * block

            def contains(v: int, _base: int = base, _block: int = block) -> bool:
                return _base <= v < _base + _block

            return PartitionClass(
                representative=base,
                size=block,
                contains=contains,
                label=f"prefix={prefix}",
            )

        def classes() -> Iterator[PartitionClass]:
            for prefix in range(num_classes):
                yield make_class(prefix)

        return PartitionScheme(
            classes,
            num_classes=num_classes,
            class_size=block,
            description=f"{self.family}: fix leading {n - m} digits (sub-dimension {m})",
        )


class PermutationNetwork(InterconnectionNetwork):
    """Base class for networks whose nodes are arrangements of symbols.

    Nodes are ``k``-arrangements of the symbols ``1..n`` (for the star and
    pancake graphs ``k = n`` and the arrangements are permutations).  Because
    the node count is modest (``n!/(n-k)!``), the adjacency lists are built
    eagerly at construction time; labels are stored in a list and indexed via
    a dictionary.
    """

    def __init__(self, n: int, k: int) -> None:
        if n < 2:
            raise ValueError("n must be >= 2")
        if not 1 <= k <= n:
            raise ValueError("k must satisfy 1 <= k <= n")
        self.n = int(n)
        self.k = int(k)
        self._labels: list[tuple[int, ...]] = list(self._generate_labels())
        self._index: dict[tuple[int, ...], int] = {
            label: i for i, label in enumerate(self._labels)
        }
        self._adjacency: list[tuple[int, ...]] = self._build_adjacency()

    # -------------------------------------------------------- label generation
    def _generate_labels(self) -> Iterator[tuple[int, ...]]:
        from itertools import permutations

        yield from permutations(range(1, self.n + 1), self.k)

    @abstractmethod
    def _label_neighbors(self, label: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
        """Neighbouring labels of ``label`` according to the family's edges."""

    def _build_adjacency(self) -> list[tuple[int, ...]]:
        adjacency = []
        for label in self._labels:
            adjacency.append(
                tuple(sorted(self._index[other] for other in self._label_neighbors(label)))
            )
        return adjacency

    # ------------------------------------------------------------------ graph
    @property
    def num_nodes(self) -> int:
        return len(self._labels)

    def neighbors(self, v: int) -> Sequence[int]:
        return self._adjacency[v]

    # ------------------------------------------------------- labels / encoding
    def node_label(self, v: int) -> tuple[int, ...]:
        return self._labels[v]

    def node_index(self, label) -> int:
        return self._index[tuple(label)]

    # -------------------------------------------------------------- partitions
    def partition_scheme(self, level: int = 0) -> PartitionScheme:
        """Partition by the symbol occupying the final position.

        Fixing the last position of the arrangement at each of the ``n``
        possible symbols splits the network into ``n`` classes; for the star,
        pancake, (n,k)-star and arrangement graphs each class induces a copy
        of the same family one dimension lower (paper, Theorems 5-7), hence is
        connected and has ``N / n`` nodes, comfortably exceeding the
        diagnosability ``δ ≤ k(n-k) < N/n`` for the admissible parameters.
        Permutation families expose a single level; requesting a coarser one
        raises ``ValueError``.
        """
        if level != 0:
            raise ValueError("permutation networks expose a single partition level")
        n = self.n
        last = self.k - 1
        size = self.num_nodes // n

        labels = self._labels
        index = self._index

        def make_class(symbol: int) -> PartitionClass:
            # Representative: lexicographically smallest arrangement ending in
            # ``symbol``.
            rest = [s for s in range(1, n + 1) if s != symbol]
            representative_label = tuple(rest[: self.k - 1]) + (symbol,)
            representative = index[representative_label]

            def contains(v: int, _symbol: int = symbol) -> bool:
                return labels[v][last] == _symbol

            return PartitionClass(
                representative=representative,
                size=size,
                contains=contains,
                label=f"last-symbol={symbol}",
            )

        def classes() -> Iterator[PartitionClass]:
            for symbol in range(1, n + 1):
                yield make_class(symbol)

        return PartitionScheme(
            classes,
            num_classes=n,
            class_size=size,
            description=f"{self.family}: fix symbol in final position",
        )


class ExplicitNetwork(InterconnectionNetwork):
    """A network defined by explicit adjacency lists.

    Useful for tests, for wrapping :mod:`networkx` graphs, and for the
    exhaustive baseline's tiny hand-built instances.
    """

    family = "explicit"

    def __init__(
        self,
        adjacency: Sequence[Sequence[int]],
        *,
        diagnosability: int | None = None,
        connectivity: int | None = None,
        family: str | None = None,
    ) -> None:
        self._adjacency = [tuple(sorted(set(neigh))) for neigh in adjacency]
        for v, neigh in enumerate(self._adjacency):
            for w in neigh:
                if not 0 <= w < len(self._adjacency):
                    raise ValueError(f"neighbour {w} of node {v} out of range")
                if w == v:
                    raise ValueError(f"self-loop at node {v}")
                if v not in self._adjacency[w]:
                    raise ValueError(f"edge ({v}, {w}) is not symmetric")
        self._diagnosability = diagnosability
        self._connectivity = connectivity
        if family is not None:
            self.family = family

    @classmethod
    def from_networkx(
        cls,
        graph: nx.Graph,
        *,
        diagnosability: int | None = None,
        connectivity: int | None = None,
        family: str | None = None,
    ) -> "ExplicitNetwork":
        """Build an :class:`ExplicitNetwork` from a networkx graph.

        Node labels are relabelled to ``0..N-1`` in sorted order.
        """
        nodes = sorted(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        adjacency = [[index[w] for w in graph.neighbors(node)] for node in nodes]
        return cls(
            adjacency,
            diagnosability=diagnosability,
            connectivity=connectivity,
            family=family,
        )

    @property
    def num_nodes(self) -> int:
        return len(self._adjacency)

    def neighbors(self, v: int) -> Sequence[int]:
        return self._adjacency[v]

    def diagnosability(self) -> int:
        if self._diagnosability is None:
            raise ValueError("diagnosability was not provided for this explicit network")
        return self._diagnosability

    def connectivity(self) -> int:
        if self._connectivity is None:
            return nx.node_connectivity(self.to_networkx())
        return self._connectivity

    def partition_scheme(self, level: int = 0) -> PartitionScheme:
        """Trivial scheme: every node is the representative of a singleton class.

        Explicit networks have no structural decomposition; the generic
        diagnoser falls back to probing individual start nodes, which is
        adequate for the small graphs this class is intended for.
        """
        if level != 0:
            raise ValueError("explicit networks expose a single partition level")

        def make_class(v: int) -> PartitionClass:
            return PartitionClass(
                representative=v,
                size=1,
                contains=lambda u, _v=v: u == _v,
                label=f"node={v}",
            )

        def classes() -> Iterator[PartitionClass]:
            for v in range(self.num_nodes):
                yield make_class(v)

        return PartitionScheme(
            classes,
            num_classes=self.num_nodes,
            class_size=1,
            description="explicit: singleton classes",
        )
