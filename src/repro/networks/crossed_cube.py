"""The n-dimensional crossed cube ``CQ_n`` (Efe [12]).

``CQ_n`` has the same node set as the hypercube (bit-strings of length ``n``)
but "crosses" some of the dimension edges.  It is ``n``-regular, has
connectivity ``n`` (Kulasinghe [16]) and diagnosability ``n`` for ``n ≥ 4``
(Fan [14]; also via Chang et al. [6]).  Fixing the leading bit splits
``CQ_n`` into two copies of ``CQ_{n-1}``, which is the partition property the
paper exploits (Section 5.1).

The adjacency rule used here is the standard non-recursive characterisation:
``u`` and ``v`` (bits written ``u_{n-1} ... u_0``) are adjacent iff there is a
dimension ``l`` such that

1. ``u_{n-1} .. u_{l+1} = v_{n-1} .. v_{l+1}``;
2. ``u_l ≠ v_l``;
3. if ``l`` is odd, ``u_{l-1} = v_{l-1}``;
4. for every pair index ``i`` with ``2i + 1 < l``, the bit pairs
   ``(u_{2i+1} u_{2i})`` and ``(v_{2i+1} v_{2i})`` are *pair-related*, i.e.
   belong to ``{(00,00), (10,10), (01,11), (11,01)}``.

Every node has exactly one ``l``-neighbour for each ``l``, so the graph is
``n``-regular.
"""

from __future__ import annotations

from typing import Sequence

from .base import DimensionalNetwork

__all__ = ["CrossedCube", "pair_related_partner"]


def pair_related_partner(pair: int) -> int:
    """The unique 2-bit value pair-related to ``pair``.

    The pair-relation ``R = {(00,00), (10,10), (01,11), (11,01)}`` relates each
    2-bit string to exactly one partner: strings with low bit 0 to themselves,
    and strings with low bit 1 to the string with low bit 1 and high bit
    complemented.
    """
    if pair & 0b01 == 0:
        return pair
    return pair ^ 0b10


class CrossedCube(DimensionalNetwork):
    """The crossed cube ``CQ_n``."""

    family = "crossed_cube"

    def __init__(self, dimension: int) -> None:
        super().__init__(dimension, radix=2)

    # ------------------------------------------------------------------ graph
    def _dimension_neighbor(self, v: int, l: int) -> int:
        """The unique neighbour of ``v`` across dimension ``l``."""
        n = self.dimension
        result = 0
        # Bits above l are copied.
        high_mask = ~((1 << (l + 1)) - 1) & ((1 << n) - 1)
        result |= v & high_mask
        # Bit l is flipped.
        result |= ((v >> l) & 1 ^ 1) << l
        low_limit = l
        if l % 2 == 1:
            # Bit l-1 is copied when l is odd.
            result |= v & (1 << (l - 1))
            low_limit = l - 1
        # Remaining low bits are grouped into pairs (2i+1, 2i) with 2i+1 < low_limit.
        i = 0
        while 2 * i + 1 < low_limit:
            pair = (v >> (2 * i)) & 0b11
            result |= pair_related_partner(pair) << (2 * i)
            i += 1
        return result

    def neighbors(self, v: int) -> Sequence[int]:
        return [self._dimension_neighbor(v, l) for l in range(self.dimension)]

    def degree(self, v: int) -> int:
        return self.dimension

    @property
    def max_degree(self) -> int:
        return self.dimension

    @property
    def min_degree(self) -> int:
        return self.dimension

    # --------------------------------------------------------------- metadata
    def diagnosability(self) -> int:
        """Diagnosability ``n`` of ``CQ_n`` for ``n ≥ 4`` (Fan [14])."""
        if self.dimension < 4:
            raise ValueError("diagnosability of CQ_n under the MM model requires n >= 4")
        return self.dimension

    def connectivity(self) -> int:
        return self.dimension
