"""Extension topologies beyond the paper's explicit list.

The paper stresses that its technique applies to "numerous interconnection
networks" beyond the fourteen it works through.  As an extension of the
reproduction we add two further classic hypercube variants that satisfy the
algorithm's hypotheses and are frequently studied in the same literature:

* the **locally twisted cube** ``LTQ_n`` (Yang, Evans & Megson): ``n``-regular,
  connectivity ``n``; fixing the leading bit yields two copies of
  ``LTQ_{n-1}``;
* the **Möbius cube** ``MQ_n`` (Cull & Larson), in its 0- and 1- variants:
  ``n``-regular with connectivity ``n``; fixing the leading bit yields the
  0- and 1- Möbius cubes of dimension ``n - 1``.

Both are exercised by the same generic diagnoser without modification, which
is exactly the paper's point.  Their diagnosability ``n`` (for ``n ≥ 4``/``5``)
follows from Chang et al. [6] in the same way as for the listed families; the
structural preconditions are verified computationally by the test suite.
"""

from __future__ import annotations

from typing import Sequence

from .base import DimensionalNetwork

__all__ = ["LocallyTwistedCube", "MobiusCube"]


class LocallyTwistedCube(DimensionalNetwork):
    """The locally twisted cube ``LTQ_n`` (n ≥ 2).

    Node ``x = x_{n-1} ... x_0``; its neighbours are

    * ``x`` with bit 0 flipped, and ``x`` with bit 1 flipped;
    * for each ``2 ≤ i ≤ n-1``: ``x`` with bit ``i`` flipped and bit ``i-1``
      replaced by ``x_{i-1} ⊕ x_0``.
    """

    family = "locally_twisted_cube"

    def __init__(self, dimension: int) -> None:
        if dimension < 2:
            raise ValueError("the locally twisted cube requires n >= 2")
        super().__init__(dimension, radix=2)

    def neighbors(self, v: int) -> Sequence[int]:
        result = [v ^ 0b01, v ^ 0b10]
        x0 = v & 1
        for i in range(2, self.dimension):
            neighbor = v ^ (1 << i)
            if x0:
                neighbor ^= 1 << (i - 1)
            result.append(neighbor)
        return result

    def degree(self, v: int) -> int:
        return self.dimension

    @property
    def max_degree(self) -> int:
        return self.dimension

    @property
    def min_degree(self) -> int:
        return self.dimension

    def diagnosability(self) -> int:
        """Diagnosability ``n`` for ``n ≥ 4`` (via Chang et al. [6])."""
        if self.dimension < 4:
            raise ValueError("diagnosability of LTQ_n under the MM model requires n >= 4")
        return self.dimension

    def connectivity(self) -> int:
        return self.dimension


class MobiusCube(DimensionalNetwork):
    """The Möbius cube ``MQ_n`` (0- or 1- variant).

    Node ``x = x_{n-1} ... x_0``; its ``i``-neighbour (``0 ≤ i ≤ n-1``) is

    * ``x`` with bit ``i`` flipped, if ``x_{i+1} = 0``;
    * ``x`` with bits ``i .. 0`` all flipped, if ``x_{i+1} = 1``;

    where the virtual bit ``x_n`` is 0 for the 0-Möbius cube and 1 for the
    1-Möbius cube.
    """

    family = "mobius_cube"

    def __init__(self, dimension: int, variant: int = 1) -> None:
        if dimension < 2:
            raise ValueError("the Möbius cube requires n >= 2")
        if variant not in (0, 1):
            raise ValueError("variant must be 0 or 1")
        super().__init__(dimension, radix=2)
        self.variant = int(variant)

    def neighbors(self, v: int) -> Sequence[int]:
        n = self.dimension
        result = []
        for i in range(n):
            upper = self.variant if i == n - 1 else (v >> (i + 1)) & 1
            if upper == 0:
                result.append(v ^ (1 << i))
            else:
                result.append(v ^ ((1 << (i + 1)) - 1))
        return result

    def degree(self, v: int) -> int:
        return self.dimension

    @property
    def max_degree(self) -> int:
        return self.dimension

    @property
    def min_degree(self) -> int:
        return self.dimension

    def diagnosability(self) -> int:
        """Diagnosability ``n`` for ``n ≥ 5``, via Chang et al. [6].

        Both variants are ``n``-regular with connectivity ``n`` (verified
        computationally by the test suite for ``n ≤ 7``), so the Chang
        condition yields diagnosability ``n`` once ``2^n ≥ 2n + 3``.
        """
        if self.dimension < 5:
            raise ValueError("diagnosability of MQ_n under the MM model requires n >= 5")
        return self.dimension

    def connectivity(self) -> int:
        return self.dimension
