"""Folded hypercubes ``FQ_n`` and enhanced hypercubes ``Q_{n,k}``.

Both graphs contain the hypercube ``Q_n`` as a spanning subgraph, are
``(n+1)``-regular and have connectivity ``n + 1`` (Al-Amaway & Latifi [3],
Tzeng & Wei [22]); hence by Chang et al. [6] both have diagnosability
``n + 1`` for ``n ≥ 4`` — exactly the facts quoted in the paper
(Section 5.1).  The paper diagnoses them by partitioning the *underlying
hypercube* into sub-cubes ``Q_m``; the prefix partition inherited from
:class:`~repro.networks.base.DimensionalNetwork` realises that decomposition
(every partition class still induces a connected subgraph because it contains
the sub-hypercube as a spanning subgraph).
"""

from __future__ import annotations

from typing import Sequence

from .base import DimensionalNetwork

__all__ = ["FoldedHypercube", "EnhancedHypercube"]


class EnhancedHypercube(DimensionalNetwork):
    """The enhanced hypercube ``Q_{n,k}`` (Tzeng & Wei [22]).

    ``Q_{n,k}`` augments the hypercube ``Q_n`` with *complement edges*: node
    ``u`` is additionally adjacent to the node obtained by complementing its
    ``k`` lowest-order bits (``2 ≤ k ≤ n``).  ``Q_{n,n}`` is the folded
    hypercube.
    """

    family = "enhanced_hypercube"

    def __init__(self, dimension: int, k: int | None = None) -> None:
        super().__init__(dimension, radix=2)
        if k is None:
            k = dimension
        if not 2 <= k <= dimension:
            raise ValueError("enhanced hypercube requires 2 <= k <= n")
        self.k = int(k)
        self._complement_mask = (1 << self.k) - 1

    # ------------------------------------------------------------------ graph
    def neighbors(self, v: int) -> Sequence[int]:
        result = [v ^ (1 << i) for i in range(self.dimension)]
        result.append(v ^ self._complement_mask)
        return result

    def degree(self, v: int) -> int:
        return self.dimension + 1

    @property
    def max_degree(self) -> int:
        return self.dimension + 1

    @property
    def min_degree(self) -> int:
        return self.dimension + 1

    # --------------------------------------------------------------- metadata
    def diagnosability(self) -> int:
        """Diagnosability ``n + 1`` for ``n ≥ 4`` (paper Section 5.1, via [6])."""
        if self.dimension < 4:
            raise ValueError("diagnosability of Q_{n,k} under the MM model requires n >= 4")
        return self.dimension + 1

    def connectivity(self) -> int:
        return self.dimension + 1


class FoldedHypercube(EnhancedHypercube):
    """The folded hypercube ``FQ_n``: ``Q_n`` plus all complement edges ``u ~ ū``."""

    family = "folded_hypercube"

    def __init__(self, dimension: int) -> None:
        super().__init__(dimension, k=dimension)
