"""The n-dimensional hypercube ``Q_n`` and helpers shared by its variants.

The hypercube is the reference topology of the paper: Theorem 2 shows the
general algorithm diagnoses at most ``n`` faults in ``Q_n`` in ``O(n·2^n)``
time.  Nodes are the ``2^n`` bit-strings of length ``n``; two nodes are
adjacent iff they differ in exactly one bit.  Nodes are encoded as the integer
value of the bit-string (most significant bit = the paper's "first
component").
"""

from __future__ import annotations

from typing import Sequence

from .base import DimensionalNetwork

__all__ = ["Hypercube", "gray_code_cycle"]


def gray_code_cycle(dimension: int) -> list[int]:
    """Return a Hamiltonian cycle of ``Q_dimension`` as a list of node codes.

    The binary reflected Gray code visits every bit-string of length
    ``dimension`` exactly once with consecutive strings differing in one bit,
    and the last string differs from the first in one bit, hence the list is a
    Hamiltonian cycle of the hypercube (for ``dimension >= 2``).  This is the
    "cyclic Gray code" construction whose cost the paper notes Yang's
    algorithm silently relies on (Section 3).
    """
    if dimension < 1:
        raise ValueError("dimension must be >= 1")
    return [i ^ (i >> 1) for i in range(1 << dimension)]


class Hypercube(DimensionalNetwork):
    """The binary n-cube ``Q_n``.

    Parameters
    ----------
    dimension:
        Number of bits ``n``; the network has ``2^n`` nodes and is
        ``n``-regular.
    """

    family = "hypercube"

    def __init__(self, dimension: int) -> None:
        super().__init__(dimension, radix=2)

    # ------------------------------------------------------------------ graph
    def neighbors(self, v: int) -> Sequence[int]:
        return [v ^ (1 << i) for i in range(self.dimension)]

    def degree(self, v: int) -> int:
        return self.dimension

    @property
    def max_degree(self) -> int:
        return self.dimension

    @property
    def min_degree(self) -> int:
        return self.dimension

    # --------------------------------------------------------------- metadata
    def diagnosability(self) -> int:
        """Diagnosability ``n`` of ``Q_n`` for ``n >= 5`` (Wang [23]).

        The paper applies its algorithm for ``n >= 7``; the diagnosability
        value itself holds from ``n >= 5``.  Smaller cubes raise
        ``ValueError`` because the literature value does not apply.
        """
        if self.dimension < 5:
            raise ValueError("diagnosability of Q_n under the MM model requires n >= 5")
        return self.dimension

    def connectivity(self) -> int:
        return self.dimension

    # ---------------------------------------------------------------- helpers
    def subcube_nodes(self, prefix: Sequence[int], sub_dimension: int) -> list[int]:
        """Nodes of the sub-hypercube ``Q_m(prefix)`` (paper Section 5.1).

        ``prefix`` fixes the leading ``n - m`` bits; the returned nodes are
        the ``2^m`` nodes agreeing with the prefix.
        """
        n, m = self.dimension, sub_dimension
        if len(prefix) != n - m:
            raise ValueError(f"prefix must fix {n - m} bits")
        base = 0
        for bit in prefix:
            base = (base << 1) | (int(bit) & 1)
        base <<= m
        return [base | suffix for suffix in range(1 << m)]

    def hamming_distance(self, u: int, v: int) -> int:
        """Number of bit positions in which ``u`` and ``v`` differ."""
        return (u ^ v).bit_count()
