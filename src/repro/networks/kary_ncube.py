"""The k-ary n-cube ``Q^k_n`` and the augmented k-ary n-cube ``AQ_{n,k}``.

``Q^k_n`` (Bose et al. [5]) has node set ``{0, .., k-1}^n``; two nodes are
adjacent iff they differ in exactly one coordinate and in that coordinate they
differ by ``±1 (mod k)``.  For ``k ≥ 3`` it is ``2n``-regular with
connectivity ``2n``; by Chang et al. [6] its diagnosability is ``2n`` except
for the handful of small cases the paper excludes (Theorem 4).

``AQ_{n,k}`` (Xiang & Stewart [25]) augments ``Q^k_n`` with the analogue of
the augmented cube's complement edges: node ``u`` is additionally adjacent to
``u ± (e_i + e_{i-1} + ... + e_1) (mod k)`` for every ``i = 2 .. n`` (i.e. the
lowest ``i`` coordinates are all incremented, or all decremented, by one).  It
is ``(4n - 2)``-regular with connectivity ``4n - 2`` and diagnosability
``4n - 2`` whenever ``(n, k) ≠ (2, 3)`` (paper Section 5.2).

Both graphs decompose into ``k^{n-m}`` copies of the same family with ``m``
dimensions by fixing the leading ``n - m`` digits, so the prefix partition of
:class:`~repro.networks.base.DimensionalNetwork` applies directly.
"""

from __future__ import annotations

from typing import Sequence

from .base import DimensionalNetwork

__all__ = ["KAryNCube", "AugmentedKAryNCube"]

#: (k, n) pairs for which Theorem 4 does not assert diagnosability 2n.
EXCLUDED_KARY_CASES = {(3, 2), (3, 3), (3, 4), (4, 2), (4, 3), (5, 2)}


class KAryNCube(DimensionalNetwork):
    """The k-ary n-cube ``Q^k_n`` (``k ≥ 3``)."""

    family = "kary_ncube"

    def __init__(self, n: int, k: int) -> None:
        if k < 3:
            raise ValueError("the k-ary n-cube requires k >= 3 (use Hypercube for k = 2)")
        if n < 1:
            raise ValueError("the k-ary n-cube requires n >= 1")
        super().__init__(dimension=n, radix=k)
        self.n = int(n)
        self.k = int(k)

    # ------------------------------------------------------------------ graph
    def neighbors(self, v: int) -> Sequence[int]:
        k = self.radix
        result: list[int] = []
        power = 1
        for _ in range(self.dimension):
            digit = (v // power) % k
            base = v - digit * power
            result.append(base + ((digit + 1) % k) * power)
            if k > 2:
                result.append(base + ((digit - 1) % k) * power)
            power *= k
        return result

    def degree(self, v: int) -> int:
        return 2 * self.dimension if self.radix > 2 else self.dimension

    @property
    def max_degree(self) -> int:
        return self.degree(0)

    @property
    def min_degree(self) -> int:
        return self.degree(0)

    # --------------------------------------------------------------- metadata
    def diagnosability(self) -> int:
        """Diagnosability ``2n`` of ``Q^k_n`` (Theorem 4's precondition)."""
        if self.n < 2:
            raise ValueError("diagnosability of Q^k_n under the MM model requires n >= 2")
        if (self.k, self.n) in EXCLUDED_KARY_CASES:
            raise ValueError(
                f"(k, n) = ({self.k}, {self.n}) is excluded by Theorem 4 of the paper"
            )
        return 2 * self.n

    def connectivity(self) -> int:
        return 2 * self.n


class AugmentedKAryNCube(DimensionalNetwork):
    """The augmented k-ary n-cube ``AQ_{n,k}`` (``n ≥ 2``, ``k ≥ 3``)."""

    family = "augmented_kary_ncube"

    def __init__(self, n: int, k: int) -> None:
        if k < 3:
            raise ValueError("the augmented k-ary n-cube requires k >= 3")
        if n < 2:
            raise ValueError("the augmented k-ary n-cube requires n >= 2")
        super().__init__(dimension=n, radix=k)
        self.n = int(n)
        self.k = int(k)

    # ------------------------------------------------------------------ graph
    def _shift_lowest(self, v: int, count: int, delta: int) -> int:
        """Add ``delta`` (mod k) to the ``count`` lowest-order digits of ``v``."""
        k = self.radix
        power = 1
        result = v
        for _ in range(count):
            digit = (result // power) % k
            result += (((digit + delta) % k) - digit) * power
            power *= k
        return result

    def neighbors(self, v: int) -> Sequence[int]:
        result: list[int] = []
        # k-ary n-cube edges: one digit changes by ±1.
        k = self.radix
        power = 1
        for _ in range(self.dimension):
            digit = (v // power) % k
            base = v - digit * power
            result.append(base + ((digit + 1) % k) * power)
            result.append(base + ((digit - 1) % k) * power)
            power *= k
        # Augmented edges: the i lowest digits all change by ±1, i = 2 .. n.
        for i in range(2, self.dimension + 1):
            result.append(self._shift_lowest(v, i, +1))
            result.append(self._shift_lowest(v, i, -1))
        return result

    def degree(self, v: int) -> int:
        return 4 * self.dimension - 2

    @property
    def max_degree(self) -> int:
        return 4 * self.dimension - 2

    @property
    def min_degree(self) -> int:
        return 4 * self.dimension - 2

    # --------------------------------------------------------------- metadata
    def diagnosability(self) -> int:
        """Diagnosability ``4n - 2`` of ``AQ_{n,k}`` for ``(n, k) ≠ (2, 3)`` (paper §5.2)."""
        if (self.n, self.k) == (2, 3):
            raise ValueError("(n, k) = (2, 3) is excluded by the paper")
        return 4 * self.n - 2

    def connectivity(self) -> int:
        return 4 * self.n - 2
