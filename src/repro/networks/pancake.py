"""The n-dimensional pancake graph ``P_n`` (Akers & Krishnamurthy [2]).

Nodes are the permutations of ``{1, .., n}``; two permutations are adjacent
iff one is obtained from the other by reversing a prefix of length
``2 ≤ l ≤ n`` ("flipping the top l pancakes").  ``P_n`` is ``(n-1)``-regular
with connectivity ``n - 1`` and, for ``n ≥ 4``, diagnosability ``n - 1``
(paper Theorem 6).  Fixing the symbol in the final position partitions ``P_n``
into ``n`` copies of ``P_{n-1}``.
"""

from __future__ import annotations

from typing import Iterator

from .base import PermutationNetwork

__all__ = ["PancakeGraph"]


class PancakeGraph(PermutationNetwork):
    """The pancake graph ``P_n``."""

    family = "pancake"

    def __init__(self, n: int) -> None:
        super().__init__(n, n)

    # ------------------------------------------------------------------ edges
    def _label_neighbors(self, label: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
        for length in range(2, self.n + 1):
            yield tuple(reversed(label[:length])) + label[length:]

    # --------------------------------------------------------------- metadata
    def degree(self, v: int) -> int:
        return self.n - 1

    @property
    def max_degree(self) -> int:
        return self.n - 1

    @property
    def min_degree(self) -> int:
        return self.n - 1

    def diagnosability(self) -> int:
        """Diagnosability ``n - 1`` of ``P_n`` for ``n ≥ 4`` (paper Theorem 6)."""
        if self.n < 4:
            raise ValueError("diagnosability of P_n under the MM model requires n >= 4")
        return self.n - 1

    def connectivity(self) -> int:
        return self.n - 1
