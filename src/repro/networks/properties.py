"""Structural property checks for interconnection networks.

These utilities verify, on concrete instances, the structural hypotheses the
paper's Theorem 1 and its Section 5 applications rely on: regularity of the
stated degree, vertex connectivity at least the diagnosability, and partition
schemes whose classes are pairwise disjoint, connected, and cover the node
set.  They back both the test suite and experiment E7.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from .base import InterconnectionNetwork, PartitionScheme

__all__ = [
    "PropertyReport",
    "is_regular",
    "vertex_connectivity",
    "check_partition",
    "verify_theorem1_preconditions",
]


@dataclass
class PropertyReport:
    """Outcome of :func:`verify_theorem1_preconditions`."""

    family: str
    num_nodes: int
    degree: int
    regular: bool
    diagnosability: int
    connectivity_claimed: int
    connectivity_measured: int | None
    satisfies_theorem1: bool

    def as_row(self) -> tuple:
        """Row representation used by the experiment E7 report."""
        return (
            self.family,
            self.num_nodes,
            self.degree,
            self.regular,
            self.diagnosability,
            self.connectivity_claimed,
            self.connectivity_measured,
            self.satisfies_theorem1,
        )


def is_regular(network: InterconnectionNetwork) -> bool:
    """Whether every node has the same degree."""
    degrees = {network.degree(v) for v in range(network.num_nodes)}
    return len(degrees) == 1


def vertex_connectivity(network: InterconnectionNetwork) -> int:
    """Exact vertex connectivity, computed via networkx (small instances only)."""
    return nx.node_connectivity(network.to_networkx())


def check_partition(
    network: InterconnectionNetwork, scheme: PartitionScheme, *, max_classes: int | None = None
) -> None:
    """Validate a partition scheme on a concrete network.

    Checks, for the first ``max_classes`` classes (all of them if ``None``):

    * class sizes match the advertised ``class_size``;
    * classes are pairwise disjoint;
    * every class induces a connected subgraph;
    * the representative belongs to its class;

    and, when all classes are examined, that they cover the node set.
    Raises ``AssertionError`` on violation (the function backs the tests).
    """
    graph = network.to_networkx()
    seen: set[int] = set()
    examined = 0
    for cls in scheme:
        members = cls.members(network)
        assert len(members) == cls.size, (
            f"class {cls.label}: advertised size {cls.size}, actual {len(members)}"
        )
        assert cls.contains(cls.representative), (
            f"class {cls.label}: representative {cls.representative} not a member"
        )
        overlap = seen.intersection(members)
        assert not overlap, f"class {cls.label}: overlaps previous classes on {sorted(overlap)[:5]}"
        seen.update(members)
        if len(members) > 1:
            sub = graph.subgraph(members)
            assert nx.is_connected(sub), f"class {cls.label}: induced subgraph disconnected"
        examined += 1
        if max_classes is not None and examined >= max_classes:
            return
    assert examined == scheme.num_classes, (
        f"scheme advertises {scheme.num_classes} classes, produced {examined}"
    )
    assert len(seen) == network.num_nodes, "partition classes do not cover the node set"


def verify_theorem1_preconditions(
    network: InterconnectionNetwork, *, compute_connectivity: bool = True
) -> PropertyReport:
    """Check the hypotheses of Theorem 1 on a concrete instance.

    The theorem requires connectivity ``κ ≥ δ`` (diagnosability).  For small
    instances the connectivity is computed exactly; for larger ones the
    theoretical value is trusted and ``connectivity_measured`` is ``None``.
    """
    delta = network.diagnosability()
    kappa_claimed = network.connectivity()
    kappa_measured = vertex_connectivity(network) if compute_connectivity else None
    kappa = kappa_measured if kappa_measured is not None else kappa_claimed
    degree = network.degree(0)
    return PropertyReport(
        family=network.family,
        num_nodes=network.num_nodes,
        degree=degree,
        regular=is_regular(network),
        diagnosability=delta,
        connectivity_claimed=kappa_claimed,
        connectivity_measured=kappa_measured,
        satisfies_theorem1=kappa >= delta,
    )
