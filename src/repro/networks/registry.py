"""Registry of the interconnection-network families covered by the paper.

The registry maps the machine-readable family name to a constructor taking
keyword parameters; it is used by the CLI, the examples and the benchmark
harness to instantiate networks uniformly, and by the survey utilities to walk
the whole zoo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..backend.csr import CSRAdjacency, compile_network
from ..service.cache import CacheStats, LRUCache
from .arrangement import ArrangementGraph
from .augmented_cube import AugmentedCube
from .base import InterconnectionNetwork
from .crossed_cube import CrossedCube
from .extensions import LocallyTwistedCube, MobiusCube
from .folded_hypercube import EnhancedHypercube, FoldedHypercube
from .hypercube import Hypercube
from .kary_ncube import AugmentedKAryNCube, KAryNCube
from .pancake import PancakeGraph
from .shuffle_cube import ShuffleCube
from .star_graph import NKStarGraph, StarGraph
from .twisted_cube import TwistedCube
from .twisted_n_cube import TwistedNCube

__all__ = [
    "FamilySpec",
    "FAMILIES",
    "PAPER_FAMILIES",
    "EXTENSION_FAMILIES",
    "create_network",
    "cached_network",
    "compiled_network",
    "clear_network_cache",
    "cache_stats",
    "set_network_cache_capacity",
    "available_families",
    "default_instances",
]

#: The fourteen families the paper works through explicitly (Section 5).
PAPER_FAMILIES: tuple[str, ...] = (
    "hypercube",
    "crossed_cube",
    "twisted_cube",
    "folded_hypercube",
    "enhanced_hypercube",
    "augmented_cube",
    "shuffle_cube",
    "twisted_n_cube",
    "kary_ncube",
    "augmented_kary_ncube",
    "nk_star",
    "star",
    "pancake",
    "arrangement",
)

#: Families added by this reproduction to exercise the paper's "numerous
#: further networks" claim.
EXTENSION_FAMILIES: tuple[str, ...] = ("locally_twisted_cube", "mobius_cube")


@dataclass(frozen=True)
class FamilySpec:
    """Metadata describing one network family of the paper's Section 5."""

    name: str
    constructor: Callable[..., InterconnectionNetwork]
    description: str
    paper_theorem: str
    #: keyword arguments for a small instance used in documentation/tests
    small: dict = field(default_factory=dict)
    #: keyword arguments for a benchmark-sized instance
    medium: dict = field(default_factory=dict)


FAMILIES: dict[str, FamilySpec] = {
    spec.name: spec
    for spec in [
        FamilySpec(
            "hypercube",
            Hypercube,
            "binary n-cube Q_n",
            "Theorem 2",
            small={"dimension": 7},
            medium={"dimension": 10},
        ),
        FamilySpec(
            "crossed_cube",
            CrossedCube,
            "crossed cube CQ_n",
            "Theorem 3",
            small={"dimension": 7},
            medium={"dimension": 10},
        ),
        FamilySpec(
            "twisted_cube",
            TwistedCube,
            "twisted cube TQ_n (odd n)",
            "Theorem 3",
            small={"dimension": 7},
            medium={"dimension": 9},
        ),
        FamilySpec(
            "folded_hypercube",
            FoldedHypercube,
            "folded hypercube FQ_n",
            "Theorem 3",
            small={"dimension": 7},
            medium={"dimension": 10},
        ),
        FamilySpec(
            "enhanced_hypercube",
            EnhancedHypercube,
            "enhanced hypercube Q_{n,k}",
            "Theorem 3",
            small={"dimension": 7, "k": 4},
            medium={"dimension": 10, "k": 6},
        ),
        FamilySpec(
            "augmented_cube",
            AugmentedCube,
            "augmented cube AQ_n",
            "Theorem 3",
            small={"dimension": 6},
            medium={"dimension": 9},
        ),
        FamilySpec(
            "shuffle_cube",
            ShuffleCube,
            "shuffle-cube SQ_n (n = 4k + 2)",
            "Theorem 3",
            small={"dimension": 6},
            medium={"dimension": 10},
        ),
        FamilySpec(
            "twisted_n_cube",
            TwistedNCube,
            "twisted N-cube TQ'_n",
            "Theorem 3",
            small={"dimension": 7},
            medium={"dimension": 10},
        ),
        FamilySpec(
            "kary_ncube",
            KAryNCube,
            "k-ary n-cube Q^k_n",
            "Theorem 4",
            small={"n": 3, "k": 5},
            medium={"n": 3, "k": 8},
        ),
        FamilySpec(
            "augmented_kary_ncube",
            AugmentedKAryNCube,
            "augmented k-ary n-cube AQ_{n,k}",
            "Theorem 4 (corollary)",
            small={"n": 3, "k": 4},
            medium={"n": 3, "k": 8},
        ),
        FamilySpec(
            "nk_star",
            NKStarGraph,
            "(n,k)-star graph S_{n,k}",
            "Theorem 5",
            small={"n": 5, "k": 3},
            medium={"n": 7, "k": 4},
        ),
        FamilySpec(
            "star",
            StarGraph,
            "star graph S_n",
            "Theorem 5",
            small={"n": 5},
            medium={"n": 7},
        ),
        FamilySpec(
            "pancake",
            PancakeGraph,
            "pancake graph P_n",
            "Theorem 6",
            small={"n": 5},
            medium={"n": 7},
        ),
        FamilySpec(
            "arrangement",
            ArrangementGraph,
            "arrangement graph A_{n,k}",
            "Theorem 7",
            small={"n": 6, "k": 3},
            medium={"n": 7, "k": 3},
        ),
        FamilySpec(
            "locally_twisted_cube",
            LocallyTwistedCube,
            "locally twisted cube LTQ_n",
            "extension (Section 5 style)",
            small={"dimension": 7},
            medium={"dimension": 10},
        ),
        FamilySpec(
            "mobius_cube",
            MobiusCube,
            "Möbius cube MQ_n",
            "extension (Section 5 style)",
            small={"dimension": 7},
            medium={"dimension": 10},
        ),
    ]
}


def available_families() -> list[str]:
    """Names of all registered network families."""
    return sorted(FAMILIES)


def create_network(family: str, **params) -> InterconnectionNetwork:
    """Instantiate a network family by name.

    Parameters
    ----------
    family:
        One of :func:`available_families`.
    **params:
        Constructor parameters (e.g. ``dimension=10`` for the hypercube).
    """
    try:
        spec = FAMILIES[family]
    except KeyError as exc:
        raise ValueError(
            f"unknown network family {family!r}; available: {', '.join(available_families())}"
        ) from exc
    return spec.constructor(**params)


#: Default bound of the instance memo.  Wide enough that no sweep, test run
#: or survey in this repository ever evicts (the registry only has 16
#: families and a handful of sizes each), small enough that a long-running
#: server touring many parametrisations stays bounded.
DEFAULT_NETWORK_CACHE_CAPACITY = 64

#: Memoized instances keyed by ``(family, sorted params)``, bounded LRU.
#: Sharing the instance shares its compiled CSR adjacency (cached on the
#: instance by :func:`repro.backend.csr.compile_network`), so a sweep of many
#: trials over the same topology compiles it exactly once; eviction drops the
#: instance *and* its compiled arrays, which is the point — an unbounded memo
#: in a service process is a slow memory leak.
_network_cache: LRUCache[tuple[str, tuple[tuple[str, int], ...]], InterconnectionNetwork] = (
    LRUCache(DEFAULT_NETWORK_CACHE_CAPACITY)
)


def cached_network(family: str, **params) -> InterconnectionNetwork:
    """Like :func:`create_network`, but memoized per ``(family, params)``.

    All callers that ask for the same instance share one object — and with it
    one compiled flat-array topology.  Network instances are immutable after
    construction, so sharing is safe.  The memo is a bounded LRU (see
    :func:`set_network_cache_capacity` and :func:`cache_stats`).
    """
    key = (family, tuple(sorted(params.items())))
    return _network_cache.get_or_create(
        key, lambda: create_network(family, **params)
    )


def compiled_network(family: str, **params) -> tuple[InterconnectionNetwork, CSRAdjacency]:
    """A memoized instance together with its compiled CSR adjacency."""
    network = cached_network(family, **params)
    return network, compile_network(network)


def clear_network_cache() -> None:
    """Drop all memoized instances (tests; bounding long-lived processes)."""
    _network_cache.clear()


def cache_stats() -> CacheStats:
    """Hit/miss/eviction counters of the instance memo."""
    return _network_cache.stats()


def set_network_cache_capacity(capacity: int) -> None:
    """Re-bound the instance memo (shrinking evicts least-recent now)."""
    _network_cache.resize(capacity)


def default_instances(size: str = "small") -> dict[str, InterconnectionNetwork]:
    """Instantiate one representative of every family.

    ``size`` is ``"small"`` (test-sized) or ``"medium"`` (benchmark-sized).
    """
    if size not in ("small", "medium"):
        raise ValueError("size must be 'small' or 'medium'")
    instances = {}
    for name, spec in FAMILIES.items():
        params = spec.small if size == "small" else spec.medium
        instances[name] = spec.constructor(**params)
    return instances
