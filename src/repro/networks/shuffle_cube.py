"""The shuffle-cube ``SQ_n`` (Li, Tan, Hsu & Sung [17]), ``n ≡ 2 (mod 4)``.

``SQ_n`` has the hypercube's node set.  ``SQ_2 = Q_2`` and, for ``n ≥ 6``,
``SQ_n`` consists of sixteen copies of ``SQ_{n-4}`` selected by the four
leading bits.  Each node has exactly four cross edges; which copies they reach
depends on the node's two lowest-order bits (its *class* ``u_1 u_0``): node
``u`` with leading nibble ``p`` is joined to the nodes with the same suffix
and leading nibble ``p ⊕ d`` for the four offsets ``d`` in the class's offset
set ``V_{u_1 u_0}``.

The defining reference [17] is not part of the reproduced paper's text, so the
four offset sets used here are a documented reconstruction (DESIGN.md §4.4):

* ``V_00 = {0001, 0010, 0100, 1000}``
* ``V_01 = {0011, 0110, 1100, 1001}``
* ``V_10 = {0101, 1010, 1101, 1011}``
* ``V_11 = {1111, 0111, 1110, 0110}``

Each set has four non-zero offsets, which makes ``SQ_n`` ``n``-regular and
partitionable into sixteen copies of ``SQ_{n-4}`` — the two structural
properties the paper's argument uses.  The remaining precondition of
Theorem 1, connectivity ``≥`` diagnosability, is checked computationally by
the test suite for ``SQ_6``.
"""

from __future__ import annotations

from typing import Sequence

from .base import DimensionalNetwork, PartitionScheme

__all__ = ["ShuffleCube"]

#: Offset sets V_c indexed by the node class c = (u_1 u_0).
OFFSET_SETS: tuple[tuple[int, ...], ...] = (
    (0b0001, 0b0010, 0b0100, 0b1000),  # class 00
    (0b0011, 0b0110, 0b1100, 0b1001),  # class 01
    (0b0101, 0b1010, 0b1101, 0b1011),  # class 10
    (0b1111, 0b0111, 0b1110, 0b0110),  # class 11
)


class ShuffleCube(DimensionalNetwork):
    """The shuffle-cube ``SQ_n`` with ``n = 4k + 2``."""

    family = "shuffle_cube"

    def __init__(self, dimension: int) -> None:
        if dimension % 4 != 2:
            raise ValueError("the shuffle-cube SQ_n is defined for n ≡ 2 (mod 4)")
        super().__init__(dimension, radix=2)

    # ------------------------------------------------------------------ graph
    def neighbors(self, v: int) -> Sequence[int]:
        result: list[int] = []
        cls = v & 0b11
        d = self.dimension
        # Peel the recursion: the four leading bits of the current sub-cube
        # occupy positions d-1 .. d-4.
        while d >= 6:
            shift = d - 4
            for offset in OFFSET_SETS[cls]:
                result.append(v ^ (offset << shift))
            d -= 4
        # Base case SQ_2 = Q_2 on the two lowest-order bits.
        result.append(v ^ 0b01)
        result.append(v ^ 0b10)
        return result

    def degree(self, v: int) -> int:
        return self.dimension

    @property
    def max_degree(self) -> int:
        return self.dimension

    @property
    def min_degree(self) -> int:
        return self.dimension

    # --------------------------------------------------------------- metadata
    def diagnosability(self) -> int:
        """Diagnosability ``n`` of ``SQ_n`` for ``n ≥ 4`` (paper, via [6])."""
        if self.dimension < 6:
            raise ValueError("diagnosability of SQ_n under the MM model requires n >= 6")
        return self.dimension

    def connectivity(self) -> int:
        return self.dimension

    # -------------------------------------------------------------- partitions
    def _min_subdimension(self) -> int:
        """Smallest admissible sub-dimension ``m ≡ 2 (mod 4)`` with ``2^m > δ``.

        For ``SQ_6`` no such ``m < n`` exists with ``2^m > 6`` (the only
        candidate is ``m = 2``); the diagnosis driver copes by falling back to
        unrestricted probing (DESIGN.md §4.5), so here we simply return the
        largest admissible sub-dimension below the required size.
        """
        delta = self.diagnosability()
        best = 2
        m = 2
        while m < self.dimension:
            best = m
            if 2**m > delta:
                break
            m += 4
        return best

    def max_partition_level(self) -> int:
        m0 = self._min_subdimension()
        return max(0, (self.dimension - 4 - m0) // 4)

    def partition_scheme(self, level: int = 0) -> PartitionScheme:
        m = self._min_subdimension() + 4 * int(level)
        if m >= self.dimension:
            raise ValueError(
                f"partition level {level} too coarse for dimension {self.dimension}"
            )
        return self._prefix_partition(m)
