"""The star graph ``S_n`` and the (n,k)-star graph ``S_{n,k}``.

* ``S_n`` (Akers, Harel & Krishnamurthy [1]): nodes are the permutations of
  ``{1, .., n}``; two permutations are adjacent iff one is obtained from the
  other by swapping the first symbol with the symbol in some position
  ``i ≥ 2``.  ``S_n`` is ``(n-1)``-regular with connectivity ``n - 1`` and
  diagnosability ``n - 1`` for ``n ≥ 4`` (Zheng et al. [28]).
* ``S_{n,k}`` (Chiang & Chen [9]): nodes are the ``k``-arrangements of
  ``{1, .., n}``; node ``u`` is adjacent to the arrangements obtained by
  (a) swapping the first symbol with the symbol in position ``i``
  (``2 ≤ i ≤ k``, the *i-edges*) and (b) replacing the first symbol by any of
  the ``n - k`` symbols not appearing in ``u`` (the *1-edges*).  ``S_{n,k}``
  is ``(n-1)``-regular with connectivity ``n - 1`` and diagnosability
  ``n - 1`` (paper Theorem 5).  ``S_{n,n-1}`` is isomorphic to ``S_n`` and
  ``S_{n,1}`` is the complete graph ``K_n``.

Fixing the symbol in the final position partitions either graph into ``n``
copies of the same family one dimension lower (the partition the paper's
Theorem 5 uses); this is provided by
:class:`~repro.networks.base.PermutationNetwork`.
"""

from __future__ import annotations

from typing import Iterator

from .base import PermutationNetwork

__all__ = ["StarGraph", "NKStarGraph"]


class NKStarGraph(PermutationNetwork):
    """The (n,k)-star graph ``S_{n,k}``."""

    family = "nk_star"

    def __init__(self, n: int, k: int) -> None:
        if not 1 <= k <= n - 1:
            raise ValueError("the (n,k)-star graph requires 1 <= k <= n - 1")
        super().__init__(n, k)

    # ------------------------------------------------------------------ edges
    def _label_neighbors(self, label: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
        # i-edges: swap position 0 with position i.
        for i in range(1, self.k):
            swapped = list(label)
            swapped[0], swapped[i] = swapped[i], swapped[0]
            yield tuple(swapped)
        # 1-edges: replace the first symbol with an unused symbol.
        used = set(label)
        for symbol in range(1, self.n + 1):
            if symbol not in used:
                yield (symbol,) + label[1:]

    # --------------------------------------------------------------- metadata
    def degree(self, v: int) -> int:
        return self.n - 1

    @property
    def max_degree(self) -> int:
        return self.n - 1

    @property
    def min_degree(self) -> int:
        return self.n - 1

    def diagnosability(self) -> int:
        """Diagnosability ``n - 1`` of ``S_{n,k}`` (paper Theorem 5)."""
        if (self.n, self.k) == (3, 2) or self.n < 4:
            raise ValueError(
                "diagnosability of S_{n,k} under the MM model requires n >= 4 "
                "(and (n, k) != (3, 2))"
            )
        return self.n - 1

    def connectivity(self) -> int:
        return self.n - 1


class StarGraph(PermutationNetwork):
    """The star graph ``S_n`` on the permutations of ``{1, .., n}``."""

    family = "star"

    def __init__(self, n: int) -> None:
        super().__init__(n, n)

    # ------------------------------------------------------------------ edges
    def _label_neighbors(self, label: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
        for i in range(1, self.n):
            swapped = list(label)
            swapped[0], swapped[i] = swapped[i], swapped[0]
            yield tuple(swapped)

    # --------------------------------------------------------------- metadata
    def degree(self, v: int) -> int:
        return self.n - 1

    @property
    def max_degree(self) -> int:
        return self.n - 1

    @property
    def min_degree(self) -> int:
        return self.n - 1

    def diagnosability(self) -> int:
        """Diagnosability ``n - 1`` of ``S_n`` for ``n ≥ 4`` (Zheng et al. [28])."""
        if self.n < 4:
            raise ValueError("diagnosability of S_n under the MM model requires n >= 4")
        return self.n - 1

    def connectivity(self) -> int:
        return self.n - 1
