"""The n-dimensional twisted cube ``TQ_n`` (Hilbers, Koopman & van de Snepscheut [15]).

``TQ_n`` is defined for odd ``n``.  We use the standard recursive construction:
``TQ_1 = K_2`` and, for odd ``n ≥ 3``, ``TQ_n`` consists of four copies of
``TQ_{n-2}`` selected by the two leading bits ``u_{n-1} u_{n-2}``.  A node
``u = u_{n-1} u_{n-2} w`` is joined to two nodes in other copies, chosen by the
parity ``P(w) = w_{n-3} ⊕ ... ⊕ w_0`` of its inner part:

* if ``P(w) = 0``: to ``(ū_{n-1}) (ū_{n-2}) w`` and ``(ū_{n-1}) (u_{n-2}) w``;
* if ``P(w) = 1``: to ``(ū_{n-1}) (ū_{n-2}) w`` and ``(u_{n-1}) (ū_{n-2}) w``.

This yields an ``n``-regular graph with connectivity ``n`` (Chang, Wang & Hsu
[7]) and diagnosability ``n`` for (odd) ``n ≥ 5`` (via Chang et al. [6], as
quoted in the paper).  Fixing the leading ``2j`` bits splits ``TQ_n`` into
``4^j`` copies of ``TQ_{n-2j}``, which is the partition used for diagnosis;
consequently the partition levels of this class step the sub-dimension in
increments of two (see :meth:`TwistedCube.partition_scheme`).

The defining reference [15] is not part of the reproduced paper's text; the
construction above is a documented reconstruction (DESIGN.md §4.4) and every
property the diagnosis algorithm relies on — regularity, connectivity ≥
diagnosability, partition into connected copies — is verified by the test
suite.
"""

from __future__ import annotations

from typing import Sequence

from .base import DimensionalNetwork, PartitionScheme

__all__ = ["TwistedCube"]


class TwistedCube(DimensionalNetwork):
    """The twisted cube ``TQ_n`` for odd ``n``."""

    family = "twisted_cube"

    def __init__(self, dimension: int) -> None:
        if dimension % 2 == 0:
            raise ValueError("the twisted cube TQ_n is defined for odd n only")
        super().__init__(dimension, radix=2)

    # ------------------------------------------------------------------ graph
    @staticmethod
    def _parity(bits: int) -> int:
        return bits.bit_count() & 1

    def neighbors(self, v: int) -> Sequence[int]:
        result: list[int] = []
        n = self.dimension
        # Peel the recursion: at stage d (= n, n-2, ..., 3) the two leading
        # bits of the current sub-cube occupy positions d-1 and d-2 and the
        # inner part occupies positions d-3 .. 0.
        d = n
        while d >= 3:
            inner_mask = (1 << (d - 2)) - 1
            inner = v & inner_mask
            top = 1 << (d - 1)
            second = 1 << (d - 2)
            if self._parity(inner) == 0:
                result.append(v ^ top ^ second)
                result.append(v ^ top)
            else:
                result.append(v ^ top ^ second)
                result.append(v ^ second)
            d -= 2
        # Base case TQ_1 on the last remaining bit.
        result.append(v ^ 1)
        return result

    def degree(self, v: int) -> int:
        return self.dimension

    @property
    def max_degree(self) -> int:
        return self.dimension

    @property
    def min_degree(self) -> int:
        return self.dimension

    # --------------------------------------------------------------- metadata
    def diagnosability(self) -> int:
        """Diagnosability ``n`` of ``TQ_n`` for ``n ≥ 4`` (paper, via [6]).

        Because ``TQ_n`` is only defined for odd ``n``, the first admissible
        dimension is ``n = 5``.
        """
        if self.dimension < 5:
            raise ValueError("diagnosability of TQ_n under the MM model requires n >= 5")
        return self.dimension

    def connectivity(self) -> int:
        return self.dimension

    # -------------------------------------------------------------- partitions
    def _min_subdimension(self) -> int:
        """Smallest odd sub-dimension ``m`` with ``2^m > δ``.

        The recursive structure only guarantees that fixing an *even* number
        of leading bits yields copies of a smaller twisted cube, so the
        sub-dimension must keep the parity of ``n`` (odd).
        """
        delta = self.diagnosability()
        m = 1
        while 2**m <= delta:
            m += 1
        if m % 2 == 0:
            m += 1
        return m

    def max_partition_level(self) -> int:
        m0 = self._min_subdimension()
        return max(0, (self.dimension - 2 - m0) // 2)

    def partition_scheme(self, level: int = 0) -> PartitionScheme:
        m = self._min_subdimension() + 2 * int(level)
        if m >= self.dimension:
            raise ValueError(
                f"partition level {level} too coarse for dimension {self.dimension}"
            )
        return self._prefix_partition(m)
