"""The twisted N-cube ``TQ'_n`` (Esfahanian, Ni & Sagan [13]).

The twisted N-cube is obtained from the hypercube by "twisting" one pair of
independent edges of a 4-cycle, which reduces the diameter by one while
preserving ``n``-regularity and connectivity ``n``.  We use the recursive
description quoted by the paper (Section 5.1): fixing the leading bit of
``TQ'_n`` at ``0`` yields a copy of the ordinary hypercube ``Q_{n-1}`` and
fixing it at ``1`` yields a copy of ``TQ'_{n-1}``, the two halves being joined
by the usual perfect matching.  The base case ``TQ'_3`` is ``Q_3`` with the
edges ``{000, 001}`` and ``{100, 101}`` replaced by ``{000, 101}`` and
``{100, 001}``.

The defining reference [13] is not part of the reproduced paper's text; this
construction is a documented reconstruction (DESIGN.md §4.4) that satisfies
exactly the properties the paper's argument uses: ``n``-regularity, the
``Q_{n-1}`` / ``TQ'_{n-1}`` partition, and connectivity ``n`` (verified
computationally by the test suite for small ``n``).
"""

from __future__ import annotations

from typing import Sequence

from .base import DimensionalNetwork

__all__ = ["TwistedNCube"]


class TwistedNCube(DimensionalNetwork):
    """The twisted N-cube ``TQ'_n`` for ``n ≥ 3``."""

    family = "twisted_n_cube"

    def __init__(self, dimension: int) -> None:
        if dimension < 3:
            raise ValueError("the twisted N-cube TQ'_n requires n >= 3")
        super().__init__(dimension, radix=2)

    # ------------------------------------------------------------------ graph
    def neighbors(self, v: int) -> Sequence[int]:
        n = self.dimension
        # The twist lives in the innermost TQ'_3, i.e. in the sub-cube whose
        # leading n-3 bits are all 1 (each recursion level places the twisted
        # copy in the half with leading bit 1).
        twisted_prefix = ((1 << (n - 3)) - 1) << 3 if n > 3 else 0
        in_twisted_core = (v & ~0b111 if n > 3 else 0) == twisted_prefix

        result: list[int] = []
        for i in range(n):
            neighbor = v ^ (1 << i)
            if in_twisted_core and i == 0:
                low = v & 0b111
                if low in (0b000, 0b101, 0b100, 0b001):
                    # Twisted edges: 000 <-> 101 and 100 <-> 001 replace the
                    # hypercube edges 000 <-> 001 and 100 <-> 101.
                    neighbor = v ^ 0b101
            result.append(neighbor)
        return result

    def degree(self, v: int) -> int:
        return self.dimension

    @property
    def max_degree(self) -> int:
        return self.dimension

    @property
    def min_degree(self) -> int:
        return self.dimension

    # --------------------------------------------------------------- metadata
    def diagnosability(self) -> int:
        """Diagnosability ``n`` of ``TQ'_n`` for ``n ≥ 4`` (paper, via [6])."""
        if self.dimension < 4:
            raise ValueError("diagnosability of TQ'_n under the MM model requires n >= 4")
        return self.dimension

    def connectivity(self) -> int:
        return self.dimension
