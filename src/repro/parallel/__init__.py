"""Shared-memory scale-out: shard-aware diagnosis and persistent worker pools.

This package is the intra-machine scale-out layer of the reproduction (the
inter-machine story is :mod:`repro.distributed`): one compiled topology — the
CSR ``indptr``/``indices`` pair plus the flat syndrome buffer — is placed in
:mod:`multiprocessing.shared_memory` once and mapped zero-copy by a
persistent pool of workers, so neither sweeps nor single huge diagnoses ever
recompile a topology per worker.

* :mod:`~repro.parallel.shm` — publish/attach compiled topologies and byte
  buffers with strict single-owner cleanup (no leaked segments, ever);
* :mod:`~repro.parallel.pool` — :class:`WorkerPool`, the persistent process
  pool with worker-side attachment caches and health probes;
* :mod:`~repro.parallel.sharding` — partition-class-aligned contiguous shard
  ranges over the node ids (the paper's partition classes are contiguous
  integer blocks — natural shard keys);
* :mod:`~repro.parallel.sharded` — :class:`ShardedSetBuilder`, frontier
  expansion per shard with a deterministic cross-shard merge that reproduces
  the sequential ``Set_Builder`` exactly (same sets, same lookup counts);
* :mod:`~repro.parallel.seeding` — positional ``SeedSequence`` seed
  derivation keeping parallel sweeps bit-identical to serial ones.
"""

from .pool import WorkerPool, default_worker_count, worker_health
from .seeding import derive_seed, spawn_seeds
from .sharded import ShardedSetBuilder
from .sharding import shard_granularity, shard_ranges, split_frontier
from .shm import (
    BufferHandle,
    OwnedSegment,
    TopologyHandle,
    attach_buffer,
    attach_topology,
    publish_buffer,
    publish_topology,
)

__all__ = [
    "WorkerPool",
    "default_worker_count",
    "worker_health",
    "ShardedSetBuilder",
    "shard_granularity",
    "shard_ranges",
    "split_frontier",
    "spawn_seeds",
    "derive_seed",
    "TopologyHandle",
    "BufferHandle",
    "OwnedSegment",
    "publish_topology",
    "attach_topology",
    "publish_buffer",
    "attach_buffer",
]
