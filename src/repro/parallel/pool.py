"""Persistent worker pool over shared-memory topologies.

:class:`WorkerPool` is the execution substrate of the scale-out layer: a
process pool whose workers map compiled topologies and syndrome buffers
straight out of :mod:`multiprocessing.shared_memory` (see
:mod:`repro.parallel.shm`) instead of receiving pickled arrays — or, as the
pre-pool fan-out did, recompiling the topology once per worker.  The pool is
*persistent*: worker-side caches (attached topologies, attached buffers, the
registry's network memo) survive across tasks, so a sweep of hundreds of
trials pays each attachment exactly once per worker.

The pool owns every segment it publishes and unlinks them all on
:meth:`shutdown` (or, defensively, when the owning objects are garbage
collected — see :class:`~repro.parallel.shm.OwnedSegment`), so a crashed or
abandoned run leaves no segments behind.

Task functions live with their callers (the shard-expansion task in
:mod:`repro.parallel.sharded`, the trial-chunk tasks in
:mod:`repro.experiments.trials`); this module only provides the pool, the
worker-side attachment caches (:func:`worker_topology`,
:func:`worker_buffer`) and :func:`worker_health` — the per-task diagnostics
proving the zero-recompilation claim.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import Callable

import numpy as np

from ..backend.csr import CSRAdjacency, compile_count, compile_network, pair_build_count
from .shm import (
    BufferHandle,
    OwnedSegment,
    TopologyHandle,
    attach_buffer,
    attach_topology,
    detach,
    publish_buffer,
    publish_topology,
)

__all__ = [
    "WorkerPool",
    "adopt_worker_topology",
    "compile_delta_probe",
    "worker_network",
    "worker_topology",
    "worker_buffer",
    "worker_health",
]


def default_worker_count() -> int:
    """Default pool width: the machine's cores, capped at 4."""
    return max(1, min(4, os.cpu_count() or 1))


class WorkerPool:
    """A persistent process pool sharing compiled topologies via shared memory.

    Parameters
    ----------
    max_workers:
        Pool width; defaults to :func:`default_worker_count`.  The executor is
        created lazily on first submit, so constructing a pool is free.

    Usage::

        with WorkerPool(max_workers=4) as pool:
            handle = pool.publish_topology(csr)     # one copy, in shm
            futures = [pool.submit(task, handle, chunk) for chunk in chunks]

    Published segments are tracked and unlinked on shutdown; per-run buffers
    can be released earlier with :meth:`release`.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = (
            default_worker_count() if max_workers is None else max(1, int(max_workers))
        )
        self._executor: ProcessPoolExecutor | None = None
        self._segments: dict[str, OwnedSegment] = {}
        #: topology handles memoized per published CSR (id -> handle); the
        #: CSR object itself is retained so the id cannot be recycled
        self._topologies: dict[int, tuple[CSRAdjacency, TopologyHandle]] = {}

    # ------------------------------------------------------------- lifecycle
    @property
    def executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self, *, wait: bool = True) -> None:
        """Stop the workers and unlink every segment this pool published."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None
        for segment in self._segments.values():
            segment.close()
        self._segments.clear()
        self._topologies.clear()

    # ------------------------------------------------------------ publishing
    def publish_topology(
        self, topology, *, include_pair_members: bool = False
    ) -> TopologyHandle:
        """Place a compiled topology in shared memory (memoized per object).

        Accepts a network or a :class:`CSRAdjacency`; the same object is
        published at most once per pool, so every group of a sweep that runs
        on the same memoized instance shares one segment.  Asking for pair
        members after a plain publication publishes a fresh segment that
        includes them — the plain segment stays alive until shutdown, because
        handles already handed to in-flight tasks must keep resolving — and
        asking without them reuses a pair-carrying segment (a superset).
        """
        csr = compile_network(topology)
        cached = self._topologies.get(id(csr))
        if cached is not None:
            handle = cached[1]
            if not include_pair_members or handle.num_pairs:
                return handle
        handle, segment = publish_topology(
            csr, include_pair_members=include_pair_members
        )
        self._segments[handle.name] = segment
        self._topologies[id(csr)] = (csr, handle)
        return handle

    def release_topology(self, topology) -> None:
        """Unlink a published topology and drop its memo entry.

        For callers that bound their own topology working set (the diagnosis
        service's LRU): the caller must guarantee no in-flight task still
        carries the handle — workers that already attached keep their mapping
        (an unlinked segment lives until the last mapping closes), but a
        *queued* task would fail to attach a name that no longer exists.
        Unknown topologies are ignored.
        """
        csr = compile_network(topology)
        cached = self._topologies.pop(id(csr), None)
        if cached is not None:
            self.release(cached[1])

    def publish_buffer(self, data) -> BufferHandle:
        """Copy a bytes-like object into a tracked shared segment."""
        handle, segment = publish_buffer(data)
        self._segments[handle.name] = segment
        return handle

    def allocate_buffer(self, size: int) -> tuple[BufferHandle, np.ndarray]:
        """A zero-filled tracked segment plus the owner's writable view."""
        from .shm import allocate_buffer

        handle, segment = allocate_buffer(size)
        self._segments[handle.name] = segment
        view = np.frombuffer(segment.buf, dtype=np.uint8, count=size)
        return handle, view

    def release(self, handle: TopologyHandle | BufferHandle) -> None:
        """Unlink one published segment before shutdown (per-run buffers)."""
        segment = self._segments.pop(handle.name, None)
        if segment is not None:
            segment.close()

    # ------------------------------------------------------------- execution
    def submit(self, fn: Callable, /, *args, **kwargs) -> Future:
        """Submit a task to the pool (plain ``concurrent.futures`` future)."""
        return self.executor.submit(fn, *args, **kwargs)

    def health(self) -> list[dict]:
        """One :func:`worker_health` report per worker (best effort).

        Submits ``max_workers`` probes; with a busy pool some workers may
        answer twice and others not at all, so reports are deduplicated by
        pid — the point is visibility (attachment cache sizes, compile
        counts), not an exact census.
        """
        futures = [self.submit(worker_health) for _ in range(self.max_workers)]
        reports = {report["pid"]: report for report in (f.result() for f in futures)}
        return sorted(reports.values(), key=lambda r: r["pid"])


# ----------------------------------------------------------- worker-side state
#: Attached topologies, keyed by segment name.  Bounded LRU-style like the
#: buffer cache below: a long-running service evicts, releases and
#: re-publishes topologies under fresh segment names, and a worker that
#: cached every name it ever attached would keep each superseded mapping
#: alive forever.
_TOPOLOGY_CACHE: "OrderedDict[str, CSRAdjacency]" = OrderedDict()
_TOPOLOGY_CACHE_LIMIT = 8

#: Evicted mappings that could not unmap yet because live views still export
#: their buffer (typically an adopted ``_csr_adjacency`` in the worker's
#: registry memo).  Holding them here keeps ``SharedMemory.__del__`` from
#: racing those views at garbage collection; every later eviction retries,
#: so each mapping is unmapped at the first eviction after its views die.
_TOPOLOGY_RETIRED: list[shared_memory.SharedMemory] = []


def _try_unmap(segment: shared_memory.SharedMemory) -> bool:
    """Close an attached mapping if nothing exports its buffer any more."""
    try:
        segment.close()
    except BufferError:
        return False
    detach(segment)  # already closed: this just drops the registry pin
    return True

#: Attached transient buffers (syndromes, membership masks), keyed by segment
#: name.  Per-run buffers get fresh names, so the cache is bounded FIFO; the
#: mapping object rides along with the view to keep it alive.
_BUFFER_CACHE: "OrderedDict[str, tuple[np.ndarray, shared_memory.SharedMemory]]" = (
    OrderedDict()
)
_BUFFER_CACHE_LIMIT = 8


def worker_topology(handle: TopologyHandle) -> CSRAdjacency:
    """The worker's zero-copy view of a published topology (cached, bounded)."""
    csr = _TOPOLOGY_CACHE.get(handle.name)
    if csr is None:
        csr = attach_topology(handle)
        _TOPOLOGY_CACHE[handle.name] = csr
        while len(_TOPOLOGY_CACHE) > _TOPOLOGY_CACHE_LIMIT:
            _, stale = _TOPOLOGY_CACHE.popitem(last=False)
            if not _try_unmap(stale._shm):
                _TOPOLOGY_RETIRED.append(stale._shm)
        _TOPOLOGY_RETIRED[:] = [
            segment for segment in _TOPOLOGY_RETIRED if not _try_unmap(segment)
        ]
    else:
        _TOPOLOGY_CACHE.move_to_end(handle.name)
    return csr


def adopt_worker_topology(network, handle: TopologyHandle | None) -> None:
    """Give a worker-side network object the shared compiled topology.

    Two gaps to cover, both proven by the pair-build/compile deltas:

    * no compiled adjacency yet (pool forked before this topology was ever
      compiled): attach the whole CSR zero-copy;
    * a fork-*inherited* adjacency without pair members, while the handle
      ships them (the parent compiled before the fork but built the pair
      arrays only at publish time): graft the shared views onto the
      inherited object, so worker-side syndrome generation still never
      materialises them.

    The grafted views stay alive through the worker's topology cache, which
    pins the mapping for the worker's lifetime.
    """
    if handle is None:
        return
    csr = getattr(network, "_csr_adjacency", None)
    if csr is None:
        network._csr_adjacency = worker_topology(handle)
    elif handle.num_pairs and csr._pair_members is None:
        csr._pair_members = worker_topology(handle)._pair_members


def worker_network(family: str, params, handle: TopologyHandle | None):
    """Worker-side ``(network, csr)`` resolution shared by every pool task.

    The network object comes from the registry memo (persistent across the
    worker's lifetime); its compiled adjacency — pair members included — is
    adopted from the shared mapping when a handle is given.  ``handle=None``
    compiles locally, the per-worker-recompilation baseline the benchmarks
    keep for comparison.
    """
    from ..networks.registry import cached_network

    network = cached_network(family, **dict(params))
    adopt_worker_topology(network, handle)
    return network, compile_network(network)


def compile_delta_probe() -> Callable[[], dict]:
    """Snapshot the evidence counters; the returned thunk reports the delta.

    Every pool task wraps its work in one probe::

        probe = compile_delta_probe()
        ...  # resolve + run
        return results, probe()

    so the coordinator can aggregate per-task proof that shared-memory
    workers neither recompiled a topology nor rebuilt its pair arrays.
    """
    compiles_before = compile_count()
    pair_builds_before = pair_build_count()

    def stats() -> dict:
        return {
            "pid": os.getpid(),
            "compiles": compile_count() - compiles_before,
            "pair_builds": pair_build_count() - pair_builds_before,
        }

    return stats


def worker_buffer(handle: BufferHandle) -> np.ndarray:
    """The worker's zero-copy ``uint8`` view of a published buffer (cached)."""
    entry = _BUFFER_CACHE.get(handle.name)
    if entry is None:
        entry = attach_buffer(handle)
        _BUFFER_CACHE[handle.name] = entry
        while len(_BUFFER_CACHE) > _BUFFER_CACHE_LIMIT:
            _, (_, stale) = _BUFFER_CACHE.popitem(last=False)
            detach(stale)  # unmap and drop the registry pin
    else:
        _BUFFER_CACHE.move_to_end(handle.name)
    return entry[0]


def worker_health() -> dict:
    """Worker diagnostics: pid, cache sizes and the process compile counts.

    ``compiles`` is the worker's :func:`repro.backend.csr.compile_count` —
    the number expected to stay at whatever the fork inherited, because
    shared-memory attachment replaces every per-worker topology walk.
    ``pair_builds`` is the analogous
    :func:`~repro.backend.csr.pair_build_count`: flat whenever topologies
    arrive with their pair members shipped through shared memory.
    """
    return {
        "pid": os.getpid(),
        "topologies_attached": len(_TOPOLOGY_CACHE),
        "buffers_attached": len(_BUFFER_CACHE),
        "compiles": compile_count(),
        "pair_builds": pair_build_count(),
    }
