"""Deterministic seed derivation for parallel sweeps.

The reproducibility contract of the experiment layer is that a sweep's
results are a pure function of its trial table — never of how the table was
executed.  Each trial therefore carries its own seed, and replicate seeds are
derived *positionally* with :class:`numpy.random.SeedSequence` rather than
drawn from any shared generator: worker processes never consume a global RNG
stream, so ``parallel=True`` runs are bit-identical to serial runs regardless
of worker count, chunk size or scheduling order (pinned by
``tests/parallel/test_seeding.py``).

``SeedSequence.spawn`` gives statistically independent child streams from one
base seed — replicate ``i`` always maps to the same derived seed, whichever
worker (or chunk) ends up running it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_seeds", "derive_seed"]


def spawn_seeds(base_seed: int, count: int) -> tuple[int, ...]:
    """``count`` independent replicate seeds derived from ``base_seed``.

    Child ``i`` of ``SeedSequence(base_seed)`` is collapsed to one 32-bit
    integer, the format every seeded component of the reproduction accepts
    (``random.Random``, :class:`~repro.core.syndrome.FaultyTesterBehavior`,
    the channel models).  The mapping is a pure function of
    ``(base_seed, i)``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    children = np.random.SeedSequence(base_seed).spawn(count)
    return tuple(int(child.generate_state(1, np.uint32)[0]) for child in children)


def derive_seed(base_seed: int, *path: int) -> int:
    """One derived seed for a position ``path`` under ``base_seed``.

    ``derive_seed(s, i, j)`` follows the spawn tree ``s -> child i -> child
    j``; shard- or worker-local randomness (should a future component need
    any) must come from here, keyed by the *logical* position, never by the
    worker that happens to execute it.
    """
    sequence = np.random.SeedSequence(base_seed)
    for index in path:
        if index < 0:
            raise ValueError("path indices must be non-negative")
        sequence = sequence.spawn(index + 1)[index]
    return int(sequence.generate_state(1, np.uint32)[0])
