"""Shard-aware ``Set_Builder`` with a deterministic cross-shard merge.

:class:`ShardedSetBuilder` distributes one unrestricted ``Set_Builder`` run
over contiguous node-range shards (partition-class aligned, see
:mod:`repro.parallel.sharding`).  Each round, every shard expands the
frontier testers whose node id falls in its range — reading the compiled CSR
and the flat syndrome buffer, both optionally mapped zero-copy out of shared
memory by pool workers — and reports its *candidate occurrences*: the
``(neighbour, tester, test-result)`` triples in the tester-ascending,
row-position-ascending order the sequential procedure visits them in.

The coordinator then performs the **merge**, which is where the procedure's
sequential semantics are re-imposed deterministically:

* a node is admitted at its *first* zero-result occurrence in the global
  flat order (shards are contiguous and the frontier ascends, so
  concatenating the shard outputs in shard order *is* the global order) and
  its parent is that occurrence's tester — exactly the paper's "``t(v)`` is
  the least such ``u``" tie-break;
* occurrences strictly after the admitting one are discounted, because the
  sequential procedure stops consulting tests of a node that has already
  joined — this reproduces the reference lookup count *exactly*, not just
  approximately.

The result is equal, field for field (sets, parents, contributors, rounds,
lookup counts), to :func:`repro.core.set_builder.set_builder` on every
non-truncated run — the differential harness under ``tests/differential``
pins this across every registry family, shard counts {1, 2, 4} and seeds.

Execution modes
---------------
With ``pool=None`` the shard tasks run in-process (same arrays, same merge) —
the mode the equivalence tests lean on and the sensible choice below a few
thousand nodes, where process round-trips dominate.  With a
:class:`~repro.parallel.pool.WorkerPool`, the compiled topology is published
to shared memory once per builder and the per-run syndrome buffer plus a
shared membership mask are published per run; workers attach all three
zero-copy and receive only the frontier slice per task.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..backend.array_syndrome import ArraySyndrome
from ..backend.csr import compile_network
from ..core.set_builder import (
    SetBuilderResult,
    _expand_frontier_segment,
    _expand_root_pairs,
    _merge_frontier_candidates,
)
from ..networks.base import InterconnectionNetwork
from .pool import WorkerPool, worker_buffer, worker_topology
from .sharding import shard_granularity, shard_ranges, split_frontier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .shm import BufferHandle, TopologyHandle

__all__ = ["ShardedSetBuilder"]

# The per-shard round work and the admission merge are the *same code* the
# vectorised single-process path runs (core.set_builder): a shard expands its
# frontier slice with _expand_frontier_segment — within-round admissions are
# deliberately not applied shard-side, so shards never see each other's
# discoveries mid-round — and the coordinator applies sequential semantics
# once, globally, with _merge_frontier_candidates.  Sharing one implementation
# is what keeps the lookup accounting bit-identical across all paths.


def _expand_shard_task(
    topology: "TopologyHandle",
    syndrome: "BufferHandle",
    members: "BufferHandle",
    frontier: np.ndarray,
    parents: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pool-side shard expansion: attach (cached, zero-copy) and expand."""
    csr = worker_topology(topology)
    buf = worker_buffer(syndrome)
    member = worker_buffer(members).view(np.bool_)
    return _expand_frontier_segment(csr, buf, member, frontier, parents)


class ShardedSetBuilder:
    """Distribute one ``Set_Builder`` run over contiguous node-range shards.

    Parameters
    ----------
    topology:
        A network or an already compiled
        :class:`~repro.backend.csr.CSRAdjacency`.  Networks are compiled once
        on entry (memoized per instance, like every other layer).
    num_shards:
        Number of contiguous shards the node range splits into.
    pool:
        Optional :class:`~repro.parallel.pool.WorkerPool`.  ``None`` runs the
        shard tasks in-process (identical arithmetic, no processes); with a
        pool, the topology is published to shared memory once per builder and
        every run ships only per-round frontier slices to the workers.
    granularity:
        Shard-boundary alignment; defaults to the topology's level-0
        partition-class size (see
        :func:`~repro.parallel.sharding.shard_granularity`).

    The per-run entry point is :meth:`run`; builders are reusable across
    syndromes and roots.  ``restrict``/``max_nodes`` are deliberately not
    offered — restricted probe runs are tiny by construction (they stay
    inside one partition class, i.e. one shard) and stay on the sequential
    paths; sharding exists for the network-sized final run.
    """

    def __init__(
        self,
        topology,
        *,
        num_shards: int = 2,
        pool: WorkerPool | None = None,
        granularity: int | None = None,
    ) -> None:
        self.csr = compile_network(topology)
        self.network = topology if isinstance(topology, InterconnectionNetwork) else None
        if granularity is None:
            granularity = shard_granularity(topology)
        self.num_shards = int(num_shards)
        self.granularity = int(granularity)
        self.ranges = shard_ranges(
            self.csr.num_nodes, self.num_shards, granularity=self.granularity
        )
        self.pool = pool
        self._topology_handle: "TopologyHandle" | None = None

    # ---------------------------------------------------------------- helpers
    def _published_topology(self) -> "TopologyHandle":
        if self._topology_handle is None:
            assert self.pool is not None
            self._topology_handle = self.pool.publish_topology(self.csr)
        return self._topology_handle

    def _default_diagnosability(self) -> int:
        if self.network is None:
            raise ValueError(
                "diagnosability must be given explicitly when the builder was "
                "constructed from a bare CSRAdjacency"
            )
        return self.network.diagnosability()

    # -------------------------------------------------------------------- run
    def run(
        self,
        syndrome: ArraySyndrome,
        u0: int,
        *,
        diagnosability: int | None = None,
        stop_on_certificate: bool = False,
    ) -> SetBuilderResult:
        """Run ``Set_Builder(u0)`` sharded; equal to the sequential reference.

        ``syndrome`` must be an :class:`ArraySyndrome` over this builder's
        compiled topology (the flat buffer is what shards read, locally or
        out of shared memory).
        """
        csr = self.csr
        if not isinstance(syndrome, ArraySyndrome) or syndrome.csr is not csr:
            raise ValueError(
                "ShardedSetBuilder needs an ArraySyndrome over the same compiled "
                "topology (build it with ArraySyndrome.from_faults(csr, ...))"
            )
        if not 0 <= u0 < csr.num_nodes:
            raise ValueError(f"start node {u0} is not a node of the network")
        if diagnosability is None:
            diagnosability = self._default_diagnosability()

        n = csr.num_nodes
        lookups = 0
        parent_np = np.full(n, -1, dtype=np.int64)
        tree_nodes: list[int] = [u0]
        contributors: set[int] = set()
        all_healthy = False
        truncated = False

        # ------------------------------------------------------------ round 1
        # The root's Δ(Δ-1)/2 pair scan is tiny; the coordinator runs it
        # locally with the exact scalar code the other array paths use.
        added, parent, root_lookups = _expand_root_pairs(csr, syndrome.buffer, u0)
        lookups += root_lookups
        rounds = 1 if added else 0
        if added:
            contributors.add(u0)
        if len(contributors) > diagnosability:
            all_healthy = True
        frontier = np.asarray(sorted(added), dtype=np.int64)

        # --------------------------------------------- membership (shards read)
        pooled = self.pool is not None and frontier.size > 0
        syndrome_handle = members_handle = None
        if pooled:
            topology_handle = self._published_topology()
            syndrome_handle = self.pool.publish_buffer(syndrome.buffer)
            members_handle, members_view = self.pool.allocate_buffer(n)
            member = members_view.view(np.bool_)
        else:
            member = np.zeros(n, dtype=bool)
        member[u0] = True
        if added:
            added_arr = np.asarray(added, dtype=np.int64)
            member[added_arr] = True
            parent_np[added_arr] = u0
            tree_nodes.extend(added)

        try:
            # -------------------------------------------------- rounds >= 2
            while frontier.size:
                if all_healthy and stop_on_certificate:
                    truncated = True
                    break
                segments = [
                    seg for seg in split_frontier(frontier, self.ranges) if seg.size
                ]
                if pooled:
                    futures = [
                        self.pool.submit(
                            _expand_shard_task,
                            topology_handle,
                            syndrome_handle,
                            members_handle,
                            seg,
                            parent_np[seg],
                        )
                        for seg in segments
                    ]
                    pieces = [future.result() for future in futures]
                else:
                    buf = np.frombuffer(syndrome.buffer, dtype=np.uint8)
                    pieces = [
                        _expand_frontier_segment(csr, buf, member, seg, parent_np[seg])
                        for seg in segments
                    ]

                # ------------------------------------------------------ merge
                # Shard outputs concatenate to the global flat (tester
                # ascending, row position ascending) order; the shared merge
                # then applies the sequential admission/discount semantics on
                # that order, so the result is deterministic and shard-count
                # independent.
                empty = np.empty(0, dtype=np.int64)
                v_c = np.concatenate([p[0] for p in pieces]) if pieces else empty
                src_c = np.concatenate([p[1] for p in pieces]) if pieces else empty
                val_c = (np.concatenate([p[2] for p in pieces]) if pieces
                         else np.empty(0, dtype=np.uint8))
                added_v, added_u, round_lookups = _merge_frontier_candidates(
                    n, v_c, src_c, val_c
                )
                lookups += round_lookups
                if added_v.size == 0:
                    break
                member[added_v] = True
                parent_np[added_v] = added_u
                parent.update(zip(added_v.tolist(), added_u.tolist()))
                tree_nodes.extend(added_v.tolist())
                contributors.update(added_u.tolist())
                rounds += 1
                if len(contributors) > diagnosability:
                    all_healthy = True
                frontier = added_v  # ascending by construction
            member_mask = np.array(member, dtype=bool) if pooled else member
        finally:
            if pooled:
                # Drop the coordinator's views first (the segment cannot
                # unmap while they export its buffer), then unlink the
                # per-run buffers; the topology segment persists for the
                # builder's (pool's) lifetime.
                member = members_view = None
                self.pool.release(syndrome_handle)
                self.pool.release(members_handle)

        syndrome.lookups += lookups
        return SetBuilderResult(
            root=u0,
            all_healthy=all_healthy,
            nodes=set(tree_nodes),
            parent=parent,
            contributors=contributors,
            rounds=rounds,
            lookups=lookups,
            truncated=truncated,
            member_mask=member_mask,
        )
