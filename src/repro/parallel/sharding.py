"""Shard keys for distributing one diagnosis over a compiled topology.

The partition classes of a :class:`~repro.networks.base.DimensionalNetwork`
are *contiguous integer ranges* of the node encoding (fixing the leading
digits fixes the high bits), which makes them natural shard keys: splitting
the node range ``[0, N)`` at class boundaries assigns every partition class —
and with it every restricted ``Set_Builder`` probe the driver might run — to
exactly one shard.

:func:`shard_ranges` computes ``num_shards`` contiguous, near-equal ranges
whose boundaries are aligned to a *granularity* (the level-0 partition-class
size when the topology exposes one, else single nodes).
:func:`split_frontier` then routes a sorted frontier to its shards with one
``searchsorted`` — because shards are contiguous and frontiers are kept in
ascending node order, the concatenation of the per-shard slices is exactly
the sequential visiting order, which is what makes the cross-shard merge of
:class:`~repro.parallel.sharded.ShardedSetBuilder` deterministic.
"""

from __future__ import annotations

import numpy as np

__all__ = ["shard_granularity", "shard_ranges", "split_frontier"]


def shard_granularity(network) -> int:
    """Shard-boundary alignment for a topology (partition-class size, or 1).

    For dimensional families the level-0 partition classes are contiguous
    blocks of ``radix**m`` node ids; aligning shard boundaries to that block
    size keeps every class on a single shard.  Families whose classes are not
    contiguous in the encoding (the permutation networks), instances too
    small to admit a partition at all, and plain
    :class:`~repro.backend.csr.CSRAdjacency` objects with no partition
    metadata all shard at single-node granularity, which is still correct
    (the merge never relies on alignment), just not class-aligned.
    """
    from ..networks.base import DimensionalNetwork

    if isinstance(network, DimensionalNetwork):
        try:
            return network.partition_scheme(0).class_size
        except ValueError:  # no admissible partition on this instance
            return 1
    return 1


def shard_ranges(
    num_nodes: int, num_shards: int, *, granularity: int = 1
) -> list[tuple[int, int]]:
    """Split ``[0, num_nodes)`` into ``num_shards`` contiguous aligned ranges.

    Boundaries fall on multiples of ``granularity``; the ranges cover the node
    set exactly, are pairwise disjoint, and are as balanced as the alignment
    allows.  With more shards than aligned blocks, trailing ranges are empty
    (the set builder simply never dispatches to them).
    """
    if num_shards < 1:
        raise ValueError("need at least one shard")
    if num_nodes < 0:
        raise ValueError("num_nodes must be non-negative")
    granularity = max(1, int(granularity))
    blocks = -(-num_nodes // granularity)  # ceil: trailing partial block allowed
    bounds = [
        min(num_nodes, granularity * round(blocks * s / num_shards))
        for s in range(num_shards + 1)
    ]
    bounds[0], bounds[-1] = 0, num_nodes
    # round() keeps the bounds monotone (blocks*s/num_shards is increasing),
    # so each (lo, hi) pair is a valid, possibly empty, range.
    return [(bounds[s], bounds[s + 1]) for s in range(num_shards)]


def split_frontier(
    frontier: np.ndarray, ranges: list[tuple[int, int]]
) -> list[np.ndarray]:
    """Slice an ascending frontier into its per-shard segments (no copy).

    The slices concatenate back to ``frontier`` in order — shard ``s`` owns
    the testers whose node id falls in ``ranges[s]``.
    """
    cuts = np.searchsorted(frontier, [hi for _, hi in ranges[:-1]])
    return np.split(frontier, cuts)
