"""Shared-memory placement of compiled topologies and syndrome buffers.

The scale-out subsystem (:mod:`repro.parallel`) runs one diagnosis — or one
sweep of many diagnoses — across a pool of worker processes.  Everything the
hot paths touch is flat arrays (the CSR ``indptr``/``indices`` pair of
:class:`~repro.backend.csr.CSRAdjacency` and the byte buffer of
:class:`~repro.backend.array_syndrome.ArraySyndrome`), so instead of pickling
those arrays into every task — or worse, recompiling the topology once per
worker, which is what the pre-pool process fan-out did — the owner process
places them in :mod:`multiprocessing.shared_memory` **once** and workers map
them zero-copy:

* :func:`publish_topology` serialises a compiled CSR into one segment
  (``indptr`` as ``int64`` followed by ``indices`` as ``int32``) and returns a
  small picklable :class:`TopologyHandle`;
* :func:`attach_topology` reconstructs a :class:`CSRAdjacency` in the worker
  whose arrays are *views* over the mapped segment — no copy, no walk of the
  topology, and the derived pair layout (an ``N``-element cumsum) is the only
  per-worker work;
* :func:`publish_buffer` / :func:`attach_buffer` do the same for raw byte
  buffers (syndrome results, shard membership masks).

Ownership and cleanup
---------------------
Every segment has exactly one owner: the process that published it.  The
:class:`OwnedSegment` wrapper unlinks the segment when closed and carries a
``weakref.finalize`` guard so that segments are reclaimed even if the owner
forgets (or crashes through an exception path) — the lifecycle tests assert
that no segment survives a pool shutdown.

Workers never unlink segments they merely attached.  The pool's workers are
*forked* (the Linux default), so they share the owner's ``resource_tracker``
process: a worker's attach re-registers the same name into the same tracker
set (a no-op), and the owner's ``unlink()`` — which unregisters as a side
effect — keeps the tracker exactly balanced with no spurious cleanup when a
worker exits.  Attached mappings are pinned in a process-level registry
(:data:`_ATTACHED`) until :func:`detach` releases them, so their wrapper
objects never race live numpy views at garbage-collection time.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..backend.csr import CSRAdjacency

__all__ = [
    "TopologyHandle",
    "BufferHandle",
    "OwnedSegment",
    "publish_topology",
    "attach_topology",
    "publish_buffer",
    "attach_buffer",
    "allocate_buffer",
]

_INT64 = np.dtype(np.int64)
_INT32 = np.dtype(np.int32)


@dataclass(frozen=True)
class TopologyHandle:
    """Picklable reference to a compiled topology placed in shared memory.

    ``num_pairs`` is nonzero when the publisher also shipped the pair-member
    arrays (the ``(tester, left, right)`` triple behind vectorised syndrome
    generation); attachers then view them out of the same segment instead of
    re-materialising three ``num_pairs``-sized arrays per worker.
    """

    name: str
    num_nodes: int
    num_entries: int
    num_pairs: int = 0


@dataclass(frozen=True)
class BufferHandle:
    """Picklable reference to a raw byte buffer placed in shared memory."""

    name: str
    size: int


class OwnedSegment:
    """A shared-memory segment owned (and eventually unlinked) by this process.

    The segment is unlinked exactly once — explicitly via :meth:`close`, or by
    the ``weakref.finalize`` guard at garbage collection / interpreter exit if
    the owner never got there (the "pool crashed" path the lifecycle tests
    exercise).
    """

    def __init__(self, segment: shared_memory.SharedMemory) -> None:
        self._segment = segment
        self.name = segment.name
        # The owner pid pins cleanup to the publishing process: a forked
        # worker inherits this object in its memory image, and must never
        # unlink a segment the coordinator still serves to other workers.
        self._finalizer = weakref.finalize(self, _release, segment, os.getpid())

    @property
    def buf(self) -> memoryview:
        return self._segment.buf

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "closed" if self.closed else "open"
        return f"OwnedSegment({self.name!r}, {state})"


def _release(segment: shared_memory.SharedMemory, owner_pid: int) -> None:
    if os.getpid() != owner_pid:  # forked copy: not ours to destroy
        return
    try:
        segment.close()
    except BufferError:
        # An owner-side numpy view is still alive; the mapping is freed when
        # the last view dies.  Unlinking the name below is what matters for
        # the no-leaked-segments guarantee.
        pass
    try:
        # unlink() also unregisters the name from the resource tracker, so the
        # owner's exit neither warns about nor re-attempts the cleanup.
        segment.unlink()
    except FileNotFoundError:  # already unlinked by another path
        pass


#: Every live mapping this process attached (never owned).  Holding them here
#: pins the wrapper objects so ``SharedMemory.__del__`` never races the numpy
#: views during garbage collection; :func:`detach` closes a mapping and drops
#: it from the registry again, which is how the pool's buffer-cache eviction
#: keeps long-lived workers bounded (topologies per sweep plus at most the
#: cache limit of transient buffers).
_ATTACHED: list[shared_memory.SharedMemory] = []


def attach(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without adopting ownership.

    Workers are forked (the Linux default the pool relies on), so they share
    the owner's ``resource_tracker`` process: attaching re-registers the same
    name into the same tracker set (a no-op), and the owner's ``unlink()``
    (which unregisters as a side effect) keeps the tracker exactly balanced —
    no spurious unlinks when a worker exits, no leak warnings at shutdown.
    """
    segment = shared_memory.SharedMemory(name=name)
    _ATTACHED.append(segment)
    return segment


def detach(segment: shared_memory.SharedMemory) -> None:
    """Unmap an attached segment and release its registry pin (no unlink).

    Tolerates live views (the mapping then lingers until the last view dies)
    and segments that were never registered.
    """
    try:
        segment.close()
    except BufferError:  # a view still exports the buffer; freed with it
        pass
    try:
        _ATTACHED.remove(segment)
    except ValueError:
        pass


# ------------------------------------------------------------------- topology
def publish_topology(
    csr: CSRAdjacency, *, include_pair_members: bool = False
) -> tuple[TopologyHandle, OwnedSegment]:
    """Place a compiled CSR adjacency into one shared-memory segment.

    Layout: ``indptr`` (``int64``, ``N + 1`` entries) followed by ``indices``
    (``int32``, ``E`` entries); with ``include_pair_members`` the three
    pair-member arrays (``int32``, ``num_pairs`` entries each) follow.  The
    pair *layout* (``pair_indptr``) is never stored — attachers re-derive it
    with one cheap cumsum in :class:`CSRAdjacency.__init__`.

    Pair members cost 12 bytes per comparison test, so they are opt-in:
    workloads whose workers generate syndromes (the diagnosis service, trial
    sweeps) ship them; shard expansion, which only reads syndromes, does not.
    """
    indptr_bytes = (csr.num_nodes + 1) * _INT64.itemsize
    indices_bytes = csr.num_entries * _INT32.itemsize
    num_pairs = csr.num_pairs if include_pair_members else 0
    pairs_bytes = 3 * num_pairs * _INT32.itemsize
    segment = shared_memory.SharedMemory(
        create=True, size=max(1, indptr_bytes + indices_bytes + pairs_bytes)
    )
    owned = OwnedSegment(segment)
    indptr_view = np.frombuffer(segment.buf, dtype=_INT64, count=csr.num_nodes + 1)
    indptr_view[:] = csr.indptr
    indices_view = np.frombuffer(
        segment.buf, dtype=_INT32, count=csr.num_entries, offset=indptr_bytes
    )
    indices_view[:] = csr.indices
    if include_pair_members:
        offset = indptr_bytes + indices_bytes
        for members in csr.pair_members():
            view = np.frombuffer(
                segment.buf, dtype=_INT32, count=num_pairs, offset=offset
            )
            view[:] = members
            offset += num_pairs * _INT32.itemsize
    handle = TopologyHandle(
        name=segment.name,
        num_nodes=csr.num_nodes,
        num_entries=csr.num_entries,
        num_pairs=num_pairs,
    )
    return handle, owned


def attach_topology(handle: TopologyHandle) -> CSRAdjacency:
    """Reconstruct a :class:`CSRAdjacency` over the mapped segment (zero-copy).

    The returned object keeps the :class:`SharedMemory` mapping alive via the
    ``_shm`` attribute for as long as the CSR (and any array views handed out
    from it) is referenced.  When the publisher shipped pair members, they are
    pre-seeded as views too, so ``pair_members()`` never materialises its
    arrays in the attaching process (``pair_build_count`` stays flat).
    """
    segment = attach(handle.name)
    indptr_bytes = (handle.num_nodes + 1) * _INT64.itemsize
    indptr = np.frombuffer(segment.buf, dtype=_INT64, count=handle.num_nodes + 1)
    indices = np.frombuffer(
        segment.buf, dtype=_INT32, count=handle.num_entries, offset=indptr_bytes
    )
    csr = CSRAdjacency(indptr, indices)
    if handle.num_pairs:
        if handle.num_pairs != csr.num_pairs:
            raise ValueError(
                f"handle advertises {handle.num_pairs} pairs but the adjacency "
                f"derives {csr.num_pairs}"
            )
        offset = indptr_bytes + handle.num_entries * _INT32.itemsize
        members = []
        for _ in range(3):
            members.append(
                np.frombuffer(
                    segment.buf, dtype=_INT32, count=handle.num_pairs, offset=offset
                )
            )
            offset += handle.num_pairs * _INT32.itemsize
        csr._pair_members = tuple(members)
    csr._shm = segment  # keep the mapping alive alongside the views
    return csr


# -------------------------------------------------------------------- buffers
def publish_buffer(data) -> tuple[BufferHandle, OwnedSegment]:
    """Place a bytes-like object (syndrome buffer, mask) into shared memory."""
    view = memoryview(data).cast("B")
    size = view.nbytes
    segment = shared_memory.SharedMemory(create=True, size=max(1, size))
    owned = OwnedSegment(segment)
    segment.buf[:size] = view
    return BufferHandle(name=segment.name, size=size), owned


def allocate_buffer(size: int) -> tuple[BufferHandle, OwnedSegment]:
    """Create a zero-filled shared buffer the owner will write incrementally."""
    segment = shared_memory.SharedMemory(create=True, size=max(1, size))
    owned = OwnedSegment(segment)
    segment.buf[:size] = bytes(size)
    return BufferHandle(name=segment.name, size=size), owned


def attach_buffer(
    handle: BufferHandle,
) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Map a shared buffer as a writable ``uint8`` array view (zero-copy).

    Returns the array together with the mapping; the caller must keep the
    mapping referenced for as long as the view is used (worker caches hold
    both).  As with :func:`attach_topology`, the attaching process never
    unlinks.
    """
    segment = attach(handle.name)
    array = np.frombuffer(segment.buf, dtype=np.uint8, count=handle.size)
    return array, segment
