"""`repro.service` — the serving layer: batched, coalesced, cached diagnosis.

Everything below this package still runs one diagnosis at a time; this
subsystem turns the paper's :class:`~repro.core.diagnosis.GeneralDiagnoser`
into a throughput engine for *streams* of requests:

* :mod:`~repro.service.requests` — :class:`DiagnosisRequest` /
  :class:`DiagnosisResponse`, plus the canonical topology / request keys and
  the syndrome content digest;
* :mod:`~repro.service.cache` — the bounded :class:`LRUCache` (hit / miss /
  eviction counters) used for the service's compiled-topology cache and for
  the network registry's instance memo;
* :mod:`~repro.service.store` — :class:`ResultStore`, a content-addressed
  SQLite store keyed by ``(topology key, syndrome digest)`` so repeated
  requests are served from disk;
* :mod:`~repro.service.metrics` — latency / batch-size histograms, counters
  and queue-depth tracking behind the ``stats`` endpoint;
* :mod:`~repro.service.executor` — the batch execution core shared by the
  in-process path and the :class:`~repro.parallel.pool.WorkerPool` task;
* :mod:`~repro.service.service` — :class:`DiagnosisService`, the asyncio
  front end that coalesces concurrent requests per compiled topology into
  batched runs;
* :mod:`~repro.service.fairqueue` — :class:`TenantQueues`, the per-tenant
  deficit-round-robin scheduler behind multi-tenant fairness;
* :mod:`~repro.service.http` — the stdlib-only asyncio HTTP/1.1 frontend
  (``POST /diagnose``, ``GET /stats``, ``GET /metrics``, ``GET /dashboard``,
  ``GET /healthz``, graceful drain, 429 shedding) plus the matching
  keep-alive client;
* :mod:`~repro.service.prometheus` — the Prometheus text-format exporter
  and its minimal parser/checker;
* :mod:`~repro.service.dashboard` — the stdlib-rendered HTML operator
  dashboard over ``/stats``;
* :mod:`~repro.service.loadgen` — the seeded closed-loop load generator
  behind ``repro load`` and ``benchmarks/bench_service.py``, with an HTTP
  transport (``run_load_http_sync``) exercising the real wire path and a
  fairness harness (``run_fairness_sync``) pitting a saturating tenant
  against cold ones.

Attribute access is lazy (PEP 562): :mod:`repro.networks.registry` imports
:mod:`repro.service.cache` for its memo, and an eager ``__init__`` here would
re-enter the registry through :mod:`~repro.service.service` mid-import.
"""

from __future__ import annotations

_EXPORTS = {
    "CacheStats": "cache",
    "LRUCache": "cache",
    "DEFAULT_TENANT": "requests",
    "DiagnosisRequest": "requests",
    "DiagnosisResponse": "requests",
    "request_key": "requests",
    "topology_key": "requests",
    "syndrome_digest": "requests",
    "validate_tenant": "requests",
    "encode_lease": "requests",
    "decode_lease": "requests",
    "encode_result": "requests",
    "decode_result": "requests",
    "TenantQueues": "fairqueue",
    "MetricsParseError": "prometheus",
    "parse_metrics_text": "prometheus",
    "render_metrics": "prometheus",
    "render_dashboard": "dashboard",
    "ResultStore": "store",
    "Histogram": "metrics",
    "ServiceMetrics": "metrics",
    "TENANT_COUNTERS": "metrics",
    "WORKER_COUNTERS": "metrics",
    "DiagnosisService": "service",
    "RejectedError": "service",
    "BackgroundHttpServer": "http",
    "HttpClient": "http",
    "HttpError": "http",
    "HttpFrontend": "http",
    "parse_http_target": "http",
    "LoadSpec": "loadgen",
    "LoadReport": "loadgen",
    "FairnessSpec": "loadgen",
    "FairnessReport": "loadgen",
    "build_client_streams": "loadgen",
    "run_load": "loadgen",
    "run_load_http": "loadgen",
    "run_load_http_sync": "loadgen",
    "run_load_sync": "loadgen",
    "run_fairness": "loadgen",
    "run_fairness_sync": "loadgen",
    "verify_against_direct": "loadgen",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
