"""Bounded LRU caching with hit/miss/eviction accounting.

Long-running processes — the diagnosis service above all, but also the
network registry's instance memo — must not grow without bound: every cached
network instance pins its compiled CSR arrays (and, once touched, three
``num_pairs``-sized pair-member arrays), so an unbounded memo in a server
that sees many distinct topologies is a slow memory leak.  On the serving
path the cost is paid up front: :func:`~repro.service.executor.\
resolve_topology` returns entries fully *warmed* — rows, pair bases and
pair members materialised — so a cache hit hands a batch everything its
per-request syndrome generation needs with zero build work inside the
measured window (the in-process pair-build delta stays at zero exactly like
the pooled one).  :class:`LRUCache`
is the one bounded replacement for the ad-hoc dict memos: least-recently-used
eviction, a configurable capacity, and a :class:`CacheStats` counter set that
the service's ``stats`` endpoint and the registry's :func:`cache_stats`
accessor expose.

The cache is deliberately synchronous and unlocked: every user runs it from
a single thread (the asyncio event loop, or a worker process's main thread).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Iterator, TypeVar

__all__ = ["CacheStats", "LRUCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: distinguishes "no entry" from a stored ``None`` in :meth:`LRUCache.put`
_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of one cache's counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing has been looked up)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache(Generic[K, V]):
    """A bounded mapping with least-recently-used eviction and counters.

    ``capacity=0`` degenerates to a pass-through: nothing is retained and
    every lookup misses — the configuration the benchmarks use as the
    "no caching" baseline.  Capacity can be resized live; shrinking evicts
    the stale tail immediately.
    """

    def __init__(
        self,
        capacity: int = 64,
        *,
        on_evict: Callable[[K, V], None] | None = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._capacity = int(capacity)
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        #: called with (key, value) for every capacity eviction (not for
        #: :meth:`clear`) — lets owners of external resources pinned by an
        #: entry release them when the cache lets go
        self._on_evict = on_evict

    # ---------------------------------------------------------------- lookups
    def get(self, key: K, default: V | None = None) -> V | None:
        """The cached value (refreshing its recency), or ``default``."""
        try:
            value = self._entries[key]
        except KeyError:
            self._misses += 1
            return default
        self._hits += 1
        self._entries.move_to_end(key)
        return value

    def get_or_create(self, key: K, factory: Callable[[], V]) -> V:
        """The cached value, or ``factory()`` stored (capacity permitting)."""
        try:
            value = self._entries[key]
        except KeyError:
            self._misses += 1
            value = factory()
            self.put(key, value)
            return value
        self._hits += 1
        self._entries.move_to_end(key)
        return value

    def put(self, key: K, value: V) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if needed.

        With ``capacity=0`` the entry is dropped on the spot — counted as an
        eviction, ``on_evict`` fired — so owners of external resources (the
        pooled service's shm segments) see every value they handed in let go
        of, whichever capacity is configured.
        """
        if self._capacity == 0:
            self._evictions += 1
            if self._on_evict is not None:
                self._on_evict(key, value)
            return
        displaced = self._entries.get(key, _MISSING)
        self._entries[key] = value
        self._entries.move_to_end(key)
        # A replaced value is let go of just like a capacity eviction: the
        # owner of whatever it pins (a pooled topology's shm segment) must
        # hear about it, or the replacement silently leaks the resource.
        # Re-putting the very same object is a refresh, not a displacement.
        if displaced is not _MISSING and displaced is not value:
            self._evictions += 1
            if self._on_evict is not None:
                self._on_evict(key, displaced)
        self._evict_to_capacity()

    def _evict_to_capacity(self) -> None:
        while len(self._entries) > self._capacity:
            key, value = self._entries.popitem(last=False)
            self._evictions += 1
            if self._on_evict is not None:
                self._on_evict(key, value)

    # ------------------------------------------------------------- management
    @property
    def capacity(self) -> int:
        return self._capacity

    def resize(self, capacity: int) -> None:
        """Change the bound; shrinking evicts least-recent entries now."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._capacity = int(capacity)
        if self._capacity == 0:
            while self._entries:
                key, value = self._entries.popitem(last=False)
                self._evictions += 1
                if self._on_evict is not None:
                    self._on_evict(key, value)
        else:
            self._evict_to_capacity()

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating; evictions unchanged)."""
        self._entries.clear()

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._entries),
            capacity=self._capacity,
        )

    # ---------------------------------------------------------------- dunders
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        """Membership test without touching recency or counters."""
        return key in self._entries

    def __iter__(self) -> Iterator[K]:
        """Keys, least-recently used first (eviction order)."""
        return iter(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"LRUCache(size={len(self._entries)}/{self._capacity}, "
            f"hits={self._hits}, misses={self._misses}, evictions={self._evictions})"
        )
