"""Stdlib-rendered operator dashboard over the ``/stats`` snapshot.

``GET /dashboard`` returns one self-contained HTML page — no JavaScript
frameworks, no external assets, just the ``stats`` dict the service already
exposes, rendered server-side with :mod:`html` escaping and a dash of
inline CSS.  The page auto-refreshes via ``<meta http-equiv="refresh">``,
so a browser tab pointed at a serving process is a live (if spartan)
operations console: global counters, latency/queue-wait percentiles, the
per-tenant admission/served/shed table the fair-queueing edge maintains,
and the cache/store/HTTP sections when present.

Everything here is presentation: the numbers come verbatim from
``DiagnosisService.stats()`` (plus the HTTP frontend's counters), the same
source the JSON endpoint and the Prometheus exporter read.
"""

from __future__ import annotations

import html

__all__ = ["render_dashboard"]

_STYLE = """
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 1.5rem;
       background: #14161a; color: #d6dae0; }
h1 { font-size: 1.2rem; border-bottom: 1px solid #3a3f47; padding-bottom: .4rem; }
h2 { font-size: 1rem; margin-top: 1.4rem; color: #9fc4e8; }
table { border-collapse: collapse; margin-top: .5rem; }
th, td { border: 1px solid #3a3f47; padding: .25rem .6rem; text-align: right; }
th { background: #1d2026; color: #9fc4e8; font-weight: normal; }
td.name, th.name { text-align: left; }
.muted { color: #7c828c; }
"""


def _escape(value) -> str:
    return html.escape(str(value), quote=True)


def _counter_rows(pairs) -> str:
    rows = "".join(
        f"<tr><td class=name>{_escape(name)}</td><td>{_escape(value)}</td></tr>"
        for name, value in pairs
    )
    return f"<table><tr><th class=name>counter</th><th>value</th></tr>{rows}</table>"


def _histogram_table(title: str, summary: dict) -> str:
    if not summary or summary.get("count", 0) == 0:
        return (f"<h2>{_escape(title)}</h2>"
                f"<p class=muted>no observations yet</p>")
    columns = [key for key in
               ("count", "mean", "p50", "p90", "p99", "min", "max")
               if key in summary]
    head = "".join(f"<th>{_escape(key)}</th>" for key in columns)
    body = "".join(f"<td>{_escape(summary[key])}</td>" for key in columns)
    return (f"<h2>{_escape(title)}</h2>"
            f"<table><tr>{head}</tr><tr>{body}</tr></table>")


def _tenant_table(tenants: dict) -> str:
    if not tenants:
        return "<p class=muted>no tenants seen yet</p>"
    columns = ("admitted", "rejected", "served", "computed", "store_hits",
               "coalesced", "errors")
    head = "".join(f"<th>{_escape(name)}</th>" for name in columns)
    rows = []
    for tenant, row in sorted(tenants.items()):
        cells = "".join(f"<td>{_escape(row.get(name, 0))}</td>"
                        for name in columns)
        rows.append(f"<tr><td class=name>{_escape(tenant)}</td>{cells}</tr>")
    return (f"<table><tr><th class=name>tenant</th>{head}</tr>"
            f"{''.join(rows)}</table>")


def _worker_table(workers: dict) -> str:
    columns = ("dispatched", "completed", "retried", "requeued", "evictions")
    head = "".join(f"<th>{_escape(name)}</th>" for name in columns)
    rows = []
    for worker, row in sorted(workers.items()):
        cells = "".join(f"<td>{_escape(row.get(name, 0))}</td>"
                        for name in columns)
        rows.append(f"<tr><td class=name>{_escape(worker)}</td>{cells}</tr>")
    return (f"<table><tr><th class=name>worker</th>{head}</tr>"
            f"{''.join(rows)}</table>")


def render_dashboard(
    stats: dict, *, title: str = "repro diagnosis service",
    refresh_seconds: int = 5,
) -> str:
    """The ``GET /dashboard`` HTML page for one ``stats()`` snapshot."""
    service = stats.get("service", stats)
    sections: list[str] = []

    sections.append("<h2>service</h2>")
    sections.append(_counter_rows(
        (name, service.get(name, 0))
        for name in ("requests", "computed", "store_hits",
                     "coalesced_duplicates", "rejected", "errors", "batches",
                     "coalesced_batches", "worker_compiles",
                     "worker_pair_builds", "pending")
        if name in service
    ))

    sections.append("<h2>tenants</h2>")
    sections.append(_tenant_table(service.get("tenants", {})))
    pending_by_tenant = service.get("pending_by_tenant") or {}
    if pending_by_tenant:
        sections.append("<h2>pending by tenant</h2>")
        sections.append(_counter_rows(sorted(pending_by_tenant.items())))
    weights = service.get("tenant_weights") or {}
    if weights:
        sections.append("<h2>tenant weights</h2>")
        sections.append(_counter_rows(sorted(weights.items())))

    sections.append(_histogram_table("latency (ms)",
                                     service.get("latency_ms", {})))
    sections.append(_histogram_table("queue wait (ms)",
                                     service.get("queue_wait_ms", {})))
    sections.append(_histogram_table("batch width",
                                     service.get("batch_size", {})))
    sections.append(_histogram_table("queue depth",
                                     service.get("queue_depth", {})))

    workers = service.get("workers") or {}
    fabric = service.get("fabric") or stats.get("fabric") or {}
    if workers or fabric:
        sections.append("<h2>fabric workers</h2>")
        if workers:
            sections.append(_worker_table(workers))
        if fabric:
            sections.append(_counter_rows(
                (name, value) for name, value in sorted(fabric.items())
                if isinstance(value, (int, float))
                and not isinstance(value, bool)
            ))

    # The service snapshot files the topology cache under "topology_cache";
    # "cache" is accepted too for hand-built stats dicts.
    for keys, heading in ((("topology_cache", "cache"), "topology cache"),
                          (("store",), "result store"),
                          (("http",), "http frontend")):
        block = None
        for key in keys:
            block = stats.get(key) or service.get(key)
            if block:
                break
        if isinstance(block, dict) and block:
            sections.append(f"<h2>{_escape(heading)}</h2>")
            sections.append(_counter_rows(
                (name, value) for name, value in sorted(block.items())
                if isinstance(value, (int, float))
            ))

    return (
        "<!DOCTYPE html>"
        "<html><head>"
        f"<meta charset=\"utf-8\">"
        f"<meta http-equiv=\"refresh\" content=\"{int(refresh_seconds)}\">"
        f"<title>{_escape(title)}</title>"
        f"<style>{_STYLE}</style>"
        "</head><body>"
        f"<h1>{_escape(title)}</h1>"
        f"{''.join(sections)}"
        "</body></html>"
    )
