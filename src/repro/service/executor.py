"""Batch execution core of the diagnosis service.

One *batch* is every coalesced request sharing a compiled topology.  The
coordinator resolves the topology once (through the service's bounded LRU),
then either runs the batch in-process or ships it as **one**
:class:`~repro.parallel.pool.WorkerPool` task: the worker maps the topology
— including the pair-member arrays behind vectorised syndrome generation —
out of shared memory, regenerates each request's syndrome, and diagnoses.
Either way the per-request work is exactly the direct pipeline
(:class:`~repro.core.diagnosis.GeneralDiagnoser` over an
:class:`~repro.backend.array_syndrome.ArraySyndrome`), so responses are
bit-identical to one-off calls; the batch boundary only amortises topology
resolution and process round-trips.

Every batch reports the compile-count and pair-build deltas it caused in its
executing process — the serving layer's zero-per-request-recompilation claim
is asserted from these counters, not assumed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..backend.array_syndrome import ArraySyndrome
from ..core.diagnosis import DiagnosisError, GeneralDiagnoser
from ..core.faults import clustered_faults, random_faults, spread_faults
from ..core.syndrome import FaultyTesterBehavior
from ..networks.registry import FAMILIES, create_network
from .requests import DiagnosisRequest, DiagnosisResponse, syndrome_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..parallel.shm import BufferHandle, TopologyHandle

__all__ = [
    "PLACEMENTS",
    "validate_request",
    "resolve_topology",
    "run_batch_local",
    "run_batch_task",
    "run_direct",
]

PLACEMENTS = {
    "random": random_faults,
    "clustered": clustered_faults,
    "spread": spread_faults,
}


def validate_request(request: DiagnosisRequest) -> None:
    """Reject malformed requests before they reach a queue (fail fast)."""
    if request.family not in FAMILIES:
        raise ValueError(
            f"unknown network family {request.family!r}; "
            f"available: {', '.join(sorted(FAMILIES))}"
        )
    if not request.is_explicit:
        if request.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {request.placement!r}; "
                f"choose from {sorted(PLACEMENTS)}"
            )
        if request.behavior not in FaultyTesterBehavior.NAMES:
            raise ValueError(
                f"unknown behavior {request.behavior!r}; "
                f"choose from {FaultyTesterBehavior.NAMES}"
            )
        if request.fault_count is not None and request.fault_count < 1:
            raise ValueError("fault_count must be at least 1 (or None for delta)")


def resolve_topology(family: str, params: dict):
    """Construct and compile one topology (the service LRU's factory).

    Deliberately bypasses the registry memo: the service's bounded cache is
    the *only* topology cache on the serving path, so its eviction policy —
    and the naive baseline's capacity-0 configuration — measure what they
    claim to.

    The entry is returned fully *warmed*: rows, pair bases and the
    pair-member arrays behind per-request ``ArraySyndrome`` generation are
    materialised here, once per cache entry, so repeat requests on a cached
    topology never rebuild a pair index inside a measured batch — the
    in-process pair-build delta stays at zero just like the pooled one.
    """
    network = create_network(family, **params)
    from ..backend.csr import compile_network

    csr = compile_network(network)
    csr.rows
    csr.pair_base
    csr.pair_members()
    return network, csr


def _run_requests(
    network,
    csr,
    requests: Sequence[DiagnosisRequest],
    explicit_views: dict[int, object] | None = None,
) -> tuple[list[DiagnosisResponse], int]:
    """Diagnose one topology group through the stacked kernel.

    Syndrome construction stays per-request (each failure becomes an error
    *response* — a batch shares execution, never fate), then every syndrome
    that constructed runs in **one** ``diagnose_many`` call: the batched
    final ``Set_Builder`` pass whose width is the second return value (the
    post-slicing kernel width the metrics histogram records).  Per-item
    failures inside the kernel (a Theorem-1 violation) come back as
    exception objects and become error responses in place.

    ``explicit_views`` maps request positions to flat ``uint8`` buffer views
    for syndromes shipped out-of-band (shared memory); those requests carry
    no ``syndrome_bytes`` of their own and their views are adopted zero-copy.
    """
    diagnoser = GeneralDiagnoser(network)
    delta = network.diagnosability()
    responses: list[DiagnosisResponse | None] = [None] * len(requests)
    syndromes: list[ArraySyndrome] = []
    slots: list[tuple[int, int | None]] = []  # (position, num_faults_injected)
    for pos, request in enumerate(requests):
        num_injected = None
        try:
            if explicit_views is not None and pos in explicit_views:
                syndrome = ArraySyndrome(csr, explicit_views[pos], copy=False)
            elif request.is_explicit:
                syndrome = ArraySyndrome(csr, request.syndrome_bytes)
            else:
                count = delta if request.fault_count is None else request.fault_count
                faults = PLACEMENTS[request.placement](
                    network, count, seed=request.seed
                )
                num_injected = len(faults)
                syndrome = ArraySyndrome.from_faults(
                    csr, faults, behavior=request.behavior, seed=request.seed
                )
        except (DiagnosisError, ValueError) as exc:
            responses[pos] = DiagnosisResponse(
                topology_key=request.topology_key,
                syndrome_digest="",
                faulty=(),
                healthy_root=None,
                lookups=0,
                num_probes=0,
                partition_level=None,
                num_faults_injected=num_injected,
                error=f"{type(exc).__name__}: {exc}",
            )
            continue
        syndromes.append(syndrome)
        slots.append((pos, num_injected))

    outcomes = diagnoser.diagnose_many(syndromes, include_sets=False)
    for (pos, num_injected), syndrome, outcome in zip(slots, syndromes, outcomes):
        request = requests[pos]
        digest = syndrome_digest(syndrome.buffer)
        if isinstance(outcome, Exception):
            responses[pos] = DiagnosisResponse(
                topology_key=request.topology_key,
                syndrome_digest=digest,
                faulty=(),
                healthy_root=None,
                lookups=syndrome.lookups,
                num_probes=0,
                partition_level=None,
                num_faults_injected=num_injected,
                error=f"{type(outcome).__name__}: {outcome}",
            )
            continue
        responses[pos] = DiagnosisResponse(
            topology_key=request.topology_key,
            syndrome_digest=digest,
            faulty=tuple(sorted(outcome.faulty)),
            healthy_root=outcome.healthy_root,
            lookups=outcome.lookups,
            num_probes=outcome.num_probes,
            partition_level=outcome.partition_level,
            num_faults_injected=num_injected,
        )
    return responses, len(syndromes)


def run_batch_local(
    network, csr, requests: Sequence[DiagnosisRequest]
) -> tuple[list[DiagnosisResponse], dict]:
    """Execute one batch in this process (pre-resolved topology).

    The compile/pair deltas cover only the requests themselves (the topology
    was resolved — and its pair index warmed — before the measurement
    starts), mirroring what the pool task reports: on the serving path both
    must be zero.  ``kernel_width`` is the stacked kernel's actual batch
    width (requests whose syndrome failed to construct never reach it).
    """
    from ..parallel.pool import compile_delta_probe

    probe = compile_delta_probe()
    responses, width = _run_requests(network, csr, requests)
    stats = probe()
    stats["kernel_width"] = width
    return responses, stats


def run_direct(
    request: DiagnosisRequest, *, network=None, csr=None
) -> DiagnosisResponse:
    """One request through the plain pipeline — the service's reference.

    The differential suite and the loadgen's ``--verify`` mode compare
    served responses against this byte for byte.  Pass ``network``/``csr``
    to reuse an existing instance; otherwise a fresh one is resolved.
    """
    validate_request(request)
    if network is None or csr is None:
        network, csr = resolve_topology(request.family, request.network_kwargs)
    return _run_requests(network, csr, [request])[0][0]


def run_batch_task(
    handle: "TopologyHandle | None",
    family: str,
    params: tuple,
    requests: Sequence[DiagnosisRequest],
    syndrome_handle: "BufferHandle | None" = None,
    syndrome_spans: Sequence[tuple[int, int, int]] = (),
) -> tuple[list[DiagnosisResponse], dict]:
    """Pool-side batch execution: attach the shared topology, then diagnose.

    The worker's network object comes from the registry memo (persistent
    across tasks); its compiled adjacency — pair members included — is the
    zero-copy shared-memory mapping, so the worker neither walks the
    topology nor rebuilds the pair arrays (the reported deltas prove it).

    Explicit syndromes travel the same way: the coordinator concatenates
    their buffers into one published segment (``syndrome_handle``) and sends
    ``(position, offset, size)`` spans instead of pickling the bytes per
    task; the worker slices zero-copy views out of its attached mapping.
    """
    from ..parallel.pool import compile_delta_probe, worker_buffer, worker_network

    probe = compile_delta_probe()
    network, csr = worker_network(family, params, handle)
    explicit_views = None
    if syndrome_handle is not None:
        view = worker_buffer(syndrome_handle)
        explicit_views = {
            pos: view[offset:offset + size]
            for pos, offset, size in syndrome_spans
        }
    responses, width = _run_requests(
        network, csr, requests, explicit_views=explicit_views
    )
    stats = probe()
    stats["kernel_width"] = width
    return responses, stats
