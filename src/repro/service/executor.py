"""Batch execution core of the diagnosis service.

One *batch* is every coalesced request sharing a compiled topology.  The
coordinator resolves the topology once (through the service's bounded LRU),
then either runs the batch in-process or ships it as **one**
:class:`~repro.parallel.pool.WorkerPool` task: the worker maps the topology
— including the pair-member arrays behind vectorised syndrome generation —
out of shared memory, regenerates each request's syndrome, and diagnoses.
Either way the per-request work is exactly the direct pipeline
(:class:`~repro.core.diagnosis.GeneralDiagnoser` over an
:class:`~repro.backend.array_syndrome.ArraySyndrome`), so responses are
bit-identical to one-off calls; the batch boundary only amortises topology
resolution and process round-trips.

Every batch reports the compile-count and pair-build deltas it caused in its
executing process — the serving layer's zero-per-request-recompilation claim
is asserted from these counters, not assumed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..backend.array_syndrome import ArraySyndrome
from ..core.diagnosis import DiagnosisError, GeneralDiagnoser
from ..core.faults import clustered_faults, random_faults, spread_faults
from ..core.syndrome import FaultyTesterBehavior
from ..networks.registry import FAMILIES, create_network
from .requests import DiagnosisRequest, DiagnosisResponse, syndrome_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..parallel.shm import TopologyHandle

__all__ = [
    "PLACEMENTS",
    "validate_request",
    "resolve_topology",
    "run_batch_local",
    "run_batch_task",
    "run_direct",
]

PLACEMENTS = {
    "random": random_faults,
    "clustered": clustered_faults,
    "spread": spread_faults,
}


def validate_request(request: DiagnosisRequest) -> None:
    """Reject malformed requests before they reach a queue (fail fast)."""
    if request.family not in FAMILIES:
        raise ValueError(
            f"unknown network family {request.family!r}; "
            f"available: {', '.join(sorted(FAMILIES))}"
        )
    if not request.is_explicit:
        if request.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {request.placement!r}; "
                f"choose from {sorted(PLACEMENTS)}"
            )
        if request.behavior not in FaultyTesterBehavior.NAMES:
            raise ValueError(
                f"unknown behavior {request.behavior!r}; "
                f"choose from {FaultyTesterBehavior.NAMES}"
            )
        if request.fault_count is not None and request.fault_count < 1:
            raise ValueError("fault_count must be at least 1 (or None for delta)")


def resolve_topology(family: str, params: dict):
    """Construct and compile one topology (the service LRU's factory).

    Deliberately bypasses the registry memo: the service's bounded cache is
    the *only* topology cache on the serving path, so its eviction policy —
    and the naive baseline's capacity-0 configuration — measure what they
    claim to.
    """
    network = create_network(family, **params)
    from ..backend.csr import compile_network

    return network, compile_network(network)


def _run_requests(
    network, csr, requests: Sequence[DiagnosisRequest]
) -> list[DiagnosisResponse]:
    """Diagnose every request of one topology group (the batch inner loop)."""
    diagnoser = GeneralDiagnoser(network)
    delta = network.diagnosability()
    responses: list[DiagnosisResponse] = []
    for request in requests:
        # Per-request failures (a fault count the instance cannot host, a
        # malformed explicit buffer, a Theorem-1 violation) become error
        # *responses*: a batch shares execution, never fate — one bad request
        # must not fail the requests coalesced alongside it.
        num_injected = None
        digest = ""
        syndrome = None
        try:
            if request.is_explicit:
                syndrome = ArraySyndrome(csr, request.syndrome_bytes)
            else:
                count = delta if request.fault_count is None else request.fault_count
                faults = PLACEMENTS[request.placement](
                    network, count, seed=request.seed
                )
                num_injected = len(faults)
                syndrome = ArraySyndrome.from_faults(
                    csr, faults, behavior=request.behavior, seed=request.seed
                )
            digest = syndrome_digest(syndrome.buffer)
            outcome = diagnoser.diagnose(syndrome)
        except (DiagnosisError, ValueError) as exc:
            responses.append(
                DiagnosisResponse(
                    topology_key=request.topology_key,
                    syndrome_digest=digest,
                    faulty=(),
                    healthy_root=None,
                    lookups=syndrome.lookups if syndrome is not None else 0,
                    num_probes=0,
                    partition_level=None,
                    num_faults_injected=num_injected,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        responses.append(
            DiagnosisResponse(
                topology_key=request.topology_key,
                syndrome_digest=digest,
                faulty=tuple(sorted(outcome.faulty)),
                healthy_root=outcome.healthy_root,
                lookups=outcome.lookups,
                num_probes=outcome.num_probes,
                partition_level=outcome.partition_level,
                num_faults_injected=num_injected,
            )
        )
    return responses


def run_batch_local(
    network, csr, requests: Sequence[DiagnosisRequest]
) -> tuple[list[DiagnosisResponse], dict]:
    """Execute one batch in this process (pre-resolved topology).

    The compile/pair deltas cover only the requests themselves (the topology
    was resolved before the measurement starts), mirroring what the pool
    task reports — on the serving path both must be zero.
    """
    from ..parallel.pool import compile_delta_probe

    probe = compile_delta_probe()
    responses = _run_requests(network, csr, requests)
    return responses, probe()


def run_direct(
    request: DiagnosisRequest, *, network=None, csr=None
) -> DiagnosisResponse:
    """One request through the plain pipeline — the service's reference.

    The differential suite and the loadgen's ``--verify`` mode compare
    served responses against this byte for byte.  Pass ``network``/``csr``
    to reuse an existing instance; otherwise a fresh one is resolved.
    """
    validate_request(request)
    if network is None or csr is None:
        network, csr = resolve_topology(request.family, request.network_kwargs)
    return _run_requests(network, csr, [request])[0]


def run_batch_task(
    handle: "TopologyHandle | None",
    family: str,
    params: tuple,
    requests: Sequence[DiagnosisRequest],
) -> tuple[list[DiagnosisResponse], dict]:
    """Pool-side batch execution: attach the shared topology, then diagnose.

    The worker's network object comes from the registry memo (persistent
    across tasks); its compiled adjacency — pair members included — is the
    zero-copy shared-memory mapping, so the worker neither walks the
    topology nor rebuilds the pair arrays (the reported deltas prove it).
    """
    from ..parallel.pool import compile_delta_probe, worker_network

    probe = compile_delta_probe()
    network, csr = worker_network(family, params, handle)
    responses = _run_requests(network, csr, requests)
    return responses, probe()
