"""Per-tenant weighted-fair queueing: deficit round robin over FIFOs.

The serving layer's admission problem is classic multi-tenancy: one hot
client submitting faster than the service drains must not starve many cold
clients submitting a trickle.  :class:`TenantQueues` solves the *ordering*
half — each tenant gets its own FIFO, and batches are drawn by deficit
round robin (DRR): every visit credits a tenant's deficit counter with its
weight and drains that many queued requests, so over any backlogged window a
tenant's served share converges to its weight share, while requests within
one tenant still serve strictly in arrival order.

The structure is deliberately free of asyncio and of the service itself:
it is a deterministic, synchronous scheduler (same pushes -> same takes,
bit for bit), which is what lets ``tests/service/test_fairqueue.py`` drive
random arrival sequences against an independent reference model and lets
the load generator pin fairness splits byte-for-byte across runs.

:class:`DiagnosisService` keeps one :class:`TenantQueues` per topology —
fairness is scheduled *within* each topology's coalescing window, feeding
the existing batch dispatcher, so DRR changes who fills a batch, never what
a batch is.
"""

from __future__ import annotations

from collections import deque
from typing import TypeVar

__all__ = ["TenantQueues"]

T = TypeVar("T")


class TenantQueues:
    """Per-tenant FIFOs drained by weighted deficit round robin.

    Parameters
    ----------
    weights:
        Optional ``tenant -> weight`` map.  A weight is a positive integer:
        per full DRR rotation a tenant with weight ``w`` may dequeue up to
        ``w`` requests (plus any deficit carried from short visits).
    default_weight:
        Weight of tenants absent from ``weights`` (default 1 — plain
        round robin).

    Tenants enter the rotation in first-arrival order and leave it when
    their FIFO drains; an idle tenant carries **no** deficit (classic DRR:
    credit accumulates only while backlogged, so a tenant cannot bank
    service during idle periods and burst past its share later).
    """

    def __init__(
        self,
        *,
        weights: dict[str, int] | None = None,
        default_weight: int = 1,
    ) -> None:
        if default_weight < 1:
            raise ValueError("default_weight must be a positive integer")
        self._weights = {}
        for tenant, weight in (weights or {}).items():
            if not isinstance(weight, int) or isinstance(weight, bool) or weight < 1:
                raise ValueError(
                    f"tenant weight must be a positive integer, "
                    f"got {tenant!r}={weight!r}"
                )
            self._weights[tenant] = weight
        self._default_weight = default_weight
        self._queues: dict[str, deque] = {}
        self._rotation: deque[str] = deque()  # backlogged tenants, visit order
        self._deficits: dict[str, int] = {}
        self._size = 0

    # ------------------------------------------------------------- inspection
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def weight(self, tenant: str) -> int:
        return self._weights.get(tenant, self._default_weight)

    def pending(self, tenant: str) -> int:
        """Queued requests of one tenant."""
        queue = self._queues.get(tenant)
        return len(queue) if queue is not None else 0

    def backlog(self) -> dict[str, int]:
        """``tenant -> queued count`` for every backlogged tenant."""
        return {tenant: len(queue) for tenant, queue in self._queues.items()}

    def tenants(self) -> list[str]:
        """Backlogged tenants in rotation (visit) order."""
        return list(self._rotation)

    # -------------------------------------------------------------- mutation
    def push(self, tenant: str, item: T) -> None:
        """Append ``item`` to ``tenant``'s FIFO (entering the rotation if idle)."""
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
            self._rotation.append(tenant)
            self._deficits[tenant] = 0
        queue.append(item)
        self._size += 1

    def take(self, limit: int) -> list[T]:
        """Dequeue up to ``limit`` items in deficit-round-robin order.

        Each tenant visit adds its weight to its deficit and drains that
        many items; a visit cut short by ``limit`` keeps its unspent deficit
        and resumes at the front of the rotation on the next call, so
        fairness holds *across* batch boundaries, not just within one.
        """
        taken: list[T] = []
        if limit <= 0:
            return taken
        while self._rotation and len(taken) < limit:
            tenant = self._rotation[0]
            queue = self._queues[tenant]
            # With unit cost a completed visit always ends at deficit 0, so a
            # non-zero deficit here means the previous take() was cut short by
            # its limit mid-visit: spend the remainder before crediting again.
            if self._deficits[tenant] == 0:
                self._deficits[tenant] += self.weight(tenant)
            while queue and self._deficits[tenant] > 0 and len(taken) < limit:
                taken.append(queue.popleft())
                self._deficits[tenant] -= 1
                self._size -= 1
            if not queue:
                # Drained: leave the rotation and forfeit any deficit.
                del self._queues[tenant]
                del self._deficits[tenant]
                self._rotation.popleft()
            elif self._deficits[tenant] == 0:
                self._rotation.rotate(-1)
            # else: limit reached with deficit left; stay at the front so the
            # next take() continues exactly where this one stopped.
        return taken
