"""Stdlib-only asyncio HTTP/1.1 frontend over :class:`DiagnosisService`.

The service core is transport-agnostic; this module is the wire.  One
:class:`HttpFrontend` owns an ``asyncio.start_server`` listener on the same
event loop as the service it fronts, speaking just enough HTTP/1.1 for
production serving — persistent connections, ``Content-Length`` framing,
JSON bodies — with three endpoints:

* ``POST /diagnose`` — a single request object, or ``{"requests": [...]}``
  for a batch.  Bodies are validated with positional error messages (the
  JSONL path's discipline: say *where*, not just *what*); a single request
  shed by admission control answers ``429 Too Many Requests`` with a
  ``Retry-After`` hint, and a batch reports shedding per item so one full
  queue never fails its body mates.
* ``GET /stats`` — the service's ``stats()`` snapshot plus the frontend's
  own connection/request/shed counters.
* ``GET /metrics`` — the same telemetry in Prometheus text exposition
  format (see :mod:`repro.service.prometheus`), with per-tenant labels.
* ``GET /dashboard`` — a stdlib-rendered auto-refreshing HTML view of
  ``/stats`` (see :mod:`repro.service.dashboard`).
* ``GET /healthz`` — liveness: tiny, allocation-free, always serveable.

Multi-tenancy rides the existing surfaces: a request body's ``tenant``
field names the tenant, and the ``X-Tenant`` header sets the default for
every request on that message that names none (body wins over header).

Shutdown is graceful: the listener closes first, requests already on a
connection finish and flush, then idle keep-alive connections are dropped.

:class:`HttpClient` is the matching minimal client (keep-alive, JSON) used
by the load generator's ``--http`` transport and the differential suite, so
the *real* wire path — parse, frame, serialise — is what gets verified
bit-identical against the direct pipeline.  :class:`BackgroundHttpServer`
runs a service + frontend on a dedicated thread/event loop for synchronous
callers (the benchmark, tests).
"""

from __future__ import annotations

import asyncio
import json
import threading
from urllib.parse import urlparse

from .dashboard import render_dashboard
from .requests import DEFAULT_TENANT, DiagnosisRequest, DiagnosisResponse, validate_tenant
from .service import DiagnosisService, RejectedError

__all__ = [
    "HttpError",
    "HttpFrontend",
    "HttpClient",
    "BackgroundHttpServer",
    "parse_http_target",
]

#: Framing bounds: a diagnosis request is a few hundred bytes; an explicit
#: Q_14 syndrome is ~1.3 MB hex.  16 MB accommodates large explicit batches
#: while keeping a misbehaving peer from ballooning the process.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024
#: Retry-After hint on 429 responses (seconds; coarse — HTTP has no ms).
RETRY_AFTER_SECONDS = 1

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """A request that must be answered with an HTTP error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def parse_http_target(target: str) -> tuple[str, int]:
    """``(host, port)`` from ``http://host:port``, ``host:port`` or ``:port``."""
    if "//" not in target:
        target = f"http://{target}"
    parsed = urlparse(target)
    if parsed.scheme != "http":
        raise ValueError(f"only http:// targets are supported, got {target!r}")
    if parsed.port is None:
        raise ValueError(f"target {target!r} needs an explicit port")
    return parsed.hostname or "127.0.0.1", parsed.port


def _connection_requests_close(header_value: str | None) -> bool:
    """Whether a ``Connection`` header asks to close after this message.

    HTTP header values are case-insensitive token lists (RFC 9110 §7.6.1):
    ``Close``, ``close, TE`` and friends all mean close.  Comparing the raw
    string against ``"close"`` — the old behaviour — silently kept such
    connections alive, leaving well-formed peers hanging on a socket they
    asked to be torn down.
    """
    if not header_value:
        return False
    return "close" in (
        token.strip().lower() for token in header_value.split(",")
    )


def _parse_body_requests(
    body: bytes, *, default_tenant: str = DEFAULT_TENANT
) -> tuple[list[DiagnosisRequest], bool]:
    """Parse a ``POST /diagnose`` body into requests (and whether batched).

    Error messages carry the position of the offending construct —
    ``body:line:column`` for JSON syntax, ``requests[i]`` for a bad batch
    entry — mirroring the JSONL file path's ``file:line`` discipline.
    ``default_tenant`` (the connection's ``X-Tenant`` header) applies to
    every entry that names no tenant of its own.
    """
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as exc:
        raise HttpError(
            400, f"body:{exc.lineno}:{exc.colno}: invalid JSON: {exc.msg}"
        )
    if isinstance(payload, dict) and "requests" in payload:
        unknown = set(payload) - {"requests"}
        if unknown:
            raise HttpError(
                400,
                f"batch body takes only 'requests', got extra fields "
                f"{sorted(unknown)}",
            )
        entries = payload["requests"]
        if not isinstance(entries, list) or not entries:
            raise HttpError(400, "'requests' must be a non-empty array")
        requests = []
        for position, entry in enumerate(entries):
            try:
                requests.append(
                    DiagnosisRequest.from_dict(entry, default_tenant=default_tenant)
                )
            except (ValueError, TypeError) as exc:
                raise HttpError(400, f"requests[{position}]: {exc}")
        return requests, True
    try:
        return [DiagnosisRequest.from_dict(payload, default_tenant=default_tenant)], False
    except (ValueError, TypeError) as exc:
        raise HttpError(400, str(exc))


class HttpFrontend:
    """The HTTP/1.1 listener serving one :class:`DiagnosisService`.

    The frontend does not own the service (several transports may share it);
    it owns the listener, the connections, and its own counters.  ``port=0``
    binds an ephemeral port, readable from :attr:`port` after
    :meth:`start`.
    """

    def __init__(
        self,
        service: DiagnosisService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: asyncio.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._closing = False
        self.connections_total = 0
        self.http_requests = 0
        self.shed = 0
        self.client_errors = 0

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self._requested_port
        )
        self._requested_port = self._server.sockets[0].getsockname()[1]

    @property
    def port(self) -> int:
        return self._requested_port

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def close(self) -> None:
        """Graceful drain: stop listening, finish in-flight requests, drop idle.

        New connections are refused immediately; requests already being
        served run to completion and flush their responses; keep-alive
        connections sitting idle between requests are then cancelled.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._idle.wait()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

    async def __aenter__(self) -> "HttpFrontend":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def stats(self) -> dict:
        return {
            "address": self.address,
            "connections_total": self.connections_total,
            "connections_open": len(self._connections),
            "requests": self.http_requests,
            "shed": self.shed,
            "client_errors": self.client_errors,
        }

    # ------------------------------------------------------------ connections
    def _on_connection(self, reader, writer) -> None:
        task = asyncio.create_task(self._serve_connection(reader, writer))
        self.connections_total += 1
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    return  # peer closed between requests: normal keep-alive end
                except asyncio.LimitOverrunError:
                    await self._respond(
                        writer, 413, {"error": "headers too large"}, close=True
                    )
                    return
                if len(head) > MAX_HEADER_BYTES:
                    await self._respond(
                        writer, 413, {"error": "headers too large"}, close=True
                    )
                    return
                keep_alive = await self._serve_one(reader, writer, head)
                if not keep_alive or self._closing:
                    return
        except asyncio.CancelledError:
            pass  # close() dropping an idle connection
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass  # peer vanished first; the connection is gone either way

    async def _serve_one(self, reader, writer, head: bytes) -> bool:
        """Parse and answer one request; returns whether to keep the connection."""
        self._inflight += 1
        self._idle.clear()
        try:
            try:
                method, path, headers = _parse_head(head)
            except HttpError as exc:
                await self._respond(
                    writer, exc.status, {"error": exc.message}, close=True
                )
                return False
            body = b""
            length = int(headers.get("content-length", "0") or "0")
            if length > MAX_BODY_BYTES:
                await self._respond(
                    writer, 413, {"error": f"body exceeds {MAX_BODY_BYTES} bytes"},
                    close=True,
                )
                return False
            if length:
                try:
                    body = await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    return False
            keep_alive = not _connection_requests_close(headers.get("connection"))
            self.http_requests += 1
            try:
                status, payload, content_type = await self._route(
                    method, path, body, headers
                )
            except HttpError as exc:
                if exc.status == 429:
                    self.shed += 1
                else:
                    self.client_errors += 1
                await self._respond(
                    writer, exc.status, {"error": exc.message},
                    close=not keep_alive,
                    retry_after=RETRY_AFTER_SECONDS if exc.status == 429 else None,
                )
                return keep_alive
            except Exception as exc:  # unexpected: surface, don't hang the peer
                await self._respond(
                    writer, 500,
                    {"error": f"{type(exc).__name__}: {exc}"}, close=True,
                )
                return False
            await self._respond(
                writer, status, payload, close=not keep_alive,
                content_type=content_type,
            )
            return keep_alive
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    # ----------------------------------------------------------------- routes
    async def _route(
        self, method: str, path: str, body: bytes, headers: dict[str, str]
    ) -> tuple[int, dict | str, str | None]:
        """Dispatch one request; ``(status, payload, content type)``.

        A ``dict`` payload is serialised as JSON (content type ``None`` means
        the JSON default); a ``str`` payload ships verbatim under the given
        content type (the Prometheus and dashboard routes).
        """
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, f"{path} only supports GET")
            return 200, {"ok": not self._closing, "pending": self.service._pending_total}, None
        if path == "/stats":
            if method != "GET":
                raise HttpError(405, f"{path} only supports GET")
            stats = self.service.stats()
            stats["http"] = self.stats()
            return 200, stats, None
        if path == "/metrics":
            if method != "GET":
                raise HttpError(405, f"{path} only supports GET")
            text = self.service.prometheus_text(http_stats=self.stats())
            return 200, text, "text/plain; version=0.0.4; charset=utf-8"
        if path == "/dashboard":
            if method != "GET":
                raise HttpError(405, f"{path} only supports GET")
            stats = self.service.stats()
            stats["http"] = self.stats()
            return 200, render_dashboard(stats), "text/html; charset=utf-8"
        if path == "/diagnose":
            if method != "POST":
                raise HttpError(405, f"{path} only supports POST")
            tenant_header = headers.get("x-tenant")
            if tenant_header is not None:
                try:
                    tenant_header = validate_tenant(tenant_header)
                except ValueError as exc:
                    raise HttpError(400, f"X-Tenant header: {exc}")
            status, payload = await self._diagnose(
                body, default_tenant=tenant_header or DEFAULT_TENANT
            )
            return status, payload, None
        raise HttpError(404, f"unknown path {path!r}; "
                             f"try /diagnose, /stats, /metrics, /dashboard "
                             f"or /healthz")

    async def _diagnose(
        self, body: bytes, *, default_tenant: str = DEFAULT_TENANT
    ) -> tuple[int, dict]:
        requests, batched = _parse_body_requests(body, default_tenant=default_tenant)
        if not batched:
            try:
                response = await self.service.submit(requests[0])
            except RejectedError as exc:
                raise HttpError(429, str(exc))
            except (ValueError, TypeError) as exc:
                # Validation the parser cannot see — an unknown family, or a
                # param name the network constructor rejects (TypeError) —
                # surfaces at submit time; still the client's fault, not a 500.
                raise HttpError(400, str(exc))
            return 200, response.to_wire()
        outcomes = await asyncio.gather(
            *(self.service.submit(request) for request in requests),
            return_exceptions=True,
        )
        entries: list[dict] = []
        for position, outcome in enumerate(outcomes):
            if isinstance(outcome, DiagnosisResponse):
                entries.append(outcome.to_wire())
            elif isinstance(outcome, RejectedError):
                # Per-item shedding: a full queue never fails batch mates.
                self.shed += 1
                entries.append({"rejected": True, "error": str(outcome)})
            elif isinstance(outcome, (ValueError, TypeError)):
                self.client_errors += 1
                entries.append(
                    {"rejected": False,
                     "error": f"requests[{position}]: {outcome}"}
                )
            else:
                raise outcome  # BaseException/bugs: let the 500 handler see it
        return 200, {"responses": entries}

    # ------------------------------------------------------------- low level
    async def _respond(
        self,
        writer,
        status: int,
        payload: dict | str,
        *,
        close: bool = False,
        retry_after: int | None = None,
        content_type: str | None = None,
    ) -> None:
        if isinstance(payload, str):
            body = payload.encode()
        else:
            body = json.dumps(payload).encode()
            content_type = None
        headers = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type or 'application/json'}",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        if retry_after is not None:
            headers.append(f"Retry-After: {retry_after}")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode() + body)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # peer gone mid-response; nothing left to flush


def _parse_head(head: bytes) -> tuple[str, str, dict[str, str]]:
    """``(method, path, lowercase-header dict)`` from a raw request head."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes all bytes
        raise HttpError(400, "undecodable request head")
    request_line, _, rest = text.partition("\r\n")
    parts = request_line.split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {request_line!r}")
    method, path, _version = parts
    headers: dict[str, str] = {}
    for line in rest.split("\r\n"):
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    content_length = headers.get("content-length")
    if content_length is not None and not content_length.isdigit():
        raise HttpError(400, f"malformed Content-Length {content_length!r}")
    return method, path.split("?", 1)[0], headers


class HttpClient:
    """Minimal keep-alive HTTP/1.1 client (the loadgen's wire transport).

    One client maps to one persistent connection — exactly the shape of a
    closed-loop load client — reconnecting transparently if the server
    dropped the connection between requests.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass  # server hung up first; closed is what we wanted
            self._reader = self._writer = None

    async def __aenter__(self) -> "HttpClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict | str]:
        """One round trip; returns ``(status, parsed JSON body or raw text)``.

        ``headers`` adds extra request headers (e.g. ``{"X-Tenant": ...}``).
        """
        if self._writer is None:
            await self.connect()
        body = b"" if payload is None else json.dumps(payload).encode()
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"\r\n"
        ).encode()
        try:
            self._writer.write(head + body)
            await self._writer.drain()
            return await self._read_response()
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            # Server dropped the keep-alive connection (e.g. it restarted or
            # shed us mid-close): reconnect once and retry the round trip.
            await self.close()
            await self.connect()
            self._writer.write(head + body)
            await self._writer.drain()
            return await self._read_response()

    async def _read_response(self) -> tuple[int, dict | str]:
        head = await self._reader.readuntil(b"\r\n\r\n")
        text = head.decode("latin-1")
        status_line, _, rest = text.partition("\r\n")
        status = int(status_line.split()[1])
        headers: dict[str, str] = {}
        for line in rest.split("\r\n"):
            if line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await self._reader.readexactly(length) if length else b"{}"
        if _connection_requests_close(headers.get("connection")):
            await self.close()
        content_type = headers.get("content-type", "application/json")
        if content_type.split(";")[0].strip().lower() == "application/json":
            return status, json.loads(body)
        return status, body.decode()

    # ------------------------------------------------------------ conveniences
    async def diagnose(
        self, request: DiagnosisRequest
    ) -> tuple[int, DiagnosisResponse | dict]:
        """POST one request; 200 parses into a :class:`DiagnosisResponse`."""
        status, payload = await self.request("POST", "/diagnose", request.to_wire())
        if status == 200:
            return status, DiagnosisResponse.from_wire(payload)
        return status, payload

    async def stats(self) -> dict:
        status, payload = await self.request("GET", "/stats")
        if status != 200:
            raise HttpError(status, f"stats endpoint answered {status}: {payload}")
        return payload

    async def healthz(self) -> dict:
        status, payload = await self.request("GET", "/healthz")
        if status != 200:
            raise HttpError(status, f"healthz answered {status}: {payload}")
        return payload

    async def metrics_text(self) -> str:
        """Scrape ``GET /metrics``; returns the raw exposition text."""
        status, payload = await self.request("GET", "/metrics")
        if status != 200:
            raise HttpError(status, f"metrics answered {status}: {payload}")
        return payload


class BackgroundHttpServer:
    """A service + HTTP frontend on a dedicated thread (sync callers).

    The benchmark and tests drive HTTP clients from synchronous code via
    ``asyncio.run``; the server then needs its *own* event loop on its own
    thread.  The context manager builds the service inside that loop (via
    ``service_factory``), starts the frontend, and on exit drains both
    gracefully.  ``self.port`` is valid once ``__enter__`` returns.
    """

    def __init__(self, service_factory=None, *, host: str = "127.0.0.1",
                 port: int = 0, **service_kwargs) -> None:
        if service_factory is not None and service_kwargs:
            raise ValueError("pass a factory or service kwargs, not both")
        self._factory = service_factory or (
            lambda: DiagnosisService(**service_kwargs)
        )
        self.host = host
        self.port = port
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None
        self.final_stats: dict | None = None

    def __enter__(self) -> "BackgroundHttpServer":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            service = self._factory()
            frontend = HttpFrontend(service, host=self.host, port=self.port)
            await frontend.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.port = frontend.port
        self._ready.set()
        await self._stop.wait()
        await frontend.close()
        await service.close()
        stats = service.stats()
        stats["http"] = frontend.stats()
        self.final_stats = stats
        if service.store is not None:
            # The factory built the store on this thread (SQLite connections
            # are thread-affine), so it is closed here too.
            service.store.close()
