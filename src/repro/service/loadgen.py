"""Seeded closed-loop load generation for the diagnosis service.

``N`` simulated clients each issue ``M`` requests back to back (closed loop:
a client waits for its answer before sending the next), drawing topologies
and syndrome seeds from a deterministic per-client stream — the same
``SeedSequence``-spawned derivation the sweep layer uses, so a load run is
reproducible request for request at any concurrency.  A bounded seed pool
makes repeats a *feature*: the same ``(topology, seed)`` pair recurring
across clients is exactly what exercises in-flight coalescing and the
persistent result store.

:func:`run_load` drives an existing service; :func:`run_load_sync` is the
one-call form the CLI and ``benchmarks/bench_service.py`` use, building the
service (batched or naive), running the load under ``asyncio.run`` and
returning the :class:`LoadReport`.

:func:`run_fairness` is the adversarial multi-tenant harness: one *hot*
tenant fires its whole burst open-loop (no waiting, no retrying) against a
per-tenant admission quota, while several *cold* tenants trickle closed-loop
requests through the same service.  Because admission decisions happen in
``submit``'s synchronous prefix, the hot burst's shed split is a pure
function of submission order — :meth:`FairnessReport.split` is the
byte-comparable fingerprint two seeded runs must agree on — and every cold
request (per-tenant depth 1, under any quota) completes.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field, replace

import numpy as np

from ..parallel.seeding import spawn_seeds
from .requests import DEFAULT_TENANT, DiagnosisRequest, DiagnosisResponse, validate_tenant
from .service import DiagnosisService, RejectedError

__all__ = [
    "LoadSpec",
    "LoadReport",
    "FairnessSpec",
    "FairnessReport",
    "build_client_streams",
    "run_load",
    "run_load_http",
    "run_load_http_sync",
    "run_load_sync",
    "run_fairness",
    "run_fairness_sync",
]

#: The benchmark's default request mix (the acceptance workload): two
#: hypercube sizes and a permutation network, so batches of different
#: shapes interleave.
DEFAULT_MIX: tuple[tuple[str, dict], ...] = (
    ("hypercube", {"dimension": 12}),
    ("hypercube", {"dimension": 14}),
    ("star", {"n": 7}),
)


@dataclass(frozen=True)
class LoadSpec:
    """One load scenario (deterministic given its seed)."""

    instances: tuple[tuple[str, tuple[tuple[str, int], ...]], ...]
    clients: int = 4
    requests_per_client: int = 8
    seed: int = 0
    seed_pool: int = 8  # distinct syndrome seeds per topology (repeats exercise dedup)
    placement: str = "random"
    behavior: str = "random"
    fault_count: int | None = None
    tenant: str = DEFAULT_TENANT  # every generated request bills to this tenant

    @classmethod
    def from_mix(
        cls,
        mix=DEFAULT_MIX,
        *,
        clients: int = 4,
        requests_per_client: int = 8,
        seed: int = 0,
        seed_pool: int = 8,
        placement: str = "random",
        behavior: str = "random",
        fault_count: int | None = None,
        tenant: str = DEFAULT_TENANT,
    ) -> "LoadSpec":
        if clients < 1:
            raise ValueError("clients must be at least 1")
        if requests_per_client < 1:
            raise ValueError("requests must be at least 1")
        if seed_pool < 1:
            raise ValueError("seed_pool must be at least 1")
        instances = tuple(
            (family, tuple(sorted(dict(params).items()))) for family, params in mix
        )
        if not instances:
            raise ValueError("the request mix must name at least one instance")
        return cls(
            instances=instances,
            clients=clients,
            requests_per_client=requests_per_client,
            seed=seed,
            seed_pool=seed_pool,
            placement=placement,
            behavior=behavior,
            fault_count=fault_count,
            tenant=validate_tenant(tenant),
        )

    @property
    def total_requests(self) -> int:
        return self.clients * self.requests_per_client


def build_client_streams(spec: LoadSpec) -> list[list[DiagnosisRequest]]:
    """Every client's request sequence (deterministic, client-count stable).

    Client ``i``'s stream derives from ``spawn_seeds(spec.seed)[i]``, so
    adding clients never reshuffles existing ones.
    """
    streams: list[list[DiagnosisRequest]] = []
    for client_seed in spawn_seeds(spec.seed, spec.clients):
        rng = np.random.default_rng(client_seed)
        stream = []
        for _ in range(spec.requests_per_client):
            family, params = spec.instances[int(rng.integers(len(spec.instances)))]
            stream.append(
                DiagnosisRequest(
                    family=family,
                    params=params,
                    placement=spec.placement,
                    fault_count=spec.fault_count,
                    behavior=spec.behavior,
                    seed=int(rng.integers(spec.seed_pool)),
                    tenant=spec.tenant,
                )
            )
        streams.append(stream)
    return streams


@dataclass
class LoadReport:
    """Outcome of one load run."""

    clients: int
    requests: int
    wall_seconds: float
    responses: list[DiagnosisResponse] = field(repr=False, default_factory=list)
    stats: dict = field(default_factory=dict)
    mismatches: int = 0  # populated by verified runs only
    rejections: int = 0  # 429s absorbed by the HTTP transport's retry loop

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def errors(self) -> int:
        return sum(1 for response in self.responses if not response.ok)

    def source_counts(self) -> dict[str, int]:
        counts = {"computed": 0, "store": 0, "coalesced": 0}
        for response in self.responses:
            counts[response.source] += 1
        return counts

    def summary(self) -> dict:
        """The JSON block the CLI prints and the benchmark records."""
        return {
            "clients": self.clients,
            "requests": self.requests,
            "wall_seconds": round(self.wall_seconds, 3),
            "throughput_rps": round(self.throughput_rps, 2),
            "sources": self.source_counts(),
            "errors": self.errors,
            "mismatches": self.mismatches,
            "rejections": self.rejections,
            "stats": self.stats,
        }


async def run_load(service: DiagnosisService, spec: LoadSpec) -> LoadReport:
    """Drive ``spec`` against an existing service (closed-loop clients)."""
    streams = build_client_streams(spec)
    start = time.perf_counter()
    per_client = await asyncio.gather(
        *(service.serve_sequence(stream) for stream in streams)
    )
    wall = time.perf_counter() - start
    responses = [response for client in per_client for response in client]
    return LoadReport(
        clients=spec.clients,
        requests=len(responses),
        wall_seconds=wall,
        responses=responses,
        stats=service.stats(),
    )


async def run_load_http(
    spec: LoadSpec,
    host: str,
    port: int,
    *,
    retry_delay: float = 0.05,
    max_retries: int = 400,
) -> LoadReport:
    """Drive ``spec`` over the wire against a running HTTP frontend.

    Each closed-loop client holds one keep-alive connection — the natural
    HTTP shape of "a client".  A request shed with 429 is counted, backed
    off (``retry_delay``), and retried until admitted, so the report's
    responses stay position-aligned with :func:`build_client_streams` and
    ``--verify`` parity checks run unchanged over the real wire path.
    """
    from .http import HttpClient, HttpError

    streams = build_client_streams(spec)
    rejections = 0

    async def drive(stream: list[DiagnosisRequest]) -> list[DiagnosisResponse]:
        nonlocal rejections
        responses = []
        async with HttpClient(host, port) as client:
            for request in stream:
                for _attempt in range(max_retries):
                    status, outcome = await client.diagnose(request)
                    if status == 200:
                        responses.append(outcome)
                        break
                    if status == 429:
                        rejections += 1
                        await asyncio.sleep(retry_delay)
                        continue
                    raise HttpError(
                        status, f"{request.describe()} answered {status}: {outcome}"
                    )
                else:
                    raise HttpError(
                        429,
                        f"{request.describe()} still shed after "
                        f"{max_retries} retries",
                    )
        return responses

    start = time.perf_counter()
    per_client = await asyncio.gather(*(drive(stream) for stream in streams))
    wall = time.perf_counter() - start
    async with HttpClient(host, port) as client:
        stats = await client.stats()
    responses = [response for client_responses in per_client
                 for response in client_responses]
    return LoadReport(
        clients=spec.clients,
        requests=len(responses),
        wall_seconds=wall,
        responses=responses,
        stats=stats,
        rejections=rejections,
    )


def run_load_http_sync(
    spec: LoadSpec,
    target: str,
    *,
    verify: bool = False,
    retry_delay: float = 0.05,
) -> LoadReport:
    """One-call HTTP load run against ``target`` (``http://host:port``)."""
    from .http import parse_http_target

    host, port = parse_http_target(target)
    report = asyncio.run(run_load_http(spec, host, port, retry_delay=retry_delay))
    if verify:
        verify_against_direct(spec, report)
    return report


def verify_against_direct(spec: LoadSpec, report: LoadReport) -> int:
    """Check every served answer against the plain pipeline.

    Distinct requests are verified once (the stream repeats by design);
    returns — and records on the report — the number of mismatching
    responses.  A mismatch means the serving layer changed an answer, which
    the differential suite treats as a hard failure.
    """
    from .executor import resolve_topology, run_direct
    from .requests import request_key

    expected: dict[str, DiagnosisResponse] = {}
    topologies: dict[str, tuple] = {}
    requests = [r for stream in build_client_streams(spec) for r in stream]
    mismatches = 0
    for request, response in zip(requests, report.responses):
        key = request_key(request)
        if key not in expected:
            topo = request.topology_key
            if topo not in topologies:
                topologies[topo] = resolve_topology(
                    request.family, request.network_kwargs
                )
            network, csr = topologies[topo]
            expected[key] = run_direct(request, network=network, csr=csr)
        reference = expected[key]
        if (response.faulty, response.healthy_root, response.lookups,
                response.error) != (
                reference.faulty, reference.healthy_root, reference.lookups,
                reference.error):
            mismatches += 1
    report.mismatches = mismatches
    return mismatches


def run_load_sync(
    spec: LoadSpec,
    *,
    naive: bool = False,
    pool=None,
    store=None,
    topology_cache_capacity: int | None = None,
    max_batch_size: int = 64,
    batch_delay: float = 0.002,
    verify: bool = False,
) -> LoadReport:
    """Build a service for ``spec``, run the load, and return the report.

    ``naive=True`` configures the one-at-a-time baseline: no coalescing, no
    topology cache, no store — every request is served from scratch, the way
    a fresh CLI invocation would.
    """
    if naive:
        service = DiagnosisService(
            pool=pool, coalesce=False, topology_cache_capacity=0, store=None,
        )
    else:
        capacity = 16 if topology_cache_capacity is None else topology_cache_capacity
        service = DiagnosisService(
            pool=pool,
            coalesce=True,
            max_batch_size=max_batch_size,
            batch_delay=batch_delay,
            topology_cache_capacity=capacity,
            store=store,
        )

    async def _run() -> LoadReport:
        async with service:
            return await run_load(service, spec)

    report = asyncio.run(_run())
    if verify:
        verify_against_direct(spec, report)
    return report


# --------------------------------------------------------------------------
# Adversarial multi-tenant fairness harness
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class FairnessSpec:
    """One hot tenant's open-loop burst vs many cold closed-loop tenants.

    The hot tenant submits ``hot_requests`` all at once and never retries a
    shed; each of ``cold_tenants`` cold tenants runs a closed-loop stream of
    ``cold_requests_per_tenant`` requests.  ``max_queue_per_tenant`` is the
    quota the burst slams into.  ``batch_delay`` must comfortably exceed the
    time to submit the burst (the default 50 ms is thousands of submissions'
    worth) so the whole burst meets admission control before any dispatch
    frees a slot — that is what makes the shed split a pure function of
    submission order.
    """

    instances: tuple[tuple[str, tuple[tuple[str, int], ...]], ...]
    hot_tenant: str = "hot"
    cold_tenants: int = 4
    hot_requests: int = 32
    cold_requests_per_tenant: int = 4
    max_queue_per_tenant: int = 4
    tenant_weights: tuple[tuple[str, int], ...] = ()
    seed: int = 0
    seed_pool: int = 8
    max_batch_size: int = 8
    batch_delay: float = 0.05

    @classmethod
    def from_mix(
        cls,
        mix=DEFAULT_MIX,
        *,
        hot_tenant: str = "hot",
        cold_tenants: int = 4,
        hot_requests: int = 32,
        cold_requests_per_tenant: int = 4,
        max_queue_per_tenant: int = 4,
        tenant_weights: dict[str, int] | None = None,
        seed: int = 0,
        seed_pool: int = 8,
        max_batch_size: int = 8,
        batch_delay: float = 0.05,
    ) -> "FairnessSpec":
        if cold_tenants < 1:
            raise ValueError("cold_tenants must be at least 1")
        if hot_requests < 1 or cold_requests_per_tenant < 1:
            raise ValueError("request counts must be at least 1")
        if max_queue_per_tenant < 1:
            raise ValueError("max_queue_per_tenant must be at least 1")
        instances = tuple(
            (family, tuple(sorted(dict(params).items()))) for family, params in mix
        )
        if not instances:
            raise ValueError("the request mix must name at least one instance")
        return cls(
            instances=instances,
            hot_tenant=validate_tenant(hot_tenant),
            cold_tenants=cold_tenants,
            hot_requests=hot_requests,
            cold_requests_per_tenant=cold_requests_per_tenant,
            max_queue_per_tenant=max_queue_per_tenant,
            tenant_weights=tuple(sorted((tenant_weights or {}).items())),
            seed=seed,
            seed_pool=seed_pool,
            max_batch_size=max_batch_size,
            batch_delay=batch_delay,
        )

    def cold_tenant(self, index: int) -> str:
        return f"cold-{index:02d}"

    def streams(self) -> tuple[list[DiagnosisRequest], list[list[DiagnosisRequest]]]:
        """``(hot burst, cold streams)`` — deterministic given the seed.

        Client 0 of the underlying derivation is the hot tenant; clients
        ``1..cold_tenants`` are the cold tenants, so the request content
        never depends on how many tenants compete.
        """
        base = LoadSpec(
            instances=self.instances,
            clients=1 + self.cold_tenants,
            requests_per_client=max(
                self.hot_requests, self.cold_requests_per_tenant
            ),
            seed=self.seed,
            seed_pool=self.seed_pool,
        )
        raw = build_client_streams(base)
        hot = [
            replace(request, tenant=self.hot_tenant)
            for request in raw[0][: self.hot_requests]
        ]
        cold = [
            [
                replace(request, tenant=self.cold_tenant(index))
                for request in stream[: self.cold_requests_per_tenant]
            ]
            for index, stream in enumerate(raw[1:])
        ]
        return hot, cold


@dataclass
class FairnessReport:
    """Outcome of one adversarial fairness run."""

    spec: FairnessSpec = field(repr=False, default=None)
    hot_served: int = 0
    hot_shed_indices: tuple[int, ...] = ()
    cold_served: dict[str, int] = field(default_factory=dict)
    cold_expected: dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    stats: dict = field(default_factory=dict, repr=False)

    @property
    def hot_shed(self) -> int:
        return len(self.hot_shed_indices)

    @property
    def cold_completion(self) -> float:
        """Fraction of cold requests that completed (the headline number)."""
        expected = sum(self.cold_expected.values())
        return sum(self.cold_served.values()) / expected if expected else 1.0

    def split(self) -> dict:
        """The deterministic fingerprint of the run.

        Only submission-order facts appear here — which hot indices were
        shed, and how many requests each tenant got served — never timing or
        response sources, so two runs of the same spec must produce
        byte-identical ``json.dumps(report.split(), sort_keys=True)``.
        """
        return {
            "hot_tenant": self.spec.hot_tenant,
            "hot_requests": self.spec.hot_requests,
            "hot_served": self.hot_served,
            "hot_shed_indices": list(self.hot_shed_indices),
            "cold_served": dict(sorted(self.cold_served.items())),
        }

    def summary(self) -> dict:
        """The JSON block the CLI prints and the benchmark records."""
        return {
            "hot_tenant": self.spec.hot_tenant,
            "hot_requests": self.spec.hot_requests,
            "hot_served": self.hot_served,
            "hot_shed": self.hot_shed,
            "cold_tenants": self.spec.cold_tenants,
            "cold_requests": sum(self.cold_expected.values()),
            "cold_completion": self.cold_completion,
            "max_queue_per_tenant": self.spec.max_queue_per_tenant,
            "wall_seconds": round(self.wall_seconds, 3),
        }


async def run_fairness(
    spec: FairnessSpec, *, pool=None, store=None
) -> FairnessReport:
    """Run the adversarial mix on a fresh service; see :class:`FairnessSpec`.

    The hot burst's submissions are scheduled (in order) before any cold
    submission, so its shed split depends only on the spec.
    """
    hot_stream, cold_streams = spec.streams()
    service = DiagnosisService(
        pool=pool,
        store=store,
        coalesce=True,
        max_batch_size=spec.max_batch_size,
        batch_delay=spec.batch_delay,
        max_queue_per_tenant=spec.max_queue_per_tenant,
        tenant_weights=dict(spec.tenant_weights) or None,
    )
    async with service:
        start = time.perf_counter()
        hot_burst = asyncio.gather(
            *(service.submit(request) for request in hot_stream),
            return_exceptions=True,
        )
        cold_runs = asyncio.gather(
            *(service.serve_sequence(stream) for stream in cold_streams)
        )
        hot_outcomes, cold_outcomes = await asyncio.gather(hot_burst, cold_runs)
        wall = time.perf_counter() - start

        shed = []
        served = 0
        for index, outcome in enumerate(hot_outcomes):
            if isinstance(outcome, RejectedError):
                shed.append(index)
            elif isinstance(outcome, DiagnosisResponse):
                served += 1
            else:
                raise outcome  # a bug, not an admission decision
        report = FairnessReport(
            spec=spec,
            hot_served=served,
            hot_shed_indices=tuple(shed),
            cold_served={
                spec.cold_tenant(index): len(responses)
                for index, responses in enumerate(cold_outcomes)
            },
            cold_expected={
                spec.cold_tenant(index): len(stream)
                for index, stream in enumerate(cold_streams)
            },
            wall_seconds=wall,
            stats=service.stats(),
        )
    return report


def run_fairness_sync(
    spec: FairnessSpec, *, pool=None, store=None
) -> FairnessReport:
    """One-call form of :func:`run_fairness` (``asyncio.run`` wrapper)."""
    return asyncio.run(run_fairness(spec, pool=pool, store=store))
