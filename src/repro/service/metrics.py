"""Service telemetry: histograms, counters and the ``stats`` snapshot.

Everything the service wants to know about itself in production — how long
requests wait, how big coalesced batches get, how deep the queue runs, how
often the caches and the result store answer — accumulates here and comes
out of :meth:`ServiceMetrics.snapshot`, the dict behind the ``stats``
endpoint (``DiagnosisService.stats()`` and the CLI's ``--stats-json``).

:class:`Histogram` keeps exact counts in geometric buckets, so percentile
estimates need no stored samples and the memory footprint is a few dozen
integers however many requests pass through.
"""

from __future__ import annotations

import math

__all__ = ["Histogram", "ServiceMetrics", "TENANT_COUNTERS", "WORKER_COUNTERS"]


class Histogram:
    """A geometric-bucket histogram with exact count/sum/min/max.

    Buckets grow by ``growth`` per step from ``smallest`` (values at or
    below ``smallest`` share the first bucket), giving ~9% relative error
    on quantile estimates at the default growth — plenty for latency and
    batch-size telemetry.
    """

    def __init__(self, *, smallest: float = 1e-5, growth: float = 1.2) -> None:
        if smallest <= 0 or growth <= 1:
            raise ValueError("smallest must be positive and growth > 1")
        self.smallest = smallest
        self.growth = growth
        self._counts: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def _bucket(self, value: float) -> int:
        """Index of the bucket covering ``value``.

        Bucket ``i`` covers ``(_bucket_upper(i - 1), _bucket_upper(i)]`` with
        bucket 0 taking everything at or below ``smallest``.  The log-ratio
        formula alone can land a value *on* a boundary one bucket off (the
        quotient sits within one ulp of an integer and truncation goes either
        way depending on platform/libm), shifting percentile estimates, so
        the candidate index is nudged until the bracket actually holds.
        """
        if value <= self.smallest:
            return 0
        index = 1 + int(math.log(value / self.smallest) / math.log(self.growth))
        while index > 1 and value <= self._bucket_upper(index - 1):
            index -= 1
        while value > self._bucket_upper(index):
            index += 1
        return index

    def _bucket_upper(self, index: int) -> float:
        return self.smallest * self.growth ** index

    def record(self, value: float) -> None:
        value = float(value)
        if value < 0:
            raise ValueError("histogram values must be non-negative")
        index = self._bucket(value)
        self._counts[index] = self._counts.get(index, 0) + 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile observation."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be within [0, 1]")
        if not self.count:
            return 0.0
        rank = q * (self.count - 1)
        seen = 0
        for index in sorted(self._counts):
            seen += self._counts[index]
            if seen > rank:
                upper = self._bucket_upper(index)
                # Clamp to observed extremes: the top bucket's upper bound can
                # overshoot max, and bucket 0 undershoots a min above smallest.
                return max(min(upper, self.max), self.min)
        return self.max  # pragma: no cover - unreachable (seen ends at count)

    def summary(self, *, scale: float = 1.0, digits: int = 3) -> dict:
        """Snapshot dict; ``scale`` converts units (e.g. 1e3 for s -> ms)."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": round(self.mean * scale, digits),
            "p50": round(self.quantile(0.50) * scale, digits),
            "p90": round(self.quantile(0.90) * scale, digits),
            "p99": round(self.quantile(0.99) * scale, digits),
            "min": round(self.min * scale, digits),
            "max": round(self.max * scale, digits),
        }


#: Counter names of one tenant's accounting row (see
#: :meth:`ServiceMetrics.tenant`); ``admitted`` counts every request that
#: was not shed (store hits and coalesced joins included), ``rejected``
#: counts sheds, and the three source counters sum to the served total.
TENANT_COUNTERS = (
    "admitted", "rejected", "computed", "store_hits", "coalesced", "errors",
)

#: Counter names of one fabric worker's accounting row (see
#: :meth:`ServiceMetrics.worker`): ``dispatched`` leases sent to it,
#: ``completed`` leases it answered first, ``retried`` lease timeouts while
#: it held the lease, ``requeued`` leases taken back because it died (or
#: reported a terminal error), ``evictions`` — how many times it was
#: declared dead (EOF or missed heartbeats) — and ``errors``, terminal
#: error frames it reported against a lease.
WORKER_COUNTERS = (
    "dispatched", "completed", "retried", "requeued", "evictions", "errors",
)


class ServiceMetrics:
    """All counters and histograms of one :class:`DiagnosisService`.

    The global counters aggregate across tenants; :attr:`tenants` keeps one
    small counter row per tenant name seen, which is what the Prometheus
    exporter turns into ``{tenant="..."}``-labelled series and the fairness
    load generator pins its splits against.
    """

    def __init__(self) -> None:
        self.requests = 0
        self.computed = 0
        self.store_hits = 0
        self.coalesced_duplicates = 0
        self.rejected = 0
        self.errors = 0
        self.batches = 0
        self.coalesced_batches = 0  # batches serving >1 request
        self.worker_compiles = 0
        self.worker_pair_builds = 0
        #: batches the fabric declined (no live workers / all retries spent)
        #: that fell through to the local or pooled execution path
        self.fabric_fallbacks = 0
        #: per-tenant counter rows, keyed by tenant name (insertion order =
        #: first-seen order; the snapshot sorts for stable output)
        self.tenants: dict[str, dict[str, int]] = {}
        #: per-fabric-worker counter rows, keyed by worker id — populated by
        #: the :class:`~repro.fabric.coordinator.FabricCoordinator` sharing
        #: this metrics object; empty for services without a fabric
        self.workers: dict[str, dict[str, int]] = {}
        #: end-to-end seconds from submit to response, per request
        self.latency = Histogram()
        #: seconds a batch's requests waited before dispatch
        self.queue_wait = Histogram()
        #: post-slicing stacked-kernel width per executed batch (requests
        #: whose syndrome failed to construct never reach the kernel)
        self.batch_size = Histogram(smallest=1.0, growth=1.5)
        #: pending requests observed at each enqueue (depth *before* adding)
        self.queue_depth = Histogram(smallest=1.0, growth=1.5)

    # ------------------------------------------------------------- recorders
    def tenant(self, tenant: str) -> dict[str, int]:
        """The counter row of one tenant (created zeroed on first touch)."""
        row = self.tenants.get(tenant)
        if row is None:
            row = self.tenants[tenant] = dict.fromkeys(TENANT_COUNTERS, 0)
        return row

    def worker(self, worker_id: str) -> dict[str, int]:
        """The counter row of one fabric worker (created zeroed on first touch)."""
        row = self.workers.get(worker_id)
        if row is None:
            row = self.workers[worker_id] = dict.fromkeys(WORKER_COUNTERS, 0)
        return row

    def record_enqueue(self, depth: int, *, tenant: str = "default") -> None:
        self.requests += 1
        self.queue_depth.record(depth)
        self.tenant(tenant)["admitted"] += 1

    def record_rejection(self, depth: int, *, tenant: str = "default") -> None:
        """A request shed by admission control at the observed queue depth."""
        self.requests += 1
        self.rejected += 1
        self.queue_depth.record(depth)
        self.tenant(tenant)["rejected"] += 1

    def record_batch(
        self,
        size: int,
        *,
        compiles: int,
        pair_builds: int,
        kernel_width: int | None = None,
    ) -> None:
        """One executed batch of ``size`` coalesced requests.

        ``kernel_width`` is how many of them actually reached the stacked
        diagnosis kernel (post-slicing, minus construction failures); that is
        what the ``batch_size`` histogram records — a width-0 batch (every
        syndrome failed to construct) still counts as a batch but records no
        histogram sample.  Callers without a kernel report fall back to
        ``size``.
        """
        self.batches += 1
        if size > 1:
            self.coalesced_batches += 1
        width = size if kernel_width is None else kernel_width
        if width > 0:
            self.batch_size.record(width)
        self.worker_compiles += compiles
        self.worker_pair_builds += pair_builds

    def record_response(self, source: str, latency_seconds: float, *,
                        ok: bool = True, tenant: str = "default") -> None:
        self.latency.record(latency_seconds)
        row = self.tenant(tenant)
        if source == "computed":
            self.computed += 1
            row["computed"] += 1
        elif source == "store":
            self.store_hits += 1
            row["store_hits"] += 1
        elif source == "coalesced":
            self.coalesced_duplicates += 1
            row["coalesced"] += 1
        else:
            raise ValueError(f"unknown response source {source!r}")
        if not ok:
            self.errors += 1
            row["errors"] += 1

    # -------------------------------------------------------------- snapshot
    def snapshot(self) -> dict:
        """The ``stats`` endpoint body (plain JSON-serialisable dict)."""
        return {
            "requests": self.requests,
            "computed": self.computed,
            "store_hits": self.store_hits,
            "coalesced_duplicates": self.coalesced_duplicates,
            "rejected": self.rejected,
            "errors": self.errors,
            "batches": self.batches,
            "coalesced_batches": self.coalesced_batches,
            "mean_batch_size": round(self.batch_size.mean, 3),
            "worker_compiles": self.worker_compiles,
            "worker_pair_builds": self.worker_pair_builds,
            "fabric_fallbacks": self.fabric_fallbacks,
            "latency_ms": self.latency.summary(scale=1e3),
            "queue_wait_ms": self.queue_wait.summary(scale=1e3),
            "batch_size": self.batch_size.summary(digits=1),
            "queue_depth": self.queue_depth.summary(digits=1),
            "tenants": {
                tenant: {**row, "served": row["computed"] + row["store_hits"]
                         + row["coalesced"]}
                for tenant, row in sorted(self.tenants.items())
            },
            "workers": {
                worker: dict(row)
                for worker, row in sorted(self.workers.items())
            },
        }
