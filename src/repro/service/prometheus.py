"""Prometheus text-format exporter over :class:`ServiceMetrics`.

Operators scrape, they do not parse bespoke JSON: this module renders the
service's existing counter/histogram machinery into the Prometheus text
exposition format (version 0.0.4) behind ``GET /metrics``, with per-tenant
labels on the admitted/shed/served counters the fair-queueing edge
maintains.  Nothing is re-measured — every series is a view over the same
:class:`~repro.service.metrics.ServiceMetrics` state the ``/stats`` JSON
snapshot reads, so the two surfaces cannot disagree.

The geometric :class:`~repro.service.metrics.Histogram` maps directly onto
a Prometheus histogram: each occupied bucket's upper bound becomes an ``le``
label and counts are exported *cumulatively*, with the mandatory ``+Inf``
bucket, ``_sum`` and ``_count`` series.  Quantiles are then the scraper's
job (``histogram_quantile``), exactly as Prometheus intends.

:func:`parse_metrics_text` is the matching minimal parser/checker — enough
of the exposition format to validate structure (HELP/TYPE discipline, label
syntax, cumulative bucket monotonicity, ``_count`` = ``+Inf``) and to read
sample values back.  Tests and the CI smoke leg use it to round-trip the
exporter's output and cross-check it against ``/stats``.
"""

from __future__ import annotations

import math
import re

from .metrics import Histogram, ServiceMetrics

__all__ = ["render_metrics", "parse_metrics_text", "MetricsParseError"]

_PREFIX = "repro"

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')
    )


def _format_value(value: float) -> str:
    """A float in the shortest form the text format accepts."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Writer:
    """Accumulates one metric family at a time (HELP/TYPE then samples)."""

    def __init__(self) -> None:
        self._lines: list[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        self._lines.append(f"# HELP {_PREFIX}_{name} {help_text}")
        self._lines.append(f"# TYPE {_PREFIX}_{name} {kind}")

    def sample(
        self,
        name: str,
        value: float,
        labels: dict[str, str] | None = None,
        *,
        suffix: str = "",
    ) -> None:
        label_text = ""
        if labels:
            inner = ",".join(
                f'{label}="{_escape_label(text)}"'
                for label, text in labels.items()
            )
            label_text = f"{{{inner}}}"
        self._lines.append(
            f"{_PREFIX}_{name}{suffix}{label_text} {_format_value(value)}"
        )

    def histogram(self, name: str, histogram: Histogram, help_text: str) -> None:
        """One Histogram as a cumulative-bucket Prometheus histogram."""
        self.family(name, "histogram", help_text)
        cumulative = 0
        for index in sorted(histogram._counts):
            cumulative += histogram._counts[index]
            upper = histogram._bucket_upper(index)
            self.sample(
                name, cumulative, {"le": _format_value(upper)},
                suffix="_bucket",
            )
        self.sample(
            name, histogram.count, {"le": "+Inf"}, suffix="_bucket"
        )
        self.sample(name, histogram.total, suffix="_sum")
        self.sample(name, histogram.count, suffix="_count")

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def render_metrics(
    metrics: ServiceMetrics,
    *,
    pending: int | None = None,
    pending_by_tenant: dict[str, int] | None = None,
    cache_stats: dict | None = None,
    store_stats: dict | None = None,
    http_stats: dict | None = None,
    fabric_stats: dict | None = None,
) -> str:
    """The ``GET /metrics`` body for one service's telemetry.

    ``cache_stats``/``store_stats``/``http_stats``/``fabric_stats`` take the
    same dicts the ``/stats`` snapshot embeds (topology-cache counters,
    result-store counters, HTTP frontend counters, fabric coordinator
    gauges); absent sections are simply omitted.  Per-fabric-worker counters
    render whenever ``metrics.workers`` has rows.
    """
    out = _Writer()

    out.family("requests", "counter",
               "Requests received (admitted + shed), all tenants.")
    out.sample("requests", metrics.requests, suffix="_total")
    out.family("responses", "counter",
               "Responses served, by how the answer was produced.")
    for source, count in (
        ("computed", metrics.computed),
        ("store", metrics.store_hits),
        ("coalesced", metrics.coalesced_duplicates),
    ):
        out.sample("responses", count, {"source": source}, suffix="_total")
    out.family("rejected", "counter",
               "Requests shed by admission control, all tenants.")
    out.sample("rejected", metrics.rejected, suffix="_total")
    out.family("response_errors", "counter",
               "Responses carrying a DiagnosisError, all tenants.")
    out.sample("response_errors", metrics.errors, suffix="_total")
    out.family("batches", "counter", "Batches dispatched.")
    out.sample("batches", metrics.batches, suffix="_total")
    out.family("coalesced_batches", "counter",
               "Dispatched batches that served more than one request.")
    out.sample("coalesced_batches", metrics.coalesced_batches, suffix="_total")
    out.family("worker_compiles", "counter",
               "Topology compilations observed inside batch execution "
               "(the zero-recompilation evidence).")
    out.sample("worker_compiles", metrics.worker_compiles, suffix="_total")
    out.family("worker_pair_builds", "counter",
               "Pair-array builds observed inside batch execution.")
    out.sample("worker_pair_builds", metrics.worker_pair_builds,
               suffix="_total")
    out.family("fabric_fallbacks", "counter",
               "Batches the fabric declined that fell through to the "
               "local/pooled execution path.")
    out.sample("fabric_fallbacks", metrics.fabric_fallbacks, suffix="_total")

    # ---------------------------------------------------- per-tenant counters
    tenants = sorted(metrics.tenants.items())
    out.family("tenant_admitted", "counter",
               "Requests admitted (incl. store hits and coalesced joins), "
               "per tenant.")
    for tenant, row in tenants:
        out.sample("tenant_admitted", row["admitted"], {"tenant": tenant},
                   suffix="_total")
    out.family("tenant_rejected", "counter",
               "Requests shed by admission control, per tenant.")
    for tenant, row in tenants:
        out.sample("tenant_rejected", row["rejected"], {"tenant": tenant},
                   suffix="_total")
    out.family("tenant_served", "counter",
               "Responses served per tenant, by answer source.")
    for tenant, row in tenants:
        for source, counter in (("computed", "computed"),
                                ("store", "store_hits"),
                                ("coalesced", "coalesced")):
            out.sample("tenant_served", row[counter],
                       {"tenant": tenant, "source": source}, suffix="_total")
    out.family("tenant_errors", "counter",
               "Error responses per tenant.")
    for tenant, row in tenants:
        out.sample("tenant_errors", row["errors"], {"tenant": tenant},
                   suffix="_total")

    # ---------------------------------------------- per-fabric-worker counters
    if metrics.workers:
        workers = sorted(metrics.workers.items())
        for counter, help_text in (
            ("dispatched", "Batch leases dispatched to each fabric worker."),
            ("completed",
             "Leases each fabric worker answered first (duplicates dropped)."),
            ("retried",
             "Lease timeouts while each fabric worker held the lease."),
            ("requeued",
             "Leases requeued off each fabric worker (death or terminal "
             "error)."),
            ("evictions",
             "Times each fabric worker was declared dead (EOF or missed "
             "heartbeats)."),
            ("errors",
             "Terminal error frames each fabric worker reported against "
             "a lease."),
        ):
            out.family(f"worker_{counter}", "counter", help_text)
            for worker, row in workers:
                out.sample(f"worker_{counter}", row[counter],
                           {"worker": worker}, suffix="_total")

    # ------------------------------------------------------------ histograms
    out.histogram("request_latency_seconds", metrics.latency,
                  "End-to-end seconds from submit to response.")
    out.histogram("queue_wait_seconds", metrics.queue_wait,
                  "Seconds a batched request waited before dispatch.")
    out.histogram("batch_width", metrics.batch_size,
                  "Stacked-kernel width of executed batches.")
    out.histogram("queue_depth", metrics.queue_depth,
                  "Pending requests observed at each enqueue.")

    # --------------------------------------------------------------- gauges
    if pending is not None:
        out.family("pending_requests", "gauge",
                   "Requests queued but not yet dispatched.")
        out.sample("pending_requests", pending)
    if pending_by_tenant:
        out.family("tenant_pending_requests", "gauge",
                   "Queued undispatched requests per tenant (the quota "
                   "admission control compares against).")
        for tenant, depth in sorted(pending_by_tenant.items()):
            out.sample("tenant_pending_requests", depth, {"tenant": tenant})

    if cache_stats is not None:
        out.family("topology_cache_entries", "gauge",
                   "Compiled topologies currently cached.")
        out.sample("topology_cache_entries", cache_stats["size"])
        out.family("topology_cache_events", "counter",
                   "Topology cache hits / misses / evictions.")
        for event in ("hits", "misses", "evictions"):
            out.sample("topology_cache_events", cache_stats[event],
                       {"event": event}, suffix="_total")

    if store_stats is not None:
        out.family("store_results", "gauge",
                   "Distinct results currently in the persistent store.")
        out.sample("store_results", store_stats["results"])
        out.family("store_events", "counter",
                   "Result-store hits / misses / writes / evictions.")
        for event in ("hits", "misses", "writes", "dedup_writes",
                      "expired_evictions", "lru_evictions",
                      "clock_skew_skips"):
            out.sample("store_events", store_stats.get(event, 0),
                       {"event": event}, suffix="_total")

    if http_stats is not None:
        out.family("http_connections_open", "gauge",
                   "Currently open HTTP connections.")
        out.sample("http_connections_open", http_stats["connections_open"])
        out.family("http_connections", "counter",
                   "HTTP connections accepted.")
        out.sample("http_connections", http_stats["connections_total"],
                   suffix="_total")
        out.family("http_requests", "counter", "HTTP requests parsed.")
        out.sample("http_requests", http_stats["requests"], suffix="_total")
        out.family("http_shed", "counter",
                   "HTTP requests answered 429 (admission shed).")
        out.sample("http_shed", http_stats["shed"], suffix="_total")
        out.family("http_client_errors", "counter",
                   "HTTP requests answered with a 4xx other than 429.")
        out.sample("http_client_errors", http_stats["client_errors"],
                   suffix="_total")

    if fabric_stats is not None:
        out.family("fabric_workers_live", "gauge",
                   "Fabric workers currently registered, alive and "
                   "connected.")
        out.sample("fabric_workers_live", fabric_stats["workers_live"])
        out.family("fabric_workers_known", "gauge",
                   "Fabric workers ever registered (alive or dead).")
        out.sample("fabric_workers_known", fabric_stats["workers_known"])
        out.family("fabric_outstanding_leases", "gauge",
                   "Batch leases dispatched to the fabric and not yet "
                   "resolved.")
        out.sample("fabric_outstanding_leases",
                   fabric_stats["outstanding_leases"])
        out.family("fabric_duplicate_completions", "counter",
                   "Result frames dropped because their lease was already "
                   "answered (duplicate-delivery / late-retry dedup).")
        out.sample("fabric_duplicate_completions",
                   fabric_stats["duplicate_completions"], suffix="_total")
        out.family("fabric_protocol_errors", "counter",
                   "Malformed or unexpected fabric frames received.")
        out.sample("fabric_protocol_errors",
                   fabric_stats["protocol_errors"], suffix="_total")

    return out.render()


class MetricsParseError(ValueError):
    """The exporter output violated the text exposition format."""


def parse_metrics_text(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse (and structurally validate) Prometheus text-format output.

    Returns ``{(metric name, sorted label items): value}``.  Raises
    :class:`MetricsParseError` on malformed lines, samples without a
    preceding ``# TYPE``, duplicate series, non-monotone cumulative
    histogram buckets, or a histogram whose ``_count`` disagrees with its
    ``+Inf`` bucket — the checks the CI smoke leg runs against a live
    ``/metrics`` scrape.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    types: dict[str, str] = {}
    helps: set[str] = set()
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _NAME_RE.match(parts[2]):
                raise MetricsParseError(f"line {number}: malformed HELP: {line!r}")
            if parts[2] in helps:
                raise MetricsParseError(
                    f"line {number}: duplicate HELP for {parts[2]!r}"
                )
            helps.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not _NAME_RE.match(parts[2]):
                raise MetricsParseError(f"line {number}: malformed TYPE: {line!r}")
            if parts[3] not in ("counter", "gauge", "histogram", "summary",
                                "untyped"):
                raise MetricsParseError(
                    f"line {number}: unknown metric type {parts[3]!r}"
                )
            if parts[2] in types:
                raise MetricsParseError(
                    f"line {number}: duplicate TYPE for {parts[2]!r}"
                )
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise MetricsParseError(f"line {number}: malformed sample: {line!r}")
        name = match.group("name")
        labels: dict[str, str] = {}
        label_text = match.group("labels")
        if label_text:
            position = 0
            while position < len(label_text):
                label_match = _LABEL_RE.match(label_text, position)
                if label_match is None:
                    raise MetricsParseError(
                        f"line {number}: malformed labels: {label_text!r}"
                    )
                labels[label_match.group("name")] = (
                    label_match.group("value")
                    .replace(r"\"", '"').replace(r"\n", "\n")
                    .replace("\\\\", "\\")
                )
                position = label_match.end()
                if position < len(label_text):
                    if label_text[position] != ",":
                        raise MetricsParseError(
                            f"line {number}: malformed labels: {label_text!r}"
                        )
                    position += 1
        base = name
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                break
        if base not in types and name not in types:
            raise MetricsParseError(
                f"line {number}: sample {name!r} has no preceding # TYPE"
            )
        try:
            value = float(match.group("value"))
        except ValueError:
            raise MetricsParseError(
                f"line {number}: bad sample value {match.group('value')!r}"
            )
        key = (name, tuple(sorted(labels.items())))
        if key in samples:
            raise MetricsParseError(f"line {number}: duplicate series {key!r}")
        samples[key] = value

    # Histogram structural checks: cumulative buckets must be monotone and
    # end at the +Inf bucket, which must equal the _count series.
    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets: dict[tuple[tuple[str, str], ...], list[tuple[float, float]]] = {}
        for (name, labels), value in samples.items():
            if name != f"{family}_bucket":
                continue
            label_map = dict(labels)
            upper_text = label_map.pop("le", None)
            if upper_text is None:
                raise MetricsParseError(
                    f"{family}: bucket sample without an 'le' label"
                )
            upper = math.inf if upper_text == "+Inf" else float(upper_text)
            buckets.setdefault(
                tuple(sorted(label_map.items())), []
            ).append((upper, value))
        for labels, series in buckets.items():
            series.sort(key=lambda pair: pair[0])
            counts = [count for _, count in series]
            if counts != sorted(counts):
                raise MetricsParseError(
                    f"{family}{dict(labels)}: cumulative buckets not monotone"
                )
            if series[-1][0] != math.inf:
                raise MetricsParseError(
                    f"{family}{dict(labels)}: missing +Inf bucket"
                )
            count_key = (f"{family}_count", labels)
            if count_key not in samples:
                raise MetricsParseError(f"{family}: missing _count series")
            if samples[count_key] != series[-1][1]:
                raise MetricsParseError(
                    f"{family}: _count {samples[count_key]} disagrees with "
                    f"+Inf bucket {series[-1][1]}"
                )
    return samples
