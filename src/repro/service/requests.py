"""Request/response model of the diagnosis service.

A :class:`DiagnosisRequest` names a topology (family + constructor params)
and a syndrome — either *seeded* (a fault placement, count, faulty-tester
behaviour and seed, from which the service regenerates the exact
:class:`~repro.backend.array_syndrome.ArraySyndrome` the direct pipeline
would build) or *explicit* (the raw flat syndrome buffer itself).  Both
forms are plain picklable primitives, so requests cross process boundaries
into :class:`~repro.parallel.pool.WorkerPool` workers unchanged.

Three canonical keys drive the serving layer:

* :func:`topology_key` — what coalescing groups by: requests sharing it run
  against one compiled topology in one batch;
* :func:`syndrome_digest` — SHA-256 of the flat syndrome buffer: the
  content address under which the result store files an answer;
* :func:`request_key` — the duplicate-suppression key: identical requests
  share one in-flight computation and one stored result.

Responses are bit-identical to a direct
:meth:`~repro.core.diagnosis.GeneralDiagnoser.diagnose` call on the same
inputs — the accusation set, healthy root and lookup count all match, which
``tests/differential`` pins across every registry family.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

__all__ = [
    "DEFAULT_TENANT",
    "DiagnosisRequest",
    "DiagnosisResponse",
    "topology_key",
    "request_key",
    "syndrome_digest",
    "validate_tenant",
    "encode_lease",
    "decode_lease",
    "encode_result",
    "decode_result",
]

#: The tenant a request belongs to when nothing names one — wire bodies,
#: JSONL lines and in-process callers that predate multi-tenancy all land
#: here, so single-tenant deployments keep exactly their old behaviour.
DEFAULT_TENANT = "default"

#: Characters a tenant name may use.  The bound keeps names safe as
#: Prometheus label values, HTTP header values and queue keys without any
#: per-surface escaping beyond the exporter's standard label escaping.
_TENANT_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._:@/-"
)
_TENANT_MAX_LENGTH = 64


def validate_tenant(tenant) -> str:
    """Check a tenant name (non-empty, bounded, label-safe); returns it."""
    if not isinstance(tenant, str) or not tenant:
        raise ValueError(
            f"tenant must be a non-empty string, got {tenant!r}"
        )
    if len(tenant) > _TENANT_MAX_LENGTH:
        raise ValueError(
            f"tenant name exceeds {_TENANT_MAX_LENGTH} characters: {tenant!r}"
        )
    bad = set(tenant) - _TENANT_CHARS
    if bad:
        raise ValueError(
            f"tenant {tenant!r} contains forbidden characters {sorted(bad)}; "
            f"allowed: letters, digits and ._:@/-"
        )
    return tenant


def topology_key(family: str, params) -> str:
    """Canonical ``family[name=value,...]`` key of one compiled topology."""
    items = sorted(dict(params).items())
    inner = ",".join(f"{name}={value}" for name, value in items)
    return f"{family}[{inner}]"


def syndrome_digest(buffer) -> str:
    """SHA-256 content address of a flat syndrome buffer."""
    return hashlib.sha256(bytes(buffer)).hexdigest()


@dataclass(frozen=True)
class DiagnosisRequest:
    """One diagnosis to perform (picklable primitives only).

    ``syndrome_bytes`` switches the request to explicit-syndrome form: the
    service diagnoses that exact buffer and the seeded fields
    (``placement``/``fault_count``/``behavior``/``seed``) are ignored.

    ``tenant`` names the client the request is billed to: admission quotas
    and the fair-queueing scheduler account per tenant, and the metrics
    surface labels counters with it.  It is deliberately **not** part of
    :func:`request_key` or :func:`topology_key` — identical work is identical
    work, so two tenants asking the same question still coalesce onto one
    computation and one stored row (neither consumes the other's quota).
    """

    family: str
    params: tuple[tuple[str, int], ...]
    placement: str = "random"
    fault_count: int | None = None  # None -> the network's diagnosability
    behavior: str = "random"
    seed: int = 0
    tenant: str = DEFAULT_TENANT
    syndrome_bytes: bytes | None = field(default=None, repr=False)

    @classmethod
    def seeded(
        cls,
        family: str,
        params: dict,
        *,
        placement: str = "random",
        fault_count: int | None = None,
        behavior: str = "random",
        seed: int = 0,
        tenant: str = DEFAULT_TENANT,
    ) -> "DiagnosisRequest":
        return cls(
            family=family,
            params=tuple(sorted(params.items())),
            placement=placement,
            fault_count=fault_count,
            behavior=behavior,
            seed=seed,
            tenant=validate_tenant(tenant),
        )

    @classmethod
    def from_syndrome(
        cls, family: str, params: dict, syndrome, *, tenant: str = DEFAULT_TENANT
    ) -> "DiagnosisRequest":
        """An explicit-syndrome request from an ``ArraySyndrome`` (or buffer)."""
        buffer = getattr(syndrome, "buffer", syndrome)
        return cls(
            family=family,
            params=tuple(sorted(params.items())),
            syndrome_bytes=bytes(buffer),
            tenant=validate_tenant(tenant),
        )

    @classmethod
    def from_dict(
        cls, payload: dict, *, default_tenant: str = DEFAULT_TENANT
    ) -> "DiagnosisRequest":
        """Parse the JSON form used by JSONL files and the HTTP frontend.

        ``syndrome_hex`` (hex-encoded flat buffer) switches the parsed
        request to explicit-syndrome form, mirroring :meth:`from_syndrome`.
        ``default_tenant`` is the tenant for bodies that name none — the HTTP
        frontend passes its ``X-Tenant`` header here, so a body-level
        ``tenant`` field always wins over the connection-level header.
        """
        if not isinstance(payload, dict):
            raise ValueError(f"request must be a JSON object, got {type(payload).__name__}")
        known = {"family", "params", "placement", "fault_count", "behavior",
                 "seed", "tenant", "syndrome_hex"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        if "family" not in payload:
            raise ValueError("request needs a 'family' field")
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise ValueError("'params' must be an object of name -> integer")
        for name, value in params.items():
            # bool is an int subclass; reject it explicitly.
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(
                    f"param {name!r} must be an integer, got {value!r}"
                )
        tenant = validate_tenant(payload.get("tenant", default_tenant))
        if payload.get("syndrome_hex") is not None:
            seeded_only = {"placement", "fault_count", "behavior", "seed"} & set(payload)
            if seeded_only:
                raise ValueError(
                    f"syndrome_hex is an explicit syndrome; it cannot combine "
                    f"with seeded fields {sorted(seeded_only)}"
                )
            try:
                buffer = bytes.fromhex(payload["syndrome_hex"])
            except (ValueError, TypeError) as exc:
                raise ValueError(f"bad syndrome_hex: {exc}")
            return cls.from_syndrome(
                payload["family"], dict(params), buffer, tenant=tenant
            )
        return cls.seeded(
            payload["family"],
            dict(params),
            placement=payload.get("placement", "random"),
            fault_count=payload.get("fault_count"),
            behavior=payload.get("behavior", "random"),
            seed=int(payload.get("seed", 0)),
            tenant=tenant,
        )

    def to_wire(self) -> dict:
        """The JSON object :meth:`from_dict` parses back (HTTP request body).

        The default tenant is omitted, keeping single-tenant wire bodies
        byte-identical to their pre-tenancy form.
        """
        if self.is_explicit:
            record = {
                "family": self.family,
                "params": dict(self.params),
                "syndrome_hex": self.syndrome_bytes.hex(),
            }
        else:
            record = {
                "family": self.family,
                "params": dict(self.params),
                "placement": self.placement,
                "fault_count": self.fault_count,
                "behavior": self.behavior,
                "seed": self.seed,
            }
        if self.tenant != DEFAULT_TENANT:
            record["tenant"] = self.tenant
        return record

    # ------------------------------------------------------------------- keys
    @property
    def network_kwargs(self) -> dict[str, int]:
        return dict(self.params)

    @property
    def topology_key(self) -> str:
        return topology_key(self.family, self.params)

    @property
    def is_explicit(self) -> bool:
        return self.syndrome_bytes is not None

    @property
    def key(self) -> str:
        """Duplicate-suppression key (see :func:`request_key`)."""
        return request_key(self)

    def describe(self) -> str:
        prefix = "" if self.tenant == DEFAULT_TENANT else f"[{self.tenant}] "
        if self.is_explicit:
            return (f"{prefix}{self.topology_key} "
                    f"syndrome@{syndrome_digest(self.syndrome_bytes)[:12]}")
        count = "delta" if self.fault_count is None else str(self.fault_count)
        return (f"{prefix}{self.topology_key} {self.placement}/{count} "
                f"{self.behavior} seed={self.seed}")


def request_key(request: DiagnosisRequest) -> str:
    """The key under which identical requests coalesce and dedup.

    Seeded requests key on their generation parameters (no topology work
    needed to recognise a repeat); explicit-syndrome requests key on the
    content digest of their buffer.  The tenant is deliberately absent:
    dedup is about the *work*, and a cross-tenant store hit or coalesced
    join consumes no queue slot from either tenant.
    """
    if request.is_explicit:
        return f"{request.topology_key}|sha256:{syndrome_digest(request.syndrome_bytes)}"
    return (f"{request.topology_key}|{request.placement}|{request.fault_count}"
            f"|{request.behavior}|{request.seed}")


@dataclass(frozen=True)
class DiagnosisResponse:
    """Outcome of one served request (picklable / JSON-serialisable).

    ``source`` records how the answer was produced: ``"computed"`` (ran in a
    batch), ``"store"`` (served from the persistent result store) or
    ``"coalesced"`` (shared an in-flight computation with an identical
    concurrent request).  ``error`` carries the stringified
    :class:`~repro.core.diagnosis.DiagnosisError` when the instance violates
    Theorem 1's hypotheses — exactly when the direct pipeline raises.
    """

    topology_key: str
    syndrome_digest: str
    faulty: tuple[int, ...]
    healthy_root: int | None
    lookups: int
    num_probes: int
    partition_level: int | None
    num_faults_injected: int | None = None
    error: str | None = None
    source: str = "computed"
    batch_size: int = 0
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def faulty_set(self) -> frozenset[int]:
        return frozenset(self.faulty)

    # ------------------------------------------------------------ store codec
    def to_payload(self) -> str:
        """JSON payload stored under ``(topology_key, syndrome_digest)``."""
        record = asdict(self)
        # Store only what re-serving needs; source/batch/latency are per-serve.
        for transient in ("source", "batch_size", "elapsed_seconds"):
            record.pop(transient)
        return json.dumps(record, sort_keys=True)

    @classmethod
    def from_payload(cls, payload: str) -> "DiagnosisResponse":
        record = json.loads(payload)
        record["faulty"] = tuple(record["faulty"])
        return cls(source="store", **record)

    # ------------------------------------------------------------- wire codec
    def to_wire(self) -> dict:
        """The full JSON object the HTTP frontend returns (all fields)."""
        return asdict(self)

    @classmethod
    def from_wire(cls, record: dict) -> "DiagnosisResponse":
        """Parse an HTTP response body back into a response object."""
        record = dict(record)
        record["faulty"] = tuple(record["faulty"])
        return cls(**record)


# --------------------------------------------------------------- fabric frames
# The worker fabric's data-plane frames reuse the wire codecs above: a *lease*
# ships one coalesced batch to a remote worker, a *result* brings the batch's
# responses (plus the executing process's compile/pair-build evidence) back.
# Lease ids are coordinator-assigned and stable across retries, so a late or
# duplicated result still names the lease it answers and the coordinator can
# dedup completions; the payloads themselves are exactly the HTTP wire form,
# which is what keeps fabric responses bit-identical to direct serving.

def encode_lease(lease_id: int, requests: "list[DiagnosisRequest]") -> dict:
    """The ``lease`` frame body dispatching one batch to a worker."""
    return {
        "kind": "lease",
        "lease": int(lease_id),
        "requests": [request.to_wire() for request in requests],
    }


def decode_lease(frame: dict) -> tuple[int, "list[DiagnosisRequest]"]:
    """Parse (and validate) a ``lease`` frame; ``(lease_id, requests)``."""
    if frame.get("kind") != "lease":
        raise ValueError(f"not a lease frame: kind={frame.get('kind')!r}")
    lease_id = frame.get("lease")
    if not isinstance(lease_id, int) or isinstance(lease_id, bool):
        raise ValueError(f"lease id must be an integer, got {lease_id!r}")
    bodies = frame.get("requests")
    if not isinstance(bodies, list) or not bodies:
        raise ValueError("lease frame needs a non-empty 'requests' list")
    requests = []
    for position, body in enumerate(bodies):
        try:
            requests.append(DiagnosisRequest.from_dict(body))
        except ValueError as exc:
            raise ValueError(f"lease requests[{position}]: {exc}") from None
    return lease_id, requests


#: Batch-execution statistics a result frame must carry (the serving layer's
#: zero-recompilation evidence travels the fabric too).
_RESULT_STATS = ("compiles", "pair_builds", "kernel_width")


def encode_result(
    lease_id: int, responses: "list[DiagnosisResponse]", stats: dict
) -> dict:
    """The ``result`` frame body answering one lease."""
    return {
        "kind": "result",
        "lease": int(lease_id),
        "responses": [response.to_wire() for response in responses],
        "stats": {name: int(stats[name]) for name in _RESULT_STATS},
    }


def decode_result(frame: dict) -> tuple[int, "list[DiagnosisResponse]", dict]:
    """Parse a ``result`` frame; ``(lease_id, responses, stats)``."""
    if frame.get("kind") != "result":
        raise ValueError(f"not a result frame: kind={frame.get('kind')!r}")
    lease_id = frame.get("lease")
    if not isinstance(lease_id, int) or isinstance(lease_id, bool):
        raise ValueError(f"lease id must be an integer, got {lease_id!r}")
    bodies = frame.get("responses")
    if not isinstance(bodies, list):
        raise ValueError("result frame needs a 'responses' list")
    responses = []
    for position, body in enumerate(bodies):
        try:
            responses.append(DiagnosisResponse.from_wire(body))
        except (TypeError, ValueError, KeyError) as exc:
            raise ValueError(f"result responses[{position}]: {exc}") from None
    raw_stats = frame.get("stats")
    if not isinstance(raw_stats, dict):
        raise ValueError("result frame needs a 'stats' object")
    try:
        stats = {name: int(raw_stats[name]) for name in _RESULT_STATS}
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"result stats: {exc!r}") from None
    return lease_id, responses, stats
