"""The asyncio diagnosis service: coalesce, batch, cache, remember.

:class:`DiagnosisService` accepts a stream of
:class:`~repro.service.requests.DiagnosisRequest` s and turns the per-request
pipeline into amortised batched work:

1. **Store check** — a request whose canonical key is already filed in the
   :class:`~repro.service.store.ResultStore` is answered from disk without
   touching a topology.
2. **In-flight coalescing** — identical concurrent requests share one
   computation: the first registers a future, the rest await it.
3. **Batch coalescing** — distinct requests on the *same topology* submitted
   within the coalescing window join one batch; the batch resolves its
   compiled topology once (through a bounded LRU) and executes as a single
   unit — in-process, or as one :class:`~repro.parallel.pool.WorkerPool`
   task mapping the topology (pair members included) out of shared memory.

Multi-tenancy sits across all three stages: every request carries a
``tenant``, each topology's queue is a per-tenant deficit-round-robin
structure (:class:`~repro.service.fairqueue.TenantQueues`) so one hot tenant
cannot starve cold ones out of a batch, ``max_queue_per_tenant`` bounds each
tenant's queued share (on top of the global ``max_queue_depth``), and every
counter the service keeps is also accounted per tenant.  Store hits and
in-flight coalesced joins consume **no** queue slot from any tenant — dedup
crosses tenant boundaries by design (the work is identical), only queueing
is partitioned.

Batches report their executing process's compile-count and pair-build
deltas; on the serving path both stay at zero — the PR-3 counters extended
into the serving layer, so "zero per-request recompilation" is measured,
not claimed.  Responses are bit-identical to direct
:meth:`~repro.core.diagnosis.GeneralDiagnoser.diagnose` calls (pinned by
``tests/differential``): the service reorders and amortises work, never
changes it.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from .cache import LRUCache
from .executor import resolve_topology, run_batch_local, run_batch_task, validate_request
from .fairqueue import TenantQueues
from .metrics import ServiceMetrics
from .requests import DiagnosisRequest, DiagnosisResponse
from .store import ResultStore

__all__ = ["DiagnosisService", "RejectedError"]


class RejectedError(RuntimeError):
    """A request shed by admission control.

    The in-process face of HTTP 429: the service answers immediately instead
    of queueing without bound, and the caller decides whether to back off and
    retry.  ``scope`` records which bound shed the request — ``"global"``
    (queue at ``max_queue_depth``) or ``"tenant"`` (the request's tenant at
    its ``max_queue_per_tenant`` quota).  Store hits and in-flight coalesced
    joins are never rejected — they consume no queue slot.
    """

    def __init__(
        self,
        depth: int,
        limit: int,
        *,
        scope: str = "global",
        tenant: str | None = None,
    ) -> None:
        if scope == "tenant":
            message = (f"tenant {tenant!r} queue full: {depth} requests "
                       f"pending (max_queue_per_tenant={limit})")
        else:
            message = (f"queue full: {depth} requests pending "
                       f"(max_queue_depth={limit})")
        super().__init__(message)
        self.depth = depth
        self.limit = limit
        self.scope = scope
        self.tenant = tenant


@dataclass
class _Pending:
    """One queued request and the machinery to answer it."""

    request: DiagnosisRequest
    key: str
    future: asyncio.Future
    enqueued_at: float


class DiagnosisService:
    """Async front end serving diagnosis requests in coalesced batches.

    Parameters
    ----------
    pool:
        Optional persistent :class:`~repro.parallel.pool.WorkerPool`; batches
        then execute as single pool tasks over shared-memory topologies.
        ``None`` executes batches in-process (on the default thread executor,
        so the event loop keeps accepting requests mid-batch).
    remote:
        Optional :class:`~repro.fabric.coordinator.FabricCoordinator` (or
        anything with its ``has_workers()``/``execute()`` face).  The
        dispatch policy then prefers the fabric whenever it has live
        workers, falling back to the pool / in-process path when it does
        not — or when it raises
        :class:`~repro.fabric.protocol.FabricUnavailableError` mid-batch
        (all workers died, retry budget exhausted), so fabric trouble
        degrades throughput, never loses a request.  Like the pool, the
        coordinator stays caller-owned: :meth:`close` does not close it.
    coalesce:
        The serving discipline.  ``True`` (default) enables in-flight
        duplicate sharing and the batching window; ``False`` serves every
        request individually the moment it arrives — the "naive
        one-at-a-time" baseline the benchmark compares against.
    max_batch_size:
        Dispatch a topology's batch immediately once this many requests are
        waiting (the window otherwise closes after ``batch_delay``).
    batch_delay:
        Coalescing window in seconds.  Even ``0.0`` yields to the event loop
        once, so requests submitted in the same tick (e.g. via
        ``asyncio.gather``) coalesce into one batch.
    topology_cache_capacity:
        Bound of the compiled-topology LRU.  ``0`` disables topology reuse
        entirely (every batch re-resolves — the naive baseline's setting).
    store:
        Optional :class:`~repro.service.store.ResultStore` for persistent
        request dedup.
    max_queue_depth:
        Admission control: a request that would push the number of queued
        (not yet dispatched) requests past this bound is refused with
        :class:`RejectedError` instead of enqueued — the service degrades
        under overload by shedding, not by growing an unbounded queue.
        ``None`` (default) admits everything.  Requests answered without a
        queue slot — store hits and in-flight coalesced duplicates — are
        never shed.
    max_queue_per_tenant:
        Per-tenant admission quota: a request whose tenant already has this
        many queued (not yet dispatched) requests is shed with
        :class:`RejectedError` (``scope="tenant"``), whatever the global
        queue looks like — one hot tenant exhausts its own quota, never the
        whole edge.  The global bound still applies on top.  Like the global
        bound, store hits and coalesced joins never consume a tenant's
        quota.
    tenant_weights:
        ``tenant -> positive integer weight`` for the per-topology
        deficit-round-robin scheduler; per DRR rotation a tenant may fill
        ``weight`` slots of a batch (unnamed tenants weigh 1).  Weights
        shape *ordering* under contention, quotas shape *admission*.
    """

    def __init__(
        self,
        *,
        pool=None,
        remote=None,
        coalesce: bool = True,
        max_batch_size: int = 64,
        batch_delay: float = 0.002,
        topology_cache_capacity: int = 16,
        store: ResultStore | None = None,
        metrics: ServiceMetrics | None = None,
        max_queue_depth: int | None = None,
        max_queue_per_tenant: int | None = None,
        tenant_weights: dict[str, int] | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if batch_delay < 0:
            raise ValueError("batch_delay must be non-negative")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1 (or None)")
        if max_queue_per_tenant is not None and max_queue_per_tenant < 1:
            raise ValueError(
                "max_queue_per_tenant must be at least 1 (or None)"
            )
        self.pool = pool
        self.remote = remote
        self.coalesce = coalesce
        self.max_batch_size = max_batch_size
        self.batch_delay = batch_delay
        self.max_queue_depth = max_queue_depth
        self.max_queue_per_tenant = max_queue_per_tenant
        # Validated eagerly (TenantQueues rejects bad weights) so a typo'd
        # weight map fails at construction, not at the first enqueue.
        self.tenant_weights = dict(tenant_weights or {})
        TenantQueues(weights=self.tenant_weights)
        self.store = store
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        # A coordinator built without explicit metrics adopts the service's,
        # so per-worker counters land in the same stats()/Prometheus snapshot.
        if remote is not None and getattr(remote, "owns_metrics", False):
            remote.metrics = self.metrics
            remote.owns_metrics = False
        self._topologies: LRUCache[str, tuple] = LRUCache(
            topology_cache_capacity, on_evict=self._on_topology_evicted
        )
        self._topology_locks: dict[str, asyncio.Lock] = {}
        #: cache-evicted (network, csr) entries whose shared-memory segment
        #: cannot be unlinked yet — a batch submitted before the eviction may
        #: still be queued with the handle; released once nothing is in
        #: flight on that exact compiled object (see _flush_retired)
        self._retired: list[tuple] = []
        self._inflight_csr: dict[int, int] = {}
        #: Serialises in-process batch execution: the compile/pair counters
        #: are process-global, so a topology resolving on one executor thread
        #: while a batch measures its delta on another would bleed into that
        #: delta.  Pool batches measure worker-side and need no lock.
        self._local_execution = asyncio.Lock()
        self._pending: dict[str, TenantQueues] = {}
        self._pending_total = 0
        #: queued-but-undispatched requests per tenant, across topologies —
        #: the number the per-tenant quota is enforced against
        self._tenant_pending: dict[str, int] = {}
        self._full: dict[str, asyncio.Event] = {}
        self._dispatchers: dict[str, asyncio.Task] = {}
        self._inflight: dict[str, asyncio.Future] = {}
        self._closed = False

    # -------------------------------------------------------------- lifecycle
    async def __aenter__(self) -> "DiagnosisService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def drain(self) -> None:
        """Wait until every queued request has been answered."""
        while self._dispatchers:
            await asyncio.gather(
                *list(self._dispatchers.values()), return_exceptions=True
            )

    async def close(self) -> None:
        """Refuse new requests, drain the queues, release published segments.

        The pool itself stays caller-owned (it may be serving other users);
        only the topology segments *this* service published are unlinked.
        """
        self._closed = True
        await self.drain()
        if self.pool is not None:
            self._flush_retired()
            for key in list(self._topologies):
                entry = self._topologies.get(key)
                if entry is not None:
                    self.pool.release_topology(entry[1])
            self._topologies.clear()

    # --------------------------------------------------- segment bookkeeping
    def _on_topology_evicted(self, topology: str, entry: tuple) -> None:
        """LRU eviction hook: queue the entry's shm segment for release.

        The per-topology resolution lock goes with it (unless a resolution
        is mid-flight on it right now, in which case the re-resolution path
        recreates the cache entry anyway) — otherwise a service touring many
        parametrisations would accumulate one idle lock per key forever.
        """
        if self.pool is not None:
            self._retired.append(entry)
        lock = self._topology_locks.get(topology)
        if lock is not None and not lock.locked():
            del self._topology_locks[topology]

    def _prune_locks(self) -> None:
        """Drop idle resolution locks for topologies no longer cached/queued.

        Covers what the eviction hook cannot: a capacity-0 cache evicts a
        topology while its own resolution lock is still held.
        """
        for key in list(self._topology_locks):
            if (not self._topology_locks[key].locked()
                    and key not in self._topologies
                    and key not in self._pending):
                del self._topology_locks[key]

    def _flush_retired(self) -> None:
        """Unlink retired segments with no batch in flight on their arrays.

        Keeps long-running pooled services bounded: without this, every
        eviction + re-resolution would pin one more segment in the pool
        until shutdown.
        """
        keep = []
        for entry in self._retired:
            if self._inflight_csr.get(id(entry[1]), 0):
                keep.append(entry)
            else:
                self.pool.release_topology(entry[1])
        self._retired = keep

    # ----------------------------------------------------------------- submit
    async def submit(self, request: DiagnosisRequest) -> DiagnosisResponse:
        """Serve one request (store -> in-flight -> batched computation)."""
        if self._closed:
            raise RuntimeError("the service is closed")
        validate_request(request)
        tenant = request.tenant
        loop = asyncio.get_running_loop()
        enqueued_at = loop.time()

        if self.store is not None:
            stored = self.store.get(request)
            if stored is not None:
                self.metrics.record_enqueue(self._pending_total, tenant=tenant)
                latency = loop.time() - enqueued_at
                response = replace(stored, elapsed_seconds=latency)
                self.metrics.record_response(
                    "store", latency, ok=response.ok, tenant=tenant
                )
                return response

        key = request.key
        if self.coalesce and key in self._inflight:
            self.metrics.record_enqueue(self._pending_total, tenant=tenant)
            response = await asyncio.shield(self._inflight[key])
            latency = loop.time() - enqueued_at
            response = replace(
                response, source="coalesced", elapsed_seconds=latency
            )
            self.metrics.record_response(
                "coalesced", latency, ok=response.ok, tenant=tenant
            )
            return response

        # The request needs a queue slot from here on: admission control
        # sheds it *now* if either bound is already met, so overload turns
        # into immediate, retryable refusals instead of latency.  Both
        # checks run before any state changes, and in a fixed order (global,
        # then tenant), so the shed split of a burst is deterministic in
        # submission order — the property the loadgen pins.
        if (self.max_queue_depth is not None
                and self._pending_total >= self.max_queue_depth):
            self.metrics.record_rejection(self._pending_total, tenant=tenant)
            raise RejectedError(self._pending_total, self.max_queue_depth)
        tenant_depth = self._tenant_pending.get(tenant, 0)
        if (self.max_queue_per_tenant is not None
                and tenant_depth >= self.max_queue_per_tenant):
            self.metrics.record_rejection(self._pending_total, tenant=tenant)
            raise RejectedError(
                tenant_depth, self.max_queue_per_tenant,
                scope="tenant", tenant=tenant,
            )
        self.metrics.record_enqueue(self._pending_total, tenant=tenant)

        future: asyncio.Future = loop.create_future()
        if self.coalesce:
            self._inflight[key] = future
        pending = _Pending(
            request=request, key=key, future=future, enqueued_at=enqueued_at
        )
        if self.coalesce:
            self._enqueue(pending)
        else:
            await self._execute_batch(request.topology_key, [pending])
        response = await asyncio.shield(future)
        latency = loop.time() - enqueued_at
        response = replace(response, elapsed_seconds=latency)
        self.metrics.record_response(
            "computed", latency, ok=response.ok, tenant=tenant
        )
        return response

    async def submit_many(
        self, requests: Iterable[DiagnosisRequest]
    ) -> list[DiagnosisResponse]:
        """Submit concurrently; responses return in request order."""
        return list(await asyncio.gather(*(self.submit(r) for r in requests)))

    # ------------------------------------------------------------- scheduling
    def _enqueue(self, pending: _Pending) -> None:
        tenant = pending.request.tenant
        topology = pending.request.topology_key
        queues = self._pending.get(topology)
        if queues is None:
            queues = self._pending[topology] = TenantQueues(
                weights=self.tenant_weights
            )
        queues.push(tenant, pending)
        self._pending_total += 1
        self._tenant_pending[tenant] = self._tenant_pending.get(tenant, 0) + 1
        if topology not in self._dispatchers:
            self._full[topology] = asyncio.Event()
            self._dispatchers[topology] = asyncio.create_task(
                self._dispatch_loop(topology)
            )
        if len(queues) >= self.max_batch_size:
            self._full[topology].set()

    def _take_batch(self, topology: str) -> list[_Pending]:
        """Drain up to one batch from a topology's queues (DRR order)."""
        queues = self._pending.get(topology)
        if queues is None:
            return []
        batch = queues.take(self.max_batch_size)
        self._pending_total -= len(batch)
        for pending in batch:
            tenant = pending.request.tenant
            remaining = self._tenant_pending[tenant] - 1
            if remaining:
                self._tenant_pending[tenant] = remaining
            else:
                del self._tenant_pending[tenant]
        return batch

    async def _dispatch_loop(self, topology: str) -> None:
        """Per-topology dispatcher: hold the window open, drain, repeat.

        The task lives as long as its topology has queued requests (so
        :meth:`drain` need only await the registered dispatchers), draining
        at most ``max_batch_size`` per batch in deficit-round-robin tenant
        order — a full window dispatches immediately and the overflow opens
        the next one.
        """
        try:
            while True:
                full = self._full[topology]
                try:
                    await asyncio.wait_for(full.wait(), timeout=self.batch_delay)
                except TimeoutError:
                    pass  # window closed by its timer, not by filling up
                batch = self._take_batch(topology)
                self._full[topology] = asyncio.Event()
                queues = self._pending.get(topology)
                if queues is not None and len(queues) >= self.max_batch_size:
                    self._full[topology].set()
                if batch:
                    await self._execute_batch(topology, batch)
                if not self._pending.get(topology):
                    return
        finally:
            self._pending.pop(topology, None)
            self._dispatchers.pop(topology, None)
            self._full.pop(topology, None)

    # -------------------------------------------------------------- execution
    async def _resolved_topology(self, topology: str, request: DiagnosisRequest):
        """The ``(network, csr)`` pair for a batch, via the bounded LRU.

        Resolution (construct + compile) runs on the default executor so the
        event loop keeps serving; a per-topology lock stops concurrent
        batches from resolving the same topology twice.
        """
        lock = self._topology_locks.setdefault(topology, asyncio.Lock())
        # repro: allow[RPR009] single-flight by design: the awaited work IS
        # the resolve this lock deduplicates; concurrent batches for the same
        # topology must wait for it rather than compile twice
        async with lock:
            entry = self._topologies.get(topology)
            if entry is None:
                loop = asyncio.get_running_loop()
                entry = await loop.run_in_executor(
                    None, resolve_topology, request.family, request.network_kwargs
                )
                self._topologies.put(topology, entry)
        return entry

    async def _execute_batch(self, topology: str, batch: list[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        requests = [pending.request for pending in batch]
        try:
            executed = False
            if self.remote is not None and self.remote.has_workers():
                # Dispatch policy: prefer the fabric while it has live
                # workers.  The coordinator owns retries, requeues and
                # dedup; if it still cannot complete the lease the batch
                # falls through to the local/pooled path below — the fabric
                # never turns its own trouble into failed requests.
                from ..fabric.protocol import FabricUnavailableError

                dispatch_time = loop.time()
                try:
                    responses, stats = await self.remote.execute(
                        topology, requests
                    )
                    executed = True
                except FabricUnavailableError:
                    # Fall through to the local/pooled path below — but
                    # leave evidence: an operator watching a fleet that
                    # quietly degrades to local execution needs a counter,
                    # not silence.
                    self.metrics.fabric_fallbacks += 1
            if executed:
                pass
            elif self.pool is not None:
                network, csr = await self._resolved_topology(topology, requests[0])
                dispatch_time = loop.time()
                handle = self.pool.publish_topology(csr, include_pair_members=True)
                # Explicit syndromes ship through shared memory, not pickle:
                # concatenate their buffers into one published segment and
                # send (position, offset, size) spans; the wire requests are
                # stripped of their bytes so the task payload stays small.
                wire_requests = list(requests)
                syndrome_handle = None
                spans: list[tuple[int, int, int]] = []
                parts: list[bytes] = []
                offset = 0
                for pos, request in enumerate(requests):
                    if request.is_explicit:
                        blob = bytes(request.syndrome_bytes)
                        spans.append((pos, offset, len(blob)))
                        parts.append(blob)
                        offset += len(blob)
                        wire_requests[pos] = replace(request, syndrome_bytes=None)
                if parts:
                    syndrome_handle = self.pool.publish_buffer(b"".join(parts))
                self._inflight_csr[id(csr)] = self._inflight_csr.get(id(csr), 0) + 1
                try:
                    responses, stats = await asyncio.wrap_future(
                        self.pool.submit(
                            run_batch_task, handle, requests[0].family,
                            requests[0].params, wire_requests,
                            syndrome_handle, spans,
                        )
                    )
                finally:
                    remaining = self._inflight_csr[id(csr)] - 1
                    if remaining:
                        self._inflight_csr[id(csr)] = remaining
                    else:
                        del self._inflight_csr[id(csr)]
                    if syndrome_handle is not None:
                        self.pool.release(syndrome_handle)
                    self._flush_retired()
            else:
                # repro: allow[RPR009] deliberate serialization: without a
                # pool there is one executor thread's worth of CPU; running
                # batches concurrently would interleave kernels and wreck
                # the per-batch operation accounting
                async with self._local_execution:
                    network, csr = await self._resolved_topology(
                        topology, requests[0]
                    )
                    dispatch_time = loop.time()
                    responses, stats = await loop.run_in_executor(
                        None, run_batch_local, network, csr, requests
                    )
            for pending in batch:
                self.metrics.queue_wait.record(dispatch_time - pending.enqueued_at)
        except Exception as exc:
            for pending in batch:
                self._inflight.pop(pending.key, None)
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        self.metrics.record_batch(
            len(batch),
            compiles=stats["compiles"],
            pair_builds=stats["pair_builds"],
            kernel_width=stats.get("kernel_width"),
        )
        responses = [
            replace(response, batch_size=len(batch)) for response in responses
        ]
        if self.store is not None:
            # One transaction per batch: a single commit stall, not |batch|.
            self.store.put_many(
                [(p.request, r) for p, r in zip(batch, responses)]
            )
        for pending, response in zip(batch, responses):
            self._inflight.pop(pending.key, None)
            if not pending.future.done():
                pending.future.set_result(response)
        self._prune_locks()

    # ------------------------------------------------------------------ stats
    def stats(self) -> dict:
        """The ``stats`` endpoint: telemetry + cache + store in one dict."""
        body = self.metrics.snapshot()
        body["pending"] = self._pending_total
        body["pending_by_tenant"] = {
            tenant: depth
            for tenant, depth in sorted(self._tenant_pending.items())
        }
        body["max_queue_depth"] = self.max_queue_depth
        body["max_queue_per_tenant"] = self.max_queue_per_tenant
        body["tenant_weights"] = {
            tenant: weight
            for tenant, weight in sorted(self.tenant_weights.items())
        }
        body["coalescing"] = self.coalesce
        body["pooled"] = self.pool is not None
        body["topology_cache"] = self._topologies.stats().as_dict()
        body["store"] = self.store.stats() if self.store is not None else None
        if self.remote is not None:
            body["fabric"] = self.remote.stats()
        return body

    def prometheus_text(self, *, http_stats: dict | None = None) -> str:
        """The ``/metrics`` exposition body (see :mod:`.prometheus`).

        ``http_stats`` is the HTTP frontend's counter dict when one fronts
        this service; transportless callers omit it.
        """
        from .prometheus import render_metrics

        return render_metrics(
            self.metrics,
            pending=self._pending_total,
            pending_by_tenant=dict(self._tenant_pending),
            cache_stats=self._topologies.stats().as_dict(),
            store_stats=self.store.stats() if self.store is not None else None,
            http_stats=http_stats,
            fabric_stats=(
                self.remote.stats() if self.remote is not None else None
            ),
        )

    async def serve_sequence(
        self, requests: Sequence[DiagnosisRequest]
    ) -> list[DiagnosisResponse]:
        """Closed-loop serving of an ordered stream (one at a time).

        The loadgen's per-client loop; kept here so tests can drive a
        single-client stream without building a loadgen spec.
        """
        return [await self.submit(request) for request in requests]
