"""Persistent, content-addressed result store.

Diagnosis answers are a pure function of ``(topology, syndrome)`` — the
algorithm is deterministic and the service regenerates seeded syndromes
bit-identically — so results are filed under the content address
``(topology key, SHA-256 of the flat syndrome buffer)`` in a small SQLite
database.  A second table indexes canonical *request keys*
(:func:`~repro.service.requests.request_key`) onto those addresses, so a
repeated seeded request is recognised and served from disk **without**
building its topology or regenerating its syndrome; two different request
forms that hash to the same syndrome dedup onto one stored row.

SQLite is the storage engine because it is in the standard library, it is
crash-safe, and a service restart keeps its accumulated answers — the store
is the only part of the serving layer that outlives the process.  All access
happens from the service's event-loop thread; the store is not a
multi-writer database.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path

from .requests import DiagnosisRequest, DiagnosisResponse, request_key

__all__ = ["ResultStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    topology_key    TEXT NOT NULL,
    syndrome_digest TEXT NOT NULL,
    payload         TEXT NOT NULL,
    PRIMARY KEY (topology_key, syndrome_digest)
);
CREATE TABLE IF NOT EXISTS request_index (
    request_key     TEXT PRIMARY KEY,
    topology_key    TEXT NOT NULL,
    syndrome_digest TEXT NOT NULL
);
"""


class ResultStore:
    """SQLite-backed content-addressed store of diagnosis responses.

    ``path`` may be a filesystem path (persists across service restarts) or
    ``":memory:"`` for an ephemeral store with identical semantics (tests,
    one-shot load runs).
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.dedup_writes = 0

    # ----------------------------------------------------------------- writes
    def put(self, request: DiagnosisRequest, response: DiagnosisResponse) -> None:
        """File a computed response under its content address (idempotent).

        Failed diagnoses are stored too — the error is as deterministic as
        the answer, and re-serving it from disk skips re-running a doomed
        probe search.
        """
        self.put_many([(request, response)])

    def put_many(
        self, pairs: list[tuple[DiagnosisRequest, DiagnosisResponse]]
    ) -> None:
        """File a whole batch in **one** transaction.

        The service stores per batch, not per response: a disk-backed store
        then costs one commit (one fsync-class stall on the event loop) per
        dispatched batch instead of one per request.

        Responses without a syndrome digest are skipped: a request that
        failed before its syndrome existed (bad explicit buffer, impossible
        fault count) has no content address, and filing every such failure
        under the empty digest would make them collide onto one row.
        """
        for request, response in pairs:
            if not response.syndrome_digest:
                continue
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO results "
                "(topology_key, syndrome_digest, payload) VALUES (?, ?, ?)",
                (response.topology_key, response.syndrome_digest,
                 response.to_payload()),
            )
            if cursor.rowcount:
                self.writes += 1
            else:
                self.dedup_writes += 1
            self._conn.execute(
                "INSERT OR REPLACE INTO request_index "
                "(request_key, topology_key, syndrome_digest) VALUES (?, ?, ?)",
                (request_key(request), response.topology_key,
                 response.syndrome_digest),
            )
        self._conn.commit()

    # ---------------------------------------------------------------- lookups
    def get(self, request: DiagnosisRequest) -> DiagnosisResponse | None:
        """The stored response for a request, or ``None`` (counts hit/miss)."""
        row = self._conn.execute(
            "SELECT r.payload FROM request_index i "
            "JOIN results r ON r.topology_key = i.topology_key "
            "AND r.syndrome_digest = i.syndrome_digest "
            "WHERE i.request_key = ?",
            (request_key(request),),
        ).fetchone()
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        return DiagnosisResponse.from_payload(row[0])

    def get_by_digest(self, topology_key: str, digest: str) -> DiagnosisResponse | None:
        """Content-address lookup (no hit/miss accounting — internal probes)."""
        row = self._conn.execute(
            "SELECT payload FROM results WHERE topology_key = ? AND syndrome_digest = ?",
            (topology_key, digest),
        ).fetchone()
        return None if row is None else DiagnosisResponse.from_payload(row[0])

    # ------------------------------------------------------------- management
    def __len__(self) -> int:
        """Number of distinct stored results."""
        return self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def request_count(self) -> int:
        """Number of indexed request keys (>= len: many keys, one result)."""
        return self._conn.execute("SELECT COUNT(*) FROM request_index").fetchone()[0]

    def stats(self) -> dict:
        return {
            "path": self.path,
            "results": len(self),
            "request_keys": self.request_count(),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "dedup_writes": self.dedup_writes,
        }

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
