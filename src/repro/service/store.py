"""Persistent, content-addressed result store with eviction.

Diagnosis answers are a pure function of ``(topology, syndrome)`` — the
algorithm is deterministic and the service regenerates seeded syndromes
bit-identically — so results are filed under the content address
``(topology key, SHA-256 of the flat syndrome buffer)`` in a small SQLite
database.  A second table indexes canonical *request keys*
(:func:`~repro.service.requests.request_key`) onto those addresses, so a
repeated seeded request is recognised and served from disk **without**
building its topology or regenerating its syndrome; two different request
forms that hash to the same syndrome dedup onto one stored row.

A long-lived serving store must not grow without bound, so every result row
carries a ``last_used`` stamp (refreshed on each hit) and the store enforces
two optional policies at batch-commit time:

* ``ttl_seconds`` — rows idle longer than the TTL are swept;
* ``max_rows`` — the row count is capped, evicting least-recently-used rows
  (by ``last_used``) until the bound holds.

Eviction runs inside the batch's transaction: one commit covers the new
rows *and* whatever they pushed out, and a restart re-enforces the policy
against whatever the previous process left behind.

SQLite is the storage engine because it is in the standard library, it is
crash-safe, and a service restart keeps its accumulated answers — the store
is the only part of the serving layer that outlives the process.  On-disk
stores run in WAL journal mode with a busy timeout, so an HTTP frontend's
event loop never blocks behind a concurrent reader (a stats probe, a second
service instance) holding the database.
"""

from __future__ import annotations

import sqlite3
import time
from pathlib import Path
from typing import Callable

from .requests import DiagnosisRequest, DiagnosisResponse, request_key

__all__ = ["ResultStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    topology_key    TEXT NOT NULL,
    syndrome_digest TEXT NOT NULL,
    payload         TEXT NOT NULL,
    last_used       REAL NOT NULL DEFAULT 0,
    PRIMARY KEY (topology_key, syndrome_digest)
);
CREATE TABLE IF NOT EXISTS request_index (
    request_key     TEXT PRIMARY KEY,
    topology_key    TEXT NOT NULL,
    syndrome_digest TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS results_last_used ON results (last_used);
"""


class ResultStore:
    """SQLite-backed content-addressed store of diagnosis responses.

    ``path`` may be a filesystem path (persists across service restarts) or
    ``":memory:"`` for an ephemeral store with identical semantics (tests,
    one-shot load runs).  ``ttl_seconds``/``max_rows`` bound the store (see
    the module docstring); ``clock`` injects a time source for tests.
    """

    def __init__(
        self,
        path: str | Path = ":memory:",
        *,
        ttl_seconds: float | None = None,
        max_rows: int | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None)")
        if max_rows is not None and max_rows < 1:
            raise ValueError("max_rows must be at least 1 (or None)")
        self.path = str(path)
        self.ttl_seconds = ttl_seconds
        self.max_rows = max_rows
        self._clock = clock
        self._conn = sqlite3.connect(self.path)
        if self.path != ":memory:":
            # WAL lets readers proceed during a commit (and vice versa), and
            # the busy timeout turns a briefly-locked database into a short
            # wait instead of an exception on the serving path.
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA busy_timeout=5000")
        self._migrate()
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.dedup_writes = 0
        self.expired_evictions = 0
        self.lru_evictions = 0
        self.clock_skew_skips = 0
        # A fresh process enforces the policy against inherited rows at
        # once — a bound is a property of the store, not of one run.
        if ttl_seconds is not None or max_rows is not None:
            self.evict()

    def _migrate(self) -> None:
        """Add ``last_used`` to pre-eviction databases (additive, in place).

        Inherited rows are stamped *now*, not 0: to a fresh TTL policy they
        are "just seen", not "idle since the epoch" — otherwise enabling
        ``ttl_seconds`` on an upgraded store would wipe it at open.
        """
        columns = [
            row[1]
            for row in self._conn.execute("PRAGMA table_info(results)").fetchall()
        ]
        if columns and "last_used" not in columns:
            self._conn.execute(
                "ALTER TABLE results ADD COLUMN last_used REAL NOT NULL DEFAULT 0"
            )
            self._conn.execute(
                "UPDATE results SET last_used = ?", (self._clock(),)
            )

    # ----------------------------------------------------------------- writes
    def put(self, request: DiagnosisRequest, response: DiagnosisResponse) -> None:
        """File a computed response under its content address (idempotent).

        Failed diagnoses are stored too — the error is as deterministic as
        the answer, and re-serving it from disk skips re-running a doomed
        probe search.
        """
        self.put_many([(request, response)])

    def put_many(
        self, pairs: list[tuple[DiagnosisRequest, DiagnosisResponse]]
    ) -> None:
        """File a whole batch — and enforce eviction — in **one** transaction.

        The service stores per batch, not per response: a disk-backed store
        then costs one commit (one fsync-class stall on the event loop) per
        dispatched batch instead of one per request.

        Responses without a syndrome digest are skipped: a request that
        failed before its syndrome existed (bad explicit buffer, impossible
        fault count) has no content address, and filing every such failure
        under the empty digest would make them collide onto one row.
        """
        now = self._clock()
        for request, response in pairs:
            if not response.syndrome_digest:
                continue
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO results "
                "(topology_key, syndrome_digest, payload, last_used) "
                "VALUES (?, ?, ?, ?)",
                (response.topology_key, response.syndrome_digest,
                 response.to_payload(), now),
            )
            if cursor.rowcount:
                self.writes += 1
            else:
                self.dedup_writes += 1
                self._conn.execute(
                    "UPDATE results SET last_used = ? "
                    "WHERE topology_key = ? AND syndrome_digest = ?",
                    (now, response.topology_key, response.syndrome_digest),
                )
            self._conn.execute(
                "INSERT OR REPLACE INTO request_index "
                "(request_key, topology_key, syndrome_digest) VALUES (?, ?, ?)",
                (request_key(request), response.topology_key,
                 response.syndrome_digest),
            )
        self.evict(now=now, commit=False)
        self._conn.commit()

    # --------------------------------------------------------------- eviction
    def evict(self, *, now: float | None = None, commit: bool = True) -> int:
        """Apply the TTL sweep and the LRU row bound; returns rows evicted.

        Runs automatically at batch-commit time (and once at open); callable
        directly for an explicit sweep.  :meth:`put_many` passes
        ``commit=False`` so eviction rides the batch transaction; a direct
        call commits its own deletions.
        """
        evicted = 0
        if now is None:
            now = self._clock()
        if self.ttl_seconds is not None:
            # Clock-regression clamp: ``last_used`` stamps come from the wall
            # clock, and a backwards step (NTP correction, VM migration) can
            # leave rows stamped *after* ``now``.  Idleness is then
            # uncomputable — a row that looks ttl-old may have been written
            # moments ago around the step — so if the newest stamp is in
            # now's future the whole sweep is skipped (and counted) rather
            # than mass-expiring fresh rows.  The LRU bound below is
            # order-based, not age-based, and stays in force.
            newest = self._conn.execute(
                "SELECT MAX(last_used) FROM results"
            ).fetchone()[0]
            if newest is not None and now < newest:
                self.clock_skew_skips += 1
            else:
                cursor = self._conn.execute(
                    "DELETE FROM results WHERE last_used < ?",
                    (now - self.ttl_seconds,),
                )
                self.expired_evictions += cursor.rowcount
                evicted += cursor.rowcount
        if self.max_rows is not None:
            over = len(self) - self.max_rows
            if over > 0:
                cursor = self._conn.execute(
                    "DELETE FROM results WHERE rowid IN ("
                    "  SELECT rowid FROM results "
                    "  ORDER BY last_used ASC, rowid ASC LIMIT ?)",
                    (over,),
                )
                self.lru_evictions += cursor.rowcount
                evicted += cursor.rowcount
        if evicted:
            # Index entries pointing at evicted rows are dead weight; an
            # orphaned key would count a *hit* on a result that is gone.
            self._conn.execute(
                "DELETE FROM request_index WHERE NOT EXISTS ("
                "  SELECT 1 FROM results r "
                "  WHERE r.topology_key = request_index.topology_key "
                "  AND r.syndrome_digest = request_index.syndrome_digest)"
            )
        if commit:
            self._conn.commit()
        return evicted

    # ---------------------------------------------------------------- lookups
    def get(self, request: DiagnosisRequest) -> DiagnosisResponse | None:
        """The stored response for a request, or ``None`` (counts hit/miss).

        Under an eviction policy a hit refreshes the row's ``last_used``
        stamp — "least recently used" means used, not written.  An unbounded
        store skips the refresh: the stamp would never be consulted, and the
        write-plus-commit per hit is exactly the per-response stall the
        batch-commit design avoids.
        """
        row = self._conn.execute(
            "SELECT r.payload, r.topology_key, r.syndrome_digest "
            "FROM request_index i "
            "JOIN results r ON r.topology_key = i.topology_key "
            "AND r.syndrome_digest = i.syndrome_digest "
            "WHERE i.request_key = ?",
            (request_key(request),),
        ).fetchone()
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        if self.ttl_seconds is not None or self.max_rows is not None:
            self._conn.execute(
                "UPDATE results SET last_used = ? "
                "WHERE topology_key = ? AND syndrome_digest = ?",
                (self._clock(), row[1], row[2]),
            )
            self._conn.commit()
        return DiagnosisResponse.from_payload(row[0])

    def get_by_digest(self, topology_key: str, digest: str) -> DiagnosisResponse | None:
        """Content-address lookup (no hit/miss accounting — internal probes)."""
        row = self._conn.execute(
            "SELECT payload FROM results WHERE topology_key = ? AND syndrome_digest = ?",
            (topology_key, digest),
        ).fetchone()
        return None if row is None else DiagnosisResponse.from_payload(row[0])

    # ------------------------------------------------------------- management
    def __len__(self) -> int:
        """Number of distinct stored results."""
        return self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def request_count(self) -> int:
        """Number of indexed request keys (>= len: many keys, one result)."""
        return self._conn.execute("SELECT COUNT(*) FROM request_index").fetchone()[0]

    def stats(self) -> dict:
        return {
            "path": self.path,
            "results": len(self),
            "request_keys": self.request_count(),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "dedup_writes": self.dedup_writes,
            "ttl_seconds": self.ttl_seconds,
            "max_rows": self.max_rows,
            "expired_evictions": self.expired_evictions,
            "lru_evictions": self.lru_evictions,
            "clock_skew_skips": self.clock_skew_skips,
        }

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
