"""Workload generation for experiments: fault placements and parameter sweeps.

The fault-placement primitives live in :mod:`repro.core.faults`; this package
re-exports them and adds the sweep generators the benchmark harness iterates
over (one sweep per experiment of DESIGN.md §5).
"""

from .sweeps import (
    SweepPoint,
    cube_variant_sweep,
    distributed_sweep,
    hypercube_sweep,
    kary_sweep,
    permutation_sweep,
)
from ..core.faults import (
    FaultScenario,
    clustered_faults,
    neighborhood_faults,
    random_faults,
    scenario_suite,
    spread_faults,
)

__all__ = [
    "FaultScenario",
    "random_faults",
    "clustered_faults",
    "neighborhood_faults",
    "spread_faults",
    "scenario_suite",
    "SweepPoint",
    "hypercube_sweep",
    "cube_variant_sweep",
    "kary_sweep",
    "permutation_sweep",
    "distributed_sweep",
]
