"""Parameter sweeps used by the benchmark harness (one per experiment family).

A sweep is a list of :class:`SweepPoint` objects: a network instance plus the
fault scenarios to run on it.  Keeping the sweeps here (rather than inline in
the benchmark modules) makes the experiment inputs reusable from the examples
and the CLI and keeps DESIGN.md §5's experiment index executable.

The instance tables (``CUBE_VARIANT_INSTANCES`` etc.) are the single source of
truth shared with the batched experiment runner
(:mod:`repro.experiments.trials`): sweeps materialise fault scenarios for the
benchmark harness, trial plans turn the same tables into factor-product trial
rows.  Network construction goes through the registry memo
(:func:`repro.networks.registry.cached_network`), so repeated sweeps — and the
trial plans next to them — share one compiled topology per instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.faults import FaultScenario, clustered_faults, random_faults
from ..networks.base import InterconnectionNetwork
from ..networks.registry import cached_network

__all__ = [
    "SweepPoint",
    "hypercube_sweep",
    "cube_variant_sweep",
    "kary_sweep",
    "permutation_sweep",
    "distributed_sweep",
    "CUBE_VARIANT_INSTANCES",
    "KARY_INSTANCES",
    "PERMUTATION_INSTANCES",
    "DISTRIBUTED_LOSS_RATES",
    "DISTRIBUTED_ROOT_COUNTS",
    "DISTRIBUTED_LATENCIES",
]

#: Experiment E9 engine axes: per-transmission loss rates, concurrent-root
#: counts and per-link latency distributions swept by the distributed
#: protocol engine (single source of truth for the E9 runner and the CLI).
DISTRIBUTED_LOSS_RATES: tuple[float, ...] = (0.0, 0.1)
DISTRIBUTED_ROOT_COUNTS: tuple[int, ...] = (1, 2)
DISTRIBUTED_LATENCIES: tuple[str, ...] = ("fixed:1", "uniform:1:3")


#: Experiment E2 instances: one benchmark-sized instance per hypercube variant
#: (Theorem 3).
CUBE_VARIANT_INSTANCES: list[tuple[str, str, dict]] = [
    ("CQ_10", "crossed_cube", {"dimension": 10}),
    ("TQ_9", "twisted_cube", {"dimension": 9}),
    ("FQ_10", "folded_hypercube", {"dimension": 10}),
    ("Q_10,6", "enhanced_hypercube", {"dimension": 10, "k": 6}),
    ("AQ_9", "augmented_cube", {"dimension": 9}),
    ("SQ_10", "shuffle_cube", {"dimension": 10}),
    ("TQ'_10", "twisted_n_cube", {"dimension": 10}),
]

#: Experiment E3 instances: k-ary n-cubes and augmented k-ary n-cubes
#: (Theorem 4).
KARY_INSTANCES: list[tuple[str, str, dict]] = [
    ("Q^4_4", "kary_ncube", {"n": 4, "k": 4}),
    ("Q^6_3", "kary_ncube", {"n": 3, "k": 6}),
    ("Q^8_3", "kary_ncube", {"n": 3, "k": 8}),
    ("Q^16_2", "kary_ncube", {"n": 2, "k": 16}),
    ("AQ_3,6", "augmented_kary_ncube", {"n": 3, "k": 6}),
    ("AQ_3,8", "augmented_kary_ncube", {"n": 3, "k": 8}),
]

#: Experiment E4 instances: star, (n,k)-star, pancake and arrangement graphs
#: (Theorems 5–7).
PERMUTATION_INSTANCES: list[tuple[str, str, dict]] = [
    ("S_6", "star", {"n": 6}),
    ("S_7", "star", {"n": 7}),
    ("S_7,4", "nk_star", {"n": 7, "k": 4}),
    ("S_6,3", "nk_star", {"n": 6, "k": 3}),
    ("P_6", "pancake", {"n": 6}),
    ("P_7", "pancake", {"n": 7}),
    ("A_7,3", "arrangement", {"n": 7, "k": 3}),
    ("A_6,2", "arrangement", {"n": 6, "k": 2}),
]


@dataclass
class SweepPoint:
    """One (network, scenarios) pair of a sweep."""

    label: str
    network: InterconnectionNetwork
    scenarios: list[FaultScenario] = field(default_factory=list)

    @property
    def num_nodes(self) -> int:
        return self.network.num_nodes


def _standard_scenarios(network: InterconnectionNetwork, seed: int) -> list[FaultScenario]:
    """Maximum-size random and clustered fault sets (the paper's worst case |F| = δ)."""
    delta = network.diagnosability()
    return [
        FaultScenario("random-max", random_faults(network, delta, seed=seed)),
        FaultScenario("clustered-max", clustered_faults(network, delta, seed=seed)),
    ]


def _points(instances: list[tuple[str, str, dict]], seed: int) -> list[SweepPoint]:
    points = []
    for label, family, params in instances:
        network = cached_network(family, **params)
        points.append(SweepPoint(label, network, _standard_scenarios(network, seed)))
    return points


def hypercube_sweep(dimensions: tuple[int, ...] = (7, 8, 9, 10, 11, 12), *, seed: int = 0
                    ) -> list[SweepPoint]:
    """Experiment E1: hypercubes of growing dimension."""
    instances = [(f"Q_{n}", "hypercube", {"dimension": n}) for n in dimensions]
    return _points(instances, seed)


def cube_variant_sweep(*, seed: int = 0) -> list[SweepPoint]:
    """Experiment E2: one benchmark-sized instance per hypercube variant (Theorem 3)."""
    return _points(CUBE_VARIANT_INSTANCES, seed)


def kary_sweep(*, seed: int = 0) -> list[SweepPoint]:
    """Experiment E3: k-ary n-cubes and augmented k-ary n-cubes (Theorem 4)."""
    return _points(KARY_INSTANCES, seed)


def permutation_sweep(*, seed: int = 0) -> list[SweepPoint]:
    """Experiment E4: star, (n,k)-star, pancake and arrangement graphs (Theorems 5–7)."""
    return _points(PERMUTATION_INSTANCES, seed)


def distributed_sweep(
    dimensions: tuple[int, ...] = (8, 9, 10),
    *,
    seed: int = 0,
    loss_rates: tuple[float, ...] = DISTRIBUTED_LOSS_RATES,
    root_counts: tuple[int, ...] = DISTRIBUTED_ROOT_COUNTS,
    latencies: tuple[str, ...] = ("fixed:1",),
):
    """Experiment E9: the engine's factor table over hypercubes.

    Returns a :class:`~repro.experiments.trials.DistributedTrialPlan` whose
    rows sweep the channel axes (loss rate × root count × latency
    distribution) on top of the usual topology factor.  The import is
    deferred because :mod:`repro.experiments` itself consumes the instance
    tables of this module.
    """
    from ..experiments.trials import DistributedTrialPlan

    instances = [(f"Q_{n}", "hypercube", {"dimension": n}) for n in dimensions]
    return DistributedTrialPlan.from_factors(
        instances,
        seeds=(seed,),
        loss_rates=loss_rates,
        root_counts=root_counts,
        latencies=latencies,
    )
