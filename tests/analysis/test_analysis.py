"""Tests for the analytical formulas and the reporting/fitting helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    fit_against_model,
    fit_power_law,
    format_table,
    full_table_size,
    set_builder_lookup_bound,
    theorem_time_bound,
)
from repro.networks import Hypercube, StarGraph


class TestFormulas:
    def test_lookup_bound_formula(self):
        assert set_builder_lookup_bound(7, 128) == 6 * (3.5 + 127)

    def test_full_table_size_matches_direct_count(self):
        cube = Hypercube(6)
        expected = sum(
            len(cube.neighbors(u)) * (len(cube.neighbors(u)) - 1) // 2
            for u in range(cube.num_nodes)
        )
        assert full_table_size(cube) == expected

    def test_theorem_bound_specialises_per_family(self):
        assert theorem_time_bound(Hypercube(10)) == 10 * 2**10
        star = StarGraph(6)
        assert theorem_time_bound(star) == 5 * 720

    def test_lookup_bound_dominates_measured_lookups(self):
        from repro.core.set_builder import set_builder
        from repro.core.syndrome import LazySyndrome

        cube = Hypercube(9)
        result = set_builder(cube, LazySyndrome(cube, frozenset()), 0)
        bound = set_builder_lookup_bound(cube.max_degree, result.size)
        slack = cube.max_degree * (cube.max_degree - 1) / 2  # the root's own tests
        assert result.lookups <= bound + slack


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 3]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert len(lines) == 5

    def test_bool_rendering(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestScalingFits:
    def test_recovers_known_exponent(self):
        sizes = np.array([10, 20, 40, 80, 160], dtype=float)
        values = 3.0 * sizes**2
        fit = fit_power_law(sizes, values)
        assert fit.exponent == pytest.approx(2.0, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [2, 4, 8])
        assert fit.predict(8) == pytest.approx(16, rel=1e-6)

    def test_fit_against_model_linear_when_model_correct(self):
        model = np.array([7 * 2**7, 8 * 2**8, 9 * 2**9, 10 * 2**10], dtype=float)
        measured = 1e-6 * model * 1.05  # proportional up to noise-free constant
        fit = fit_against_model(model, measured)
        assert fit.exponent == pytest.approx(1.0, abs=1e-6)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])


class TestScalingFitEdgeCases:
    def test_constant_measurements_define_r_squared_one(self):
        # ss_tot == 0: the fit is vacuously perfect rather than dividing by 0.
        fit = fit_power_law([1, 2, 4], [5.0, 5.0, 5.0])
        assert fit.r_squared == 1.0
        assert fit.exponent == pytest.approx(0.0, abs=1e-9)

    def test_float_cells_render_compactly(self):
        text = format_table(["x"], [[1.23456789], [1000000.0]])
        assert "1.235" in text
        assert "1e+06" in text

    def test_fit_against_model_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_against_model([10.0], [1.0])
