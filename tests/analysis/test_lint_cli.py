"""CLI contract: exit codes, JSON schema, baseline lifecycle — and the
self-lint gate: the analyzer run over this very repository must be clean.

The self-lint tests are the teeth of the whole subsystem: they are what
makes re-introducing a known failure mode (the PR 8 zombie-worker shape,
an unowned shm segment, a torn JSON write) a test failure instead of a
review comment.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.__main__ import main as lint_main
from repro.analysis.baseline import load_baseline

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / ".repro-analysis-baseline.json"

CLEAN_CODE = """
    import time
    def stamp():
        return time.monotonic()
"""

DIRTY_CODE = """
    import time
    def stamp():
        return time.time()
"""


def write(tmp_path, relpath, code):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code))
    return path


@pytest.fixture
def run_cli(tmp_path, capsys, monkeypatch):
    """Run the analyzer CLI from inside ``tmp_path``; returns (code, out)."""
    monkeypatch.chdir(tmp_path)

    def run(*argv):
        code = lint_main(list(argv))
        return code, capsys.readouterr().out

    return run


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, run_cli):
        write(tmp_path, "src/repro/core/x.py", CLEAN_CODE)
        code, out = run_cli("src")
        assert code == 0
        assert "0 active" in out

    def test_findings_exit_one(self, tmp_path, run_cli):
        write(tmp_path, "src/repro/core/x.py", DIRTY_CODE)
        code, out = run_cli("src", "--no-baseline")
        assert code == 1
        assert "RPR001" in out and "wall-clock" in out

    def test_missing_path_exits_two(self, run_cli):
        code, _ = run_cli("no-such-directory")
        assert code == 2

    def test_no_paths_and_no_defaults_exits_two(self, run_cli):
        code, _ = run_cli()
        assert code == 2

    def test_default_paths_pick_up_src_and_tests(self, tmp_path, run_cli):
        write(tmp_path, "src/repro/core/x.py", CLEAN_CODE)
        write(tmp_path, "tests/test_x.py", "def test_ok():\n    assert True\n")
        code, out = run_cli()
        assert code == 0
        assert "2 files" in out

    def test_corrupt_baseline_exits_two(self, tmp_path, run_cli):
        write(tmp_path, "src/repro/core/x.py", CLEAN_CODE)
        (tmp_path / ".repro-analysis-baseline.json").write_text("not json")
        code, _ = run_cli("src")
        assert code == 2


class TestJsonOutput:
    def test_schema_and_content(self, tmp_path, run_cli):
        write(tmp_path, "src/repro/core/x.py", DIRTY_CODE)
        code, out = run_cli("src", "--format", "json", "--no-baseline")
        assert code == 1
        payload = json.loads(out)
        assert set(payload) == {
            "schema", "paths", "rules", "counts", "findings", "stale_baseline",
        }
        assert payload["schema"] == 1
        assert [rule["id"] for rule in payload["rules"]] == [
            f"RPR{n:03d}" for n in range(1, 13)
        ]
        (finding,) = payload["findings"]
        assert finding["rule"] == "RPR001"
        assert finding["path"].endswith("x.py")
        assert finding["fingerprint"]

    def test_list_rules_json(self, run_cli):
        code, out = run_cli("--list-rules", "--format", "json")
        assert code == 0
        payload = json.loads(out)
        assert len(payload["rules"]) == 12
        assert all(rule["rationale"] for rule in payload["rules"])


class TestBaselineLifecycle:
    def test_write_then_pass_then_stale(self, tmp_path, run_cli):
        path = write(tmp_path, "src/repro/core/x.py", DIRTY_CODE)

        code, _ = run_cli("src")
        assert code == 1  # debt, no baseline yet

        code, _ = run_cli("src", "--write-baseline")
        assert code == 0
        entries = load_baseline(tmp_path / ".repro-analysis-baseline.json")
        assert len(entries) == 1

        code, out = run_cli("src")
        assert code == 0  # baselined debt passes...
        assert "1 baselined" in out

        write(tmp_path, "src/repro/core/y.py", DIRTY_CODE)
        code, _ = run_cli("src")
        assert code == 1  # ...but new findings still gate

        path.write_text(textwrap.dedent(CLEAN_CODE))
        (tmp_path / "src/repro/core/y.py").unlink()
        code, out = run_cli("src")
        assert code == 0
        assert "stale baseline entry" in out  # paid debt is reported...

        code, _ = run_cli("src", "--strict-baseline")
        assert code == 1  # ...and gates under strict mode

    def test_baseline_survives_line_drift(self, tmp_path, run_cli):
        write(tmp_path, "src/repro/core/x.py", DIRTY_CODE)
        run_cli("src", "--write-baseline")
        # Unrelated lines added above the finding: fingerprint must hold.
        write(tmp_path, "src/repro/core/x.py", """
            import time

            PAD = 1
            ALSO_PAD = 2

            def stamp():
                return time.time()
        """)
        code, out = run_cli("src", "--strict-baseline")
        assert code == 0
        assert "1 baselined" in out


class TestSelfLint:
    """The acceptance gate: this repository lints clean with its own tool."""

    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *argv],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=120,
        )

    def test_repo_tree_is_clean_including_stale_entries(self):
        result = self._run("src", "tests", "--strict-baseline")
        assert result.returncode == 0, (
            f"self-lint failed:\n{result.stdout}\n{result.stderr}"
        )

    def test_shipped_baseline_is_empty(self):
        """Intentional sites carry inline pragmas, so the shipped ledger
        must hold zero entries — debt never accumulates invisibly here."""
        entries = load_baseline(BASELINE)
        assert entries == {}

    def test_reintroducing_the_zombie_worker_pattern_fails_the_gate(
        self, tmp_path
    ):
        """The acceptance criterion, end to end: the PR 8 bug shape, dropped
        anywhere in the analyzed tree, must flip the lint gate to failing."""
        bad = tmp_path / "src/repro/fabric/regression.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(textwrap.dedent("""
            import asyncio
            async def run_worker(serving, stopper):
                done, pending = await asyncio.wait(
                    {serving, stopper}, return_when=asyncio.FIRST_COMPLETED
                )
                return done
        """))
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(bad), "--no-baseline"],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 1
        assert "RPR005" in result.stdout
