"""Framework semantics: pragmas, module scoping, discovery, report shape.

These tests pin the suppression contract — a pragma must carry a reason,
must name a real rule id, and must actually suppress something — because a
suppression mechanism that can rot silently would un-enforce every rule.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import TOOL_RULE_ID, collect_files, load_source, run_analysis
from repro.analysis.rules import UnseededRandomRule, WallClockRule

CLOCK_CODE = """
    import time
    def stamp():
        return time.time()
"""


def write(tmp_path, relpath, code):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code))
    return path


class TestModuleNaming:
    def test_src_anchor_strips_to_the_package(self, tmp_path):
        path = write(tmp_path, "src/repro/core/diag.py", "x = 1\n")
        assert load_source(path).module == "repro.core.diag"

    def test_tests_anchor_keeps_the_tests_prefix(self, tmp_path):
        path = write(tmp_path, "tests/fabric/test_x.py", "x = 1\n")
        assert load_source(path).module == "tests.fabric.test_x"

    def test_init_maps_to_the_package_itself(self, tmp_path):
        path = write(tmp_path, "src/repro/parallel/__init__.py", "x = 1\n")
        assert load_source(path).module == "repro.parallel"

    def test_unanchored_file_falls_back_to_its_stem(self, tmp_path):
        path = write(tmp_path, "scratch.py", "x = 1\n")
        assert load_source(path).module == "scratch"


class TestDiscovery:
    def test_missing_path_raises_instead_of_linting_nothing(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_files([tmp_path / "no-such-dir"])

    def test_skips_pycache_and_hidden_directories(self, tmp_path):
        write(tmp_path, "pkg/good.py", "x = 1\n")
        write(tmp_path, "pkg/__pycache__/junk.py", "x = 1\n")
        write(tmp_path, "pkg/.hidden/secret.py", "x = 1\n")
        found = [display for _, display in collect_files([tmp_path / "pkg"])]
        assert len(found) == 1 and found[0].endswith("good.py")

    def test_explicit_file_is_taken_as_given(self, tmp_path):
        path = write(tmp_path, "one.py", "x = 1\n")
        assert collect_files([path]) == [(path.resolve(), str(path))]


class TestPragmas:
    def test_trailing_pragma_suppresses_its_line(self, tmp_path):
        path = write(tmp_path, "src/repro/core/x.py", """
            import time
            def stamp():
                return time.time()  # repro: allow[RPR001] bench-only module
        """)
        report = run_analysis([path], [WallClockRule()])
        assert report.active == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].suppress_reason == "bench-only module"

    def test_own_line_pragma_applies_to_the_next_code_line(self, tmp_path):
        path = write(tmp_path, "src/repro/core/x.py", """
            import time
            def stamp():
                # repro: allow[RPR001] bench-only module
                return time.time()
        """)
        report = run_analysis([path], [WallClockRule()])
        assert report.active == []
        assert len(report.suppressed) == 1

    def test_pragma_without_reason_is_a_tool_finding(self, tmp_path):
        path = write(tmp_path, "src/repro/core/x.py", """
            import time
            def stamp():
                return time.time()  # repro: allow[RPR001]
        """)
        report = run_analysis([path], [WallClockRule()])
        names = {(f.rule, f.name) for f in report.active}
        # The malformed pragma suppresses nothing: the RPR001 still gates.
        assert (TOOL_RULE_ID, "malformed-pragma") in names
        assert ("RPR001", "wall-clock-in-diagnosis") in names

    def test_pragma_with_bogus_rule_id_is_a_tool_finding(self, tmp_path):
        path = write(tmp_path, "src/repro/core/x.py", """
            import time
            def stamp():
                return time.time()  # repro: allow[determinism] legacy
        """)
        report = run_analysis([path], [WallClockRule()])
        assert any(f.name == "malformed-pragma" for f in report.active)

    def test_unused_pragma_is_reported(self, tmp_path):
        path = write(tmp_path, "src/repro/core/x.py", """
            import time
            def stamp():
                return time.monotonic()  # repro: allow[RPR001] stale excuse
        """)
        report = run_analysis([path], [WallClockRule()])
        assert len(report.active) == 1
        assert report.active[0].name == "unused-pragma"
        assert "RPR001" in report.active[0].message

    def test_one_pragma_can_cover_multiple_rules(self, tmp_path):
        path = write(tmp_path, "src/repro/core/x.py", """
            import random
            import time
            def jitter():
                return time.time() + random.random()  # repro: allow[RPR001, RPR002] demo-only jitter
        """)
        report = run_analysis(
            [path], [UnseededRandomRule(), WallClockRule()]
        )
        assert report.active == []
        assert sorted(f.rule for f in report.suppressed) == ["RPR001", "RPR002"]

    def test_unused_half_of_a_shared_pragma_is_reported(self, tmp_path):
        path = write(tmp_path, "src/repro/core/x.py", """
            import time
            def stamp():
                return time.time()  # repro: allow[RPR001, RPR002] shared excuse
        """)
        report = run_analysis(
            [path], [UnseededRandomRule(), WallClockRule()]
        )
        # RPR001 fires and is suppressed; RPR002 never fires -> unused half.
        assert [f.rule for f in report.suppressed] == ["RPR001"]
        assert [f.name for f in report.active] == ["unused-pragma"]
        assert "RPR002" in report.active[0].message

    def test_pragmas_cannot_suppress_tool_findings(self, tmp_path):
        path = write(tmp_path, "src/repro/core/x.py", """
            def stamp():
                # repro: allow[RPR000] trying to silence the tool
                return 1
        """)
        report = run_analysis([path], [WallClockRule()])
        assert [f.name for f in report.active] == ["unused-pragma"]


class TestReport:
    def test_syntax_error_is_a_tool_finding_not_a_crash(self, tmp_path):
        path = write(tmp_path, "src/repro/core/x.py", "def broken(:\n")
        report = run_analysis([path], [WallClockRule()])
        assert len(report.active) == 1
        assert report.active[0].name == "syntax-error"
        assert report.active[0].rule == TOOL_RULE_ID

    def test_findings_are_sorted_and_counted(self, tmp_path):
        write(tmp_path, "src/repro/core/b.py", CLOCK_CODE)
        write(tmp_path, "src/repro/core/a.py", CLOCK_CODE)
        report = run_analysis([tmp_path / "src"], [WallClockRule()])
        paths = [finding.path for finding in report.findings]
        assert paths == sorted(paths)
        counts = report.counts()
        assert counts["files"] == 2
        assert counts["findings"] == counts["active"] == 2
        assert counts["suppressed"] == counts["baselined"] == 0

    def test_finding_dict_has_the_stable_schema(self, tmp_path):
        path = write(tmp_path, "src/repro/core/x.py", CLOCK_CODE)
        report = run_analysis([path], [WallClockRule()])
        payload = report.findings[0].as_dict()
        assert set(payload) == {
            "rule", "name", "path", "line", "col", "message", "snippet",
            "suppressed", "suppress_reason", "baselined", "fingerprint",
        }
        assert payload["rule"] == "RPR001"
        assert payload["snippet"] == "return time.time()"
