"""Per-rule fixture tests: every RPR rule proven to fire on the bug shape
it encodes and to stay silent on the idiomatic replacement.

Fixture files are written under ``tmp_path`` at repo-like relative paths
(``src/repro/core/x.py``, ``tests/test_x.py``) so the dotted-module scoping
each rule declares is exercised for real, not mocked.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import run_analysis
from repro.analysis.rules import (
    ALL_RULES,
    BareSleepInTestsRule,
    BlockingCallInAsyncRule,
    CodecSymmetryRule,
    DanglingTaskRule,
    LockAcrossAwaitRule,
    NonAtomicJsonWriteRule,
    ShmOwnershipRule,
    SilentExceptRule,
    UnawaitedCoroutineRule,
    UnseededRandomRule,
    WaitWithoutCancelRule,
    WallClockRule,
    default_rules,
)


def lint_one(tmp_path, relpath, code, rule_cls):
    """Write ``code`` at ``relpath`` and return the rule's active findings."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code))
    report = run_analysis([path], [rule_cls()])
    return [
        finding for finding in report.findings
        if finding.rule == rule_cls.rule_id and not finding.suppressed
    ]


class TestRegistry:
    def test_rule_ids_are_unique_stable_and_documented(self):
        rules = default_rules()
        ids = [rule.rule_id for rule in rules]
        assert len(ids) == len(set(ids)) == len(ALL_RULES)
        assert ids == sorted(ids)
        for rule in rules:
            assert rule.rule_id.startswith("RPR") and len(rule.rule_id) == 6
            assert rule.name, rule.rule_id
            assert rule.rationale, rule.rule_id


class TestWallClock:
    def test_fires_on_time_time_in_core(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/core/clock.py", """
            import time
            def stamp():
                return time.time()
        """, WallClockRule)
        assert len(findings) == 1
        assert "time.time" in findings[0].message

    def test_fires_on_datetime_now(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/backend/x.py", """
            import datetime
            def stamp():
                return datetime.datetime.now()
        """, WallClockRule)
        assert len(findings) == 1

    def test_silent_on_monotonic_clocks(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/core/clock.py", """
            import time
            def stamp():
                return time.monotonic() + time.perf_counter()
        """, WallClockRule)
        assert findings == []

    def test_silent_outside_the_diagnosis_scope(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/service/clock.py", """
            import time
            def stamp():
                return time.time()
        """, WallClockRule)
        assert findings == []


class TestUnseededRandom:
    def test_fires_on_module_level_random(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/core/faults.py", """
            import random
            def pick():
                return random.random() + random.randint(0, 3)
        """, UnseededRandomRule)
        assert len(findings) == 2

    def test_fires_on_legacy_numpy_global_state(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/parallel/x.py", """
            import numpy as np
            def pick():
                return np.random.rand(3)
        """, UnseededRandomRule)
        assert len(findings) == 1

    def test_silent_on_seeded_generators(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/core/faults.py", """
            import random
            import numpy as np
            def pick(seed):
                rng = random.Random(seed)
                gen = np.random.default_rng(seed)
                return rng.random() + gen.random()
        """, UnseededRandomRule)
        assert findings == []


class TestUnawaitedCoroutine:
    def test_fires_on_bare_call_of_local_async_def(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/service/x.py", """
            async def refill():
                pass
            async def run():
                refill()
        """, UnawaitedCoroutineRule)
        assert len(findings) == 1
        assert "refill" in findings[0].message

    def test_fires_on_bare_self_method_call(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/service/x.py", """
            class S:
                async def refill(self):
                    pass
                async def run(self):
                    self.refill()
        """, UnawaitedCoroutineRule)
        assert len(findings) == 1

    def test_silent_when_awaited_or_scheduled(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/service/x.py", """
            import asyncio
            async def refill():
                pass
            async def run(tasks):
                await refill()
                tasks.add(asyncio.create_task(refill()))
        """, UnawaitedCoroutineRule)
        assert findings == []


class TestDanglingTask:
    def test_fires_on_discarded_create_task(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/service/x.py", """
            import asyncio
            async def go():
                pass
            async def run():
                asyncio.create_task(go())
        """, DanglingTaskRule)
        assert len(findings) == 1

    def test_silent_when_reference_is_retained(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/service/x.py", """
            import asyncio
            async def go():
                pass
            async def run(self):
                self._task = asyncio.create_task(go())
                self._tasks.add(asyncio.create_task(go()))
        """, DanglingTaskRule)
        assert findings == []


class TestWaitWithoutCancel:
    ZOMBIE = """
        import asyncio
        async def run(serving, stopper):
            done, pending = await asyncio.wait(
                {serving, stopper}, return_when=asyncio.FIRST_COMPLETED
            )
            if serving in done:
                serving.result()
    """

    FIXED = """
        import asyncio
        async def run(serving, stopper):
            done, pending = await asyncio.wait(
                {serving, stopper}, return_when=asyncio.FIRST_COMPLETED
            )
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
            if serving in done:
                serving.result()
    """

    def test_fires_on_the_pr8_zombie_worker_pattern(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/fabric/w.py",
                            self.ZOMBIE, WaitWithoutCancelRule)
        assert len(findings) == 1
        assert "zombie" in findings[0].message

    def test_silent_on_the_fixed_worker_idiom(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/fabric/w.py",
                            self.FIXED, WaitWithoutCancelRule)
        assert findings == []

    def test_fires_when_the_result_is_discarded(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/fabric/w.py", """
            import asyncio
            async def run(tasks):
                await asyncio.wait(tasks, return_when=asyncio.FIRST_COMPLETED)
        """, WaitWithoutCancelRule)
        assert len(findings) == 1

    def test_silent_on_all_completed_without_timeout(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/fabric/w.py", """
            import asyncio
            async def run(tasks):
                await asyncio.wait(tasks)
        """, WaitWithoutCancelRule)
        assert findings == []

    def test_fires_on_timeout_wait_without_cancel(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/fabric/w.py", """
            import asyncio
            async def run(tasks):
                done, pending = await asyncio.wait(tasks, timeout=1.0)
                return done
        """, WaitWithoutCancelRule)
        assert len(findings) == 1


class TestBlockingCallInAsync:
    def test_fires_on_time_sleep_and_subprocess(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/service/x.py", """
            import subprocess
            import time
            async def run():
                time.sleep(1)
                subprocess.run(["true"])
        """, BlockingCallInAsyncRule)
        assert len(findings) == 2

    def test_silent_on_asyncio_sleep_and_nested_sync_defs(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/service/x.py", """
            import asyncio
            import time
            async def run():
                await asyncio.sleep(0.1)
                def blocking_helper():
                    time.sleep(1)  # runs in an executor, not on the loop
                return blocking_helper
        """, BlockingCallInAsyncRule)
        assert findings == []


class TestShmOwnership:
    def test_fires_on_create_outside_the_owner_module(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/service/x.py", """
            from multiprocessing import shared_memory
            def make():
                return shared_memory.SharedMemory(create=True, size=8)
        """, ShmOwnershipRule)
        assert len(findings) == 1

    def test_silent_on_attach(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/service/x.py", """
            from multiprocessing import shared_memory
            def attach(name):
                return shared_memory.SharedMemory(name=name)
        """, ShmOwnershipRule)
        assert findings == []

    def test_fires_when_code_runs_between_create_and_wrap(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/parallel/shm.py", """
            from multiprocessing import shared_memory
            class OwnedSegment:
                def __init__(self, segment):
                    self.segment = segment
            def allocate(size):
                segment = shared_memory.SharedMemory(create=True, size=size)
                segment.buf[:size] = bytes(size)
                return OwnedSegment(segment)
        """, ShmOwnershipRule)
        assert len(findings) == 1

    def test_silent_when_wrapped_immediately(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/parallel/shm.py", """
            from multiprocessing import shared_memory
            class OwnedSegment:
                def __init__(self, segment):
                    self.segment = segment
            def allocate(size):
                segment = shared_memory.SharedMemory(create=True, size=size)
                owned = OwnedSegment(segment)
                segment.buf[:size] = bytes(size)
                return owned
        """, ShmOwnershipRule)
        assert findings == []


class TestNonAtomicJsonWrite:
    def test_fires_on_bare_open_plus_json_dump(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/cli2.py", """
            import json
            def save(path, payload):
                with open(path, "w") as fh:
                    json.dump(payload, fh)
        """, NonAtomicJsonWriteRule)
        assert len(findings) == 1
        assert "_write_json_atomic" in findings[0].message

    def test_silent_on_reads_and_non_json_writes(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/cli2.py", """
            import json
            def load(path):
                with open(path) as fh:
                    return json.load(fh)
            def note(path):
                with open(path, "w") as fh:
                    fh.write("done")
        """, NonAtomicJsonWriteRule)
        assert findings == []

    def test_silent_outside_the_repro_tree(self, tmp_path):
        findings = lint_one(tmp_path, "tests/test_x.py", """
            import json
            def save(path, payload):
                with open(path, "w") as fh:
                    json.dump(payload, fh)
        """, NonAtomicJsonWriteRule)
        assert findings == []


class TestLockAcrossAwait:
    def test_fires_via_lock_factory_tracking(self, tmp_path):
        # "_gate" has no lock-ish name: only the asyncio.Lock() assignment
        # identifies it, which is exactly the hole name-matching would leave.
        findings = lint_one(tmp_path, "src/repro/service/x.py", """
            import asyncio
            async def other():
                pass
            class S:
                def __init__(self):
                    self._gate = asyncio.Lock()
                async def run(self):
                    async with self._gate:
                        await other()
        """, LockAcrossAwaitRule)
        assert len(findings) == 1

    def test_fires_via_lockish_name(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/service/x.py", """
            async def other():
                pass
            class S:
                async def run(self):
                    async with self._send_lock:
                        await other()
        """, LockAcrossAwaitRule)
        assert len(findings) == 1

    def test_silent_when_the_critical_section_is_await_free(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/service/x.py", """
            import asyncio
            class S:
                def __init__(self):
                    self._lock = asyncio.Lock()
                async def run(self):
                    async with self._lock:
                        self.counter += 1
        """, LockAcrossAwaitRule)
        assert findings == []


class TestSilentExcept:
    def test_fires_on_uncommented_pass_handler(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/service/x.py", """
            def run():
                try:
                    work()
                except ValueError:
                    pass
        """, SilentExceptRule)
        assert len(findings) == 1

    def test_silent_when_the_swallow_is_explained(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/service/x.py", """
            def run():
                try:
                    work()
                except ValueError:
                    pass  # the value is advisory; absence is a valid state
        """, SilentExceptRule)
        assert findings == []

    def test_silent_outside_service_and_fabric(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/core/x.py", """
            def run():
                try:
                    work()
                except ValueError:
                    pass
        """, SilentExceptRule)
        assert findings == []


class TestBareSleepInTests:
    def test_fires_on_bare_sleep_synchronization(self, tmp_path):
        findings = lint_one(tmp_path, "tests/test_x.py", """
            import time
            def test_thing(server):
                server.start()
                time.sleep(0.2)
                assert server.ready
        """, BareSleepInTestsRule)
        assert len(findings) == 1

    def test_fires_on_unbounded_polling_loop(self, tmp_path):
        findings = lint_one(tmp_path, "tests/test_x.py", """
            import time
            def test_thing(server):
                while not server.ready:
                    time.sleep(0.01)
        """, BareSleepInTestsRule)
        assert len(findings) == 1
        assert "deadline" in findings[0].message

    def test_silent_on_deadline_bounded_polling(self, tmp_path):
        findings = lint_one(tmp_path, "tests/test_x.py", """
            import time
            def test_thing(server):
                deadline = time.monotonic() + 5
                while not server.ready:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
        """, BareSleepInTestsRule)
        assert findings == []

    def test_silent_on_sleep_zero_yield(self, tmp_path):
        findings = lint_one(tmp_path, "tests/test_x.py", """
            import asyncio
            async def test_thing(service):
                await asyncio.sleep(0)
        """, BareSleepInTestsRule)
        assert findings == []

    def test_silent_outside_tests(self, tmp_path):
        findings = lint_one(tmp_path, "src/repro/service/x.py", """
            import time
            def warm_up():
                time.sleep(0.2)
        """, BareSleepInTestsRule)
        assert findings == []


class TestCodecSymmetry:
    def _write(self, tmp_path, relpath, code):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(code))
        return path

    def test_fires_on_encoder_without_decoder(self, tmp_path):
        self._write(tmp_path, "src/repro/fabric/protocol.py", """
            def encode_lease(lease):
                return {"kind": "lease"}
        """)
        report = run_analysis([tmp_path / "src"], [CodecSymmetryRule()])
        messages = [finding.message for finding in report.findings]
        assert any("decode_lease" in message for message in messages)

    def test_fires_on_codec_no_test_exercises(self, tmp_path):
        self._write(tmp_path, "src/repro/fabric/protocol.py", """
            def encode_lease(lease):
                return {"kind": "lease"}
            def decode_lease(frame):
                return frame
        """)
        self._write(tmp_path, "tests/test_protocol.py", """
            from repro.fabric.protocol import encode_lease
            def test_encode():
                assert encode_lease(None)["kind"] == "lease"
        """)
        report = run_analysis(
            [tmp_path / "src", tmp_path / "tests"], [CodecSymmetryRule()]
        )
        untested = [
            finding for finding in report.findings
            if "not exercised" in finding.message
        ]
        assert len(untested) == 1
        assert "decode_lease" in untested[0].message

    def test_silent_on_paired_and_tested_codecs(self, tmp_path):
        self._write(tmp_path, "src/repro/fabric/protocol.py", """
            def encode_lease(lease):
                return {"kind": "lease"}
            def decode_lease(frame):
                return frame
        """)
        self._write(tmp_path, "tests/test_protocol.py", """
            from repro.fabric.protocol import decode_lease, encode_lease
            def test_round_trip():
                assert decode_lease(encode_lease(None))["kind"] == "lease"
        """)
        report = run_analysis(
            [tmp_path / "src", tmp_path / "tests"], [CodecSymmetryRule()]
        )
        assert [f for f in report.findings if f.rule == "RPR012"] == []


class TestEveryRuleHasAFixture:
    def test_no_rule_escapes_this_file(self):
        """Meta: adding a rule without fixture coverage must fail loudly."""
        covered = {
            WallClockRule, UnseededRandomRule, UnawaitedCoroutineRule,
            DanglingTaskRule, WaitWithoutCancelRule, BlockingCallInAsyncRule,
            ShmOwnershipRule, NonAtomicJsonWriteRule, LockAcrossAwaitRule,
            SilentExceptRule, BareSleepInTestsRule, CodecSymmetryRule,
        }
        assert covered == set(ALL_RULES)
