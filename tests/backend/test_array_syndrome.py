"""ArraySyndrome agreement and fast-path equivalence tests."""

from __future__ import annotations

import pytest

from repro.backend import ArraySyndrome, compile_network
from repro.core.diagnosis import GeneralDiagnoser
from repro.core.faults import clustered_faults, random_faults
from repro.core.set_builder import set_builder
from repro.core.syndrome import FaultyTesterBehavior, LazySyndrome, generate_syndrome

from ..conftest import ALL_FAMILIES, cached_network


def _tiny_faults(network, seed=0):
    delta = network.diagnosability()
    return random_faults(network, min(delta, 4), seed=seed)


class TestEntryAgreement:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_agrees_with_materialized_table_per_family(self, family):
        network = cached_network(family, "tiny")
        faults = _tiny_faults(network, seed=7)
        table = LazySyndrome(network, faults, behavior="random", seed=7).materialize()
        array = ArraySyndrome.from_faults(network, faults, behavior="random", seed=7)
        assert len(array) == len(table)
        for (u, v, w), value in table.items():
            assert array._result(u, v, w) == value

    @pytest.mark.parametrize("behavior", FaultyTesterBehavior.NAMES)
    def test_agrees_for_every_tester_behavior(self, q5, behavior):
        faults = frozenset({0, 3, 17})
        table = LazySyndrome(q5, faults, behavior=behavior, seed=11).materialize()
        array = ArraySyndrome.from_faults(q5, faults, behavior=behavior, seed=11)
        for (u, v, w), value in table.items():
            assert array._result(u, v, w) == value

    def test_agrees_with_lazy_on_deterministic_behaviors(self, q5):
        # With a deterministic faulty-tester behaviour the lazy oracle gives
        # the same answer in any query order, so direct comparison is valid.
        faults = frozenset({1, 2})
        lazy = LazySyndrome(q5, faults, behavior="all_one", seed=0)
        array = ArraySyndrome.from_faults(q5, faults, behavior="all_one", seed=0)
        for u in range(q5.num_nodes):
            row = sorted(q5.neighbors(u))
            for i, v in enumerate(row):
                for w in row[i + 1:]:
                    assert array.lookup(u, v, w) == lazy.lookup(u, v, w)

    def test_from_syndrome_reencodes_table(self, q5):
        faults = frozenset({4, 9})
        table = LazySyndrome(q5, faults, seed=3).materialize()
        array = ArraySyndrome.from_syndrome(q5, table)
        assert dict(array.items()) == dict(table.items())
        # A lazy source also carries the hidden fault set across.
        lazy = LazySyndrome(q5, faults, seed=3)
        assert ArraySyndrome.from_syndrome(q5, lazy).faults == faults

    def test_to_table_round_trips(self, q5):
        faults = frozenset({5})
        array = ArraySyndrome.from_faults(q5, faults, seed=1)
        table = array.to_table()
        for (u, v, w), value in table.items():
            assert array._result(u, v, w) == value


class TestSyndromeApi:
    def test_lookup_counts_and_symmetry(self, q5):
        array = ArraySyndrome.from_faults(q5, {1}, seed=0)
        before = array.lookups
        a = array.lookup(0, 1, 2)
        b = array.lookup(0, 2, 1)
        assert a == b == 1
        assert array.lookups == before + 2
        array.reset_lookups()
        assert array.lookups == 0

    def test_rejects_identical_pair(self, q5):
        array = ArraySyndrome.from_faults(q5, set(), seed=0)
        with pytest.raises(ValueError):
            array.lookup(0, 1, 1)

    def test_rejects_non_neighbor_pair(self, q5):
        array = ArraySyndrome.from_faults(q5, set(), seed=0)
        with pytest.raises(KeyError):
            array.lookup(0, 1, 3)  # 3 is not adjacent to 0 in Q_5

    def test_rejects_fault_outside_network(self, q5):
        with pytest.raises(ValueError):
            ArraySyndrome.from_faults(q5, {10_000}, seed=0)

    def test_generate_syndrome_array_backend(self, q5):
        syndrome = generate_syndrome(q5, {1, 2}, seed=5, backend="array")
        assert isinstance(syndrome, ArraySyndrome)
        table = generate_syndrome(q5, {1, 2}, seed=5, backend="table")
        for (u, v, w), value in table.items():
            assert syndrome._result(u, v, w) == value

    def test_generate_syndrome_rejects_unknown_backend(self, q5):
        with pytest.raises(ValueError, match="unknown syndrome backend"):
            generate_syndrome(q5, set(), backend="quantum")


class TestFastPathEquivalence:
    """Compiled (rows/array/vectorised) paths replicate the object path."""

    @pytest.mark.parametrize("family", ["hypercube", "star", "pancake", "kary_ncube"])
    @pytest.mark.parametrize("placement", [random_faults, clustered_faults])
    def test_set_builder_equivalence(self, family, placement):
        network = cached_network(family, "tiny")
        delta = network.diagnosability()
        for seed in range(3):
            faults = placement(network, delta, seed=seed)
            table = generate_syndrome(network, faults, seed=seed, full_table=True)
            array = generate_syndrome(network, faults, seed=seed, backend="array")
            for root in (0, network.num_nodes // 2):
                reference = set_builder(network, table, root,
                                        diagnosability=delta, compiled=False)
                rows = set_builder(network, table, root, diagnosability=delta)
                fast = set_builder(network, array, root, diagnosability=delta)
                for result in (rows, fast):
                    assert result.nodes == reference.nodes
                    assert result.parent == reference.parent
                    assert result.contributors == reference.contributors
                    assert result.rounds == reference.rounds
                    assert result.all_healthy == reference.all_healthy
                    assert result.lookups == reference.lookups

    def test_restricted_and_budgeted_array_path(self, q7):
        delta = q7.diagnosability()
        faults = random_faults(q7, delta, seed=2)
        table = generate_syndrome(q7, faults, seed=2, full_table=True)
        array = generate_syndrome(q7, faults, seed=2, backend="array")
        cls = q7.partition_scheme(1).first(1)[0]
        reference = set_builder(q7, table, cls.representative, diagnosability=delta,
                                restrict=cls.contains, compiled=False)
        fast = set_builder(q7, array, cls.representative, diagnosability=delta,
                           restrict=cls.contains)
        assert fast.nodes == reference.nodes
        assert fast.lookups == reference.lookups
        budgeted = set_builder(q7, array, 0, diagnosability=delta, max_nodes=9)
        assert budgeted.truncated and budgeted.size <= 9

    def test_full_diagnosis_equivalence(self, q7):
        delta = q7.diagnosability()
        for seed in range(3):
            faults = random_faults(q7, delta, seed=seed)
            reference = GeneralDiagnoser(q7, compiled=False).diagnose(
                generate_syndrome(q7, faults, seed=seed, full_table=True)
            )
            fast = GeneralDiagnoser(q7).diagnose(
                generate_syndrome(q7, faults, seed=seed, backend="array")
            )
            assert fast.faulty == reference.faulty == faults
            assert fast.healthy_nodes == reference.healthy_nodes
            assert fast.lookups == reference.lookups
