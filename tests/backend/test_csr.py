"""Property tests for the compiled CSR topology backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import CSRAdjacency, compile_network
from repro.networks import ExplicitNetwork
from repro.networks.registry import cached_network, compiled_network

from ..conftest import ALL_FAMILIES, cached_network as tiny_cached_network


class TestRowsMatchNeighbors:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_rows_equal_sorted_neighbors_for_every_family(self, family):
        network = tiny_cached_network(family, "tiny")
        csr = compile_network(network)
        assert csr.num_nodes == network.num_nodes
        for v in range(network.num_nodes):
            expected = sorted(network.neighbors(v))
            assert list(csr.rows[v]) == expected
            assert csr.neighbors(v).tolist() == expected
            assert csr.degree(v) == len(expected)

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_degree_extremes_match(self, family):
        network = tiny_cached_network(family, "tiny")
        csr = compile_network(network)
        assert csr.max_degree == network.max_degree
        assert csr.min_degree == network.min_degree


class TestHasEdge:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_bisect_matches_adjacency(self, family):
        network = tiny_cached_network(family, "tiny")
        csr = compile_network(network)
        neighbor_sets = [set(network.neighbors(v)) for v in range(network.num_nodes)]
        probe = range(0, network.num_nodes, max(1, network.num_nodes // 16))
        for u in probe:
            for v in probe:
                if u == v:
                    continue
                assert csr.has_edge(u, v) == (v in neighbor_sets[u])

    def test_network_has_edge_routes_through_backend(self):
        network = ExplicitNetwork([(1, 2), (0, 2), (0, 1), ()])
        assert network.has_edge(0, 1) and network.has_edge(2, 0)
        assert not network.has_edge(0, 3) and not network.has_edge(3, 1)
        # The compiled form was cached on the instance by the first call.
        assert getattr(network, "_csr_adjacency", None) is not None


class TestMemoization:
    def test_compile_is_idempotent_per_instance(self, q5):
        assert compile_network(q5) is compile_network(q5)

    def test_compile_accepts_compiled(self, q5):
        csr = compile_network(q5)
        assert compile_network(csr) is csr

    def test_registry_shares_instances_and_compiled_topology(self):
        a = cached_network("hypercube", dimension=6)
        b = cached_network("hypercube", dimension=6)
        assert a is b
        net, csr = compiled_network("hypercube", dimension=6)
        assert net is a
        assert csr is compile_network(a)


class TestPairLayout:
    def test_pair_counts(self, q5):
        csr = compile_network(q5)
        assert csr.num_pairs == sum(
            d * (d - 1) // 2 for d in (csr.degree(v) for v in range(csr.num_nodes))
        )

    def test_pair_members_are_sorted_neighbor_pairs(self, q5):
        csr = compile_network(q5)
        pu, pv, pw = csr.pair_members()
        for u in range(csr.num_nodes):
            lo, hi = int(csr.pair_indptr[u]), int(csr.pair_indptr[u + 1])
            row = csr.rows[u]
            expected = [(row[i], row[j]) for i in range(len(row))
                        for j in range(i + 1, len(row))]
            assert (pu[lo:hi] == u).all()
            assert list(zip(pv[lo:hi].tolist(), pw[lo:hi].tolist())) == expected


class TestBoundary:
    @pytest.mark.parametrize("family", ["hypercube", "star", "kary_ncube"])
    def test_boundary_matches_bruteforce(self, family):
        network = tiny_cached_network(family, "tiny")
        csr = compile_network(network)
        rng = np.random.default_rng(0)
        for _ in range(5):
            members = set(
                rng.choice(network.num_nodes, size=network.num_nodes // 3,
                           replace=False).tolist()
            )
            brute = {
                nb for u in members for nb in network.neighbors(u) if nb not in members
            }
            assert csr.boundary(members) == brute
            mask = np.zeros(network.num_nodes, dtype=bool)
            mask[list(members)] = True
            assert csr.boundary(mask) == brute

    def test_empty_members(self, q5):
        assert compile_network(q5).boundary(set()) == set()


class TestValidation:
    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError, match="disagree"):
            CSRAdjacency([0, 2], [1])
