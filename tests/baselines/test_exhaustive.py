"""Tests for the exhaustive ground-truth diagnoser."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.baselines import AmbiguousSyndromeError, ExhaustiveDiagnoser
from repro.core.syndrome import generate_syndrome
from repro.networks import ExplicitNetwork, Hypercube


@pytest.fixture
def q4():
    return ExplicitNetwork.from_networkx(
        nx.convert_node_labels_to_integers(nx.hypercube_graph(4), ordering="sorted"),
        diagnosability=4,
        connectivity=4,
        family="Q4",
    )


class TestExhaustiveDiagnoser:
    def test_recovers_small_fault_set(self, q4):
        faults = frozenset({1, 9})
        syndrome = generate_syndrome(q4, faults, seed=0)
        assert ExhaustiveDiagnoser(q4, max_faults=2).diagnose(syndrome) == faults

    def test_recovers_empty_fault_set(self, q4):
        syndrome = generate_syndrome(q4, frozenset())
        assert ExhaustiveDiagnoser(q4, max_faults=2).diagnose(syndrome) == frozenset()

    @pytest.mark.parametrize("behavior", ["all_zero", "all_one", "mimic"])
    def test_behavior_independent(self, q4, behavior):
        faults = frozenset({0, 15})
        syndrome = generate_syndrome(q4, faults, behavior=behavior, seed=3)
        assert ExhaustiveDiagnoser(q4, max_faults=2).diagnose(syndrome) == faults

    def test_ambiguous_beyond_diagnosability(self):
        # N(u) vs N(u) ∪ {u} with mimicking faulty testers is the classical
        # ambiguity witness once the search bound exceeds the diagnosability.
        cube = Hypercube(4)
        faults = frozenset(cube.neighbors(0))
        syndrome = generate_syndrome(cube, faults, behavior="mimic", seed=0)
        with pytest.raises(AmbiguousSyndromeError) as excinfo:
            ExhaustiveDiagnoser(cube, max_faults=len(faults) + 1).diagnose(syndrome)
        candidates = excinfo.value.candidates
        assert frozenset(faults) in candidates
        assert frozenset(faults | {0}) in candidates

    def test_no_consistent_candidate_raises(self, q4):
        # Search bound smaller than the actual number of faults.
        faults = frozenset({1, 9, 6})
        syndrome = generate_syndrome(q4, faults, seed=0)
        with pytest.raises(ValueError, match="no fault set"):
            ExhaustiveDiagnoser(q4, max_faults=1).diagnose(syndrome)

    def test_default_bound_is_diagnosability(self, q4):
        diagnoser = ExhaustiveDiagnoser(q4)
        faults = frozenset({2, 5})
        syndrome = generate_syndrome(q4, faults, seed=1)
        assert diagnoser.diagnose(syndrome) == faults

    def test_agrees_with_general_algorithm(self):
        from repro.core.diagnosis import diagnose

        cube = Hypercube(5)
        faults = frozenset({7, 21, 30})
        syndrome = generate_syndrome(cube, faults, seed=5)
        general = diagnose(cube, syndrome).faulty
        exhaustive = ExhaustiveDiagnoser(cube, max_faults=3).diagnose(syndrome)
        assert general == exhaustive == faults
