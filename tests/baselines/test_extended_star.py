"""Tests for the extended-star (Chiang & Tan style) local diagnoser."""

from __future__ import annotations

import pytest

from repro.baselines import ExtendedStarDiagnoser, build_extended_star
from repro.core.faults import clustered_faults, random_faults
from repro.core.syndrome import generate_syndrome, syndrome_table_size
from repro.networks import Hypercube, StarGraph


class TestExtendedStarStructure:
    def test_branches_are_node_disjoint(self):
        cube = Hypercube(7)
        star = build_extended_star(cube, 0)
        seen: set[int] = set()
        for branch in star.branches:
            assert not seen.intersection(branch)
            seen.update(branch)
        assert 0 not in seen

    def test_branches_are_paths_from_root(self):
        cube = Hypercube(7)
        star = build_extended_star(cube, 5)
        for branch in star.branches:
            previous = 5
            for node in branch:
                assert cube.has_edge(previous, node)
                previous = node

    def test_one_branch_per_neighbor_on_hypercubes(self):
        cube = Hypercube(7)
        star = build_extended_star(cube, 0)
        assert star.num_branches == 7

    def test_depth_limits_branch_length(self):
        cube = Hypercube(7)
        star = build_extended_star(cube, 0, depth=2)
        assert all(len(branch) <= 2 for branch in star.branches)

    def test_nodes_include_root(self):
        cube = Hypercube(6)
        star = build_extended_star(cube, 3)
        assert 3 in star.nodes()

    def test_star_graph_roots(self):
        net = StarGraph(5)
        star = build_extended_star(net, 0)
        assert star.num_branches == 4


class TestExtendedStarDiagnosis:
    @pytest.mark.parametrize("seed", range(5))
    def test_exact_diagnosis_on_hypercube(self, seed):
        cube = Hypercube(7)
        faults = random_faults(cube, 7, seed=seed)
        syndrome = generate_syndrome(cube, faults, seed=seed)
        result = ExtendedStarDiagnoser(cube).diagnose(syndrome)
        assert result.faulty == faults

    @pytest.mark.parametrize("behavior", ["all_zero", "all_one", "mimic", "anti_mimic"])
    def test_exact_diagnosis_adversarial_testers(self, behavior):
        cube = Hypercube(7)
        faults = clustered_faults(cube, 7, seed=4)
        syndrome = generate_syndrome(cube, faults, behavior=behavior, seed=4)
        result = ExtendedStarDiagnoser(cube).diagnose(syndrome)
        assert result.faulty == faults

    def test_exact_diagnosis_on_star_graph(self):
        net = StarGraph(6)
        faults = random_faults(net, 5, seed=8)
        syndrome = generate_syndrome(net, faults, seed=8)
        result = ExtendedStarDiagnoser(net).diagnose(syndrome)
        assert result.faulty == faults

    def test_healthy_network_all_locally_decided(self):
        cube = Hypercube(7)
        syndrome = generate_syndrome(cube, frozenset())
        result = ExtendedStarDiagnoser(cube).diagnose(syndrome)
        assert result.faulty == frozenset()
        assert result.locally_decided == cube.num_nodes
        assert result.defaulted == 0

    def test_local_verdicts_are_sound(self):
        """A node locally classified healthy/faulty is truly so."""
        cube = Hypercube(7)
        faults = random_faults(cube, 7, seed=3)
        syndrome = generate_syndrome(cube, faults, seed=3)
        diagnoser = ExtendedStarDiagnoser(cube)
        for x in range(0, cube.num_nodes, 7):
            verdict = diagnoser.classify_locally(syndrome, x)
            if verdict == "healthy":
                assert x not in faults
            elif verdict == "faulty":
                assert x in faults

    def test_consults_large_fraction_of_table(self):
        """Unlike Set_Builder, the per-node rule reads a table-sized number of entries."""
        cube = Hypercube(7)
        faults = random_faults(cube, 7, seed=0)
        syndrome = generate_syndrome(cube, faults, seed=0)
        result = ExtendedStarDiagnoser(cube).diagnose(syndrome)
        # At least one chain test per (node, branch) pair.
        assert result.lookups >= cube.num_nodes * cube.max_degree

    def test_agrees_with_general_algorithm(self):
        from repro.core.diagnosis import diagnose

        cube = Hypercube(7)
        faults = clustered_faults(cube, 6, seed=1)
        syndrome_a = generate_syndrome(cube, faults, seed=1)
        syndrome_b = generate_syndrome(cube, faults, seed=1)
        assert ExtendedStarDiagnoser(cube).diagnose(syndrome_a).faulty == \
            diagnose(cube, syndrome_b).faulty == faults
