"""Tests for Yang's cycle-decomposition diagnoser (the paper's Section 3 review)."""

from __future__ import annotations

import pytest

from repro.baselines import YangCycleDiagnoser
from repro.core.faults import clustered_faults, random_faults
from repro.core.syndrome import generate_syndrome
from repro.networks import Hypercube, StarGraph


class TestCycleDecomposition:
    def test_cycles_partition_the_node_set(self):
        cube = Hypercube(7)
        diagnoser = YangCycleDiagnoser(cube)
        cycles = diagnoser.cycles()
        seen = [node for cycle in cycles for node in cycle]
        assert sorted(seen) == list(range(cube.num_nodes))

    def test_cycles_longer_than_dimension(self):
        cube = Hypercube(9)
        for cycle in YangCycleDiagnoser(cube).cycles():
            assert len(cycle) > 9

    def test_cycle_edges_exist_in_graph(self):
        cube = Hypercube(7)
        for cycle in YangCycleDiagnoser(cube).cycles():
            for i in range(len(cycle)):
                assert cube.has_edge(cycle[i], cycle[(i + 1) % len(cycle)])

    def test_consecutive_cycles_joined_by_matchings(self):
        """Fig. 1: cycles with adjacent prefixes are joined by a perfect matching."""
        cube = Hypercube(7)
        diagnoser = YangCycleDiagnoser(cube)
        cycles = diagnoser.cycles()
        m = diagnoser.sub_dimension
        # Prefixes 0 and 1 differ in one bit, so cycle 0 and cycle 1 are joined
        # by the dimension-m matching.
        first, second = set(cycles[0]), set(cycles[1])
        matched = sum(1 for v in first if (v ^ (1 << m)) in second)
        assert matched == len(first)

    def test_rejects_non_hypercube(self):
        with pytest.raises(TypeError):
            YangCycleDiagnoser(StarGraph(5))

    def test_sub_dimension_validation(self):
        with pytest.raises(ValueError):
            YangCycleDiagnoser(Hypercube(7), sub_dimension=9)


class TestYangDiagnosis:
    @pytest.mark.parametrize("seed", range(6))
    def test_exact_diagnosis_random_faults(self, seed):
        cube = Hypercube(7)
        faults = random_faults(cube, 7, seed=seed)
        syndrome = generate_syndrome(cube, faults, seed=seed)
        result = YangCycleDiagnoser(cube).diagnose(syndrome)
        assert result.faulty == faults

    @pytest.mark.parametrize("behavior", ["all_zero", "all_one", "mimic"])
    def test_exact_diagnosis_adversarial_testers(self, behavior):
        cube = Hypercube(8)
        faults = clustered_faults(cube, 8, seed=2)
        syndrome = generate_syndrome(cube, faults, behavior=behavior, seed=2)
        result = YangCycleDiagnoser(cube).diagnose(syndrome)
        assert result.faulty == faults

    def test_healthy_network(self):
        cube = Hypercube(7)
        syndrome = generate_syndrome(cube, frozenset())
        result = YangCycleDiagnoser(cube).diagnose(syndrome)
        assert result.faulty == frozenset()
        assert result.healthy == frozenset(range(cube.num_nodes))
        assert result.quiet_cycle_index == 0

    def test_skips_cycles_containing_faults(self):
        cube = Hypercube(7)
        diagnoser = YangCycleDiagnoser(cube)
        # Put a fault on each of the first three cycles.
        cycles = diagnoser.cycles()
        faults = frozenset({cycles[0][0], cycles[1][3], cycles[2][5]})
        syndrome = generate_syndrome(cube, faults, seed=0)
        result = diagnoser.diagnose(syndrome)
        assert result.quiet_cycle_index >= 3
        assert result.faulty == faults

    def test_lookups_recorded(self):
        cube = Hypercube(7)
        faults = random_faults(cube, 4, seed=1)
        syndrome = generate_syndrome(cube, faults, seed=1)
        result = YangCycleDiagnoser(cube).diagnose(syndrome)
        assert result.lookups == syndrome.lookups

    def test_agrees_with_general_algorithm(self):
        from repro.core.diagnosis import diagnose

        cube = Hypercube(8)
        for seed in range(3):
            faults = random_faults(cube, 8, seed=seed)
            syndrome_a = generate_syndrome(cube, faults, seed=seed)
            syndrome_b = generate_syndrome(cube, faults, seed=seed)
            assert YangCycleDiagnoser(cube).diagnose(syndrome_a).faulty == \
                diagnose(cube, syndrome_b).faulty
