"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.networks.registry import FAMILIES


# --------------------------------------------------------------------------- helpers
def small_instance(family: str):
    """Construct the registry's small instance of a family (cached per session)."""
    spec = FAMILIES[family]
    return spec.constructor(**spec.small)


# Test-sized instances: small enough for exhaustive structural checks
# (regularity, symmetry, partition validation) yet non-trivial.
TINY_PARAMS: dict[str, dict] = {
    "hypercube": {"dimension": 5},
    "crossed_cube": {"dimension": 5},
    "twisted_cube": {"dimension": 5},
    "folded_hypercube": {"dimension": 5},
    "enhanced_hypercube": {"dimension": 5, "k": 3},
    "augmented_cube": {"dimension": 5},
    "shuffle_cube": {"dimension": 6},
    "twisted_n_cube": {"dimension": 5},
    "kary_ncube": {"n": 2, "k": 6},
    "augmented_kary_ncube": {"n": 2, "k": 6},
    "star": {"n": 5},
    "nk_star": {"n": 5, "k": 3},
    "pancake": {"n": 5},
    "arrangement": {"n": 5, "k": 2},
    "locally_twisted_cube": {"dimension": 5},
    "mobius_cube": {"dimension": 5},
}


_instance_cache: dict[tuple[str, str], object] = {}


def cached_network(family: str, size: str = "tiny"):
    """Construct (once per session) a network instance of the requested size."""
    key = (family, size)
    if key not in _instance_cache:
        spec = FAMILIES[family]
        if size == "tiny":
            params = TINY_PARAMS[family]
        elif size == "small":
            params = spec.small
        else:
            raise ValueError(size)
        _instance_cache[key] = spec.constructor(**params)
    return _instance_cache[key]


ALL_FAMILIES = sorted(FAMILIES)


@pytest.fixture(params=ALL_FAMILIES)
def tiny_network(request):
    """One tiny instance per network family (parametrised fixture)."""
    return cached_network(request.param, "tiny")


@pytest.fixture(params=ALL_FAMILIES)
def small_network(request):
    """One registry 'small' instance per network family (parametrised fixture)."""
    return cached_network(request.param, "small")


@pytest.fixture
def q5():
    return cached_network("hypercube", "tiny")


@pytest.fixture
def q7():
    return cached_network("hypercube", "small")
