"""Tests for the general diagnosis driver (Theorem 1 and the Section 5 drivers)."""

from __future__ import annotations

import pytest

from repro.core.diagnosis import DiagnosisError, GeneralDiagnoser, diagnose
from repro.core.faults import clustered_faults, neighborhood_faults, random_faults, spread_faults
from repro.core.syndrome import generate_syndrome
from repro.core.verification import assert_mm_semantics
from repro.networks import ExplicitNetwork, Hypercube

from ..conftest import ALL_FAMILIES, cached_network

# Families whose registry "small" instance satisfies the size requirements of
# the paper's approach (large enough healthy component for the certificate).
DIAGNOSABLE_SMALL = [f for f in ALL_FAMILIES]


class TestTheorem1Correctness:
    """The diagnosed set equals the injected fault set across the whole zoo."""

    @pytest.mark.parametrize("family", DIAGNOSABLE_SMALL)
    @pytest.mark.parametrize("placement", ["random", "clustered"])
    def test_exact_diagnosis_at_maximum_fault_count(self, family, placement):
        network = cached_network(family, "small")
        delta = network.diagnosability()
        if placement == "random":
            faults = random_faults(network, delta, seed=11)
        else:
            faults = clustered_faults(network, delta, seed=11)
        syndrome = generate_syndrome(network, faults, seed=11)
        result = GeneralDiagnoser(network).diagnose(syndrome)
        assert result.faulty == faults

    @pytest.mark.parametrize("family", DIAGNOSABLE_SMALL)
    def test_exact_diagnosis_with_few_faults(self, family):
        network = cached_network(family, "small")
        faults = random_faults(network, 2, seed=5)
        syndrome = generate_syndrome(network, faults, seed=5)
        result = GeneralDiagnoser(network).diagnose(syndrome)
        assert result.faulty == faults

    @pytest.mark.parametrize("family", DIAGNOSABLE_SMALL)
    def test_no_faults_diagnosed_on_healthy_network(self, family):
        network = cached_network(family, "small")
        syndrome = generate_syndrome(network, frozenset())
        result = GeneralDiagnoser(network).diagnose(syndrome)
        assert result.faulty == frozenset()
        assert result.healthy_nodes == frozenset(range(network.num_nodes))

    @pytest.mark.parametrize(
        "behavior", ["random", "all_zero", "all_one", "mimic", "anti_mimic"]
    )
    def test_correct_for_every_faulty_tester_behavior(self, behavior):
        cube = cached_network("hypercube", "small")
        faults = random_faults(cube, 7, seed=23)
        syndrome = generate_syndrome(cube, faults, behavior=behavior, seed=23)
        assert GeneralDiagnoser(cube).diagnose(syndrome).faulty == faults

    @pytest.mark.parametrize("seed", range(8))
    def test_many_random_instances_on_q8(self, seed):
        cube = Hypercube(8)
        faults = random_faults(cube, 8, seed=seed)
        syndrome = generate_syndrome(cube, faults, seed=seed)
        assert diagnose(cube, syndrome).faulty == faults

    def test_neighborhood_fault_pattern(self):
        cube = Hypercube(8)
        faults = neighborhood_faults(cube, center=100, count=8)
        syndrome = generate_syndrome(cube, faults, behavior="mimic", seed=1)
        assert diagnose(cube, syndrome).faulty == faults

    def test_spread_fault_pattern(self):
        cube = Hypercube(8)
        faults = spread_faults(cube, 8, seed=4)
        syndrome = generate_syndrome(cube, faults, seed=4)
        assert diagnose(cube, syndrome).faulty == faults

    def test_fault_count_below_diagnosability_sweep(self):
        cube = Hypercube(7)
        for count in range(0, 8):
            faults = random_faults(cube, count, seed=count)
            syndrome = generate_syndrome(cube, faults, seed=count)
            assert diagnose(cube, syndrome).faulty == faults


class TestDiagnosisResult:
    def test_healthy_nodes_exclude_faults_and_include_root(self):
        cube = Hypercube(8)
        faults = random_faults(cube, 6, seed=2)
        syndrome = generate_syndrome(cube, faults, seed=2)
        result = diagnose(cube, syndrome)
        assert result.healthy_root in result.healthy_nodes
        assert result.healthy_nodes.isdisjoint(faults)

    def test_tree_spans_healthy_nodes(self):
        cube = Hypercube(7)
        faults = random_faults(cube, 5, seed=9)
        syndrome = generate_syndrome(cube, faults, seed=9)
        result = diagnose(cube, syndrome)
        assert set(result.tree_parent) == set(result.healthy_nodes) - {result.healthy_root}
        for child, parent in result.tree_parent.items():
            assert cube.has_edge(child, parent)
            assert parent in result.healthy_nodes

    def test_probe_records_present(self):
        cube = Hypercube(7)
        faults = random_faults(cube, 7, seed=0)
        syndrome = generate_syndrome(cube, faults, seed=0)
        result = diagnose(cube, syndrome)
        assert result.num_probes >= 1
        assert any(p.certified for p in result.probes)
        assert all(p.lookups >= 0 for p in result.probes)

    def test_lookup_total_includes_probes_and_final_run(self):
        cube = Hypercube(7)
        faults = random_faults(cube, 7, seed=0)
        syndrome = generate_syndrome(cube, faults, seed=0)
        result = diagnose(cube, syndrome)
        assert result.lookups == syndrome.lookups
        assert result.lookups >= sum(p.lookups for p in result.probes)

    def test_summary_mentions_fault_count(self):
        cube = Hypercube(7)
        faults = random_faults(cube, 3, seed=0)
        syndrome = generate_syndrome(cube, faults, seed=0)
        result = diagnose(cube, syndrome)
        assert "3 faults" in result.summary()

    def test_partition_level_reported(self):
        cube = Hypercube(8)
        faults = random_faults(cube, 8, seed=1)
        syndrome = generate_syndrome(cube, faults, seed=1)
        result = diagnose(cube, syndrome)
        assert result.partition_level in (0, 1, None)


class TestDriverConfiguration:
    def test_probe_count_limited_by_delta_plus_one_per_level(self):
        cube = Hypercube(8)
        faults = clustered_faults(cube, 8, seed=3)
        syndrome = generate_syndrome(cube, faults, seed=3)
        result = diagnose(cube, syndrome)
        partition_probes = [p for p in result.probes if p.kind == "partition"]
        levels = cube.max_partition_level() + 1
        assert len(partition_probes) <= (cube.diagnosability() + 1) * levels

    def test_use_partition_false_uses_fallback_probes(self):
        cube = Hypercube(8)
        faults = random_faults(cube, 8, seed=1)
        syndrome = generate_syndrome(cube, faults, seed=1)
        result = GeneralDiagnoser(cube, use_partition=False).diagnose(syndrome)
        assert result.faulty == faults
        assert result.partition_level is None
        assert all(p.kind.startswith("fallback") for p in result.probes)

    def test_custom_diagnosability_bound(self):
        cube = Hypercube(8)
        faults = random_faults(cube, 4, seed=1)
        syndrome = generate_syndrome(cube, faults, seed=1)
        result = GeneralDiagnoser(cube, diagnosability=4).diagnose(syndrome)
        assert result.faulty == faults

    def test_invalid_diagnosability_rejected(self):
        with pytest.raises(ValueError):
            GeneralDiagnoser(Hypercube(8), diagnosability=0)

    def test_max_probes_per_level_respected(self):
        cube = Hypercube(8)
        faults = clustered_faults(cube, 8, seed=3)
        syndrome = generate_syndrome(cube, faults, seed=3)
        result = GeneralDiagnoser(cube, max_probes_per_level=2).diagnose(syndrome)
        assert result.faulty == faults

    def test_diagnosis_error_on_pathological_instance(self):
        # A 6-node cycle with diagnosability forced to 2 and 2 faults placed
        # so that no contributor certificate can ever fire (the healthy part
        # is a path of 4 nodes: at most 2 internal nodes ≤ δ).
        import networkx as nx

        net = ExplicitNetwork.from_networkx(nx.cycle_graph(6), diagnosability=2,
                                            connectivity=2)
        faults = {0, 3}
        syndrome = generate_syndrome(net, faults, seed=0)
        with pytest.raises(DiagnosisError):
            GeneralDiagnoser(net).diagnose(syndrome)


class TestSyndromeInteraction:
    def test_diagnosis_consistent_with_syndrome_semantics(self):
        cube = Hypercube(7)
        faults = random_faults(cube, 6, seed=13)
        syndrome = generate_syndrome(cube, faults, seed=13)
        result = diagnose(cube, syndrome)
        assert_mm_semantics(cube, syndrome, result.faulty)

    def test_full_table_and_lazy_syndromes_give_same_answer(self):
        cube = Hypercube(7)
        faults = random_faults(cube, 7, seed=21)
        lazy = generate_syndrome(cube, faults, seed=21)
        table = generate_syndrome(cube, faults, seed=21, full_table=True)
        assert diagnose(cube, lazy).faulty == diagnose(cube, table).faulty == faults
