"""Tests for the fault-placement generators."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.faults import (
    clustered_faults,
    neighborhood_faults,
    random_faults,
    scenario_suite,
    spread_faults,
)
from repro.networks import Hypercube


class TestRandomFaults:
    def test_size_and_range(self, q7):
        faults = random_faults(q7, 7, seed=0)
        assert len(faults) == 7
        assert all(0 <= f < q7.num_nodes for f in faults)

    def test_reproducible(self, q7):
        assert random_faults(q7, 5, seed=3) == random_faults(q7, 5, seed=3)

    def test_zero_faults(self, q7):
        assert random_faults(q7, 0) == frozenset()

    def test_negative_rejected(self, q7):
        with pytest.raises(ValueError):
            random_faults(q7, -1)

    def test_too_many_rejected(self, q5):
        with pytest.raises(ValueError):
            random_faults(q5, q5.num_nodes + 1)


class TestClusteredFaults:
    def test_cluster_is_connected(self, q7):
        faults = clustered_faults(q7, 7, seed=1)
        assert len(faults) == 7
        sub = q7.to_networkx().subgraph(faults)
        assert nx.is_connected(sub)

    def test_zero_faults(self, q7):
        assert clustered_faults(q7, 0) == frozenset()

    def test_single_fault(self, q7):
        assert len(clustered_faults(q7, 1, seed=5)) == 1


class TestNeighborhoodFaults:
    def test_covers_neighbourhood(self):
        cube = Hypercube(6)
        faults = neighborhood_faults(cube, center=9)
        assert faults == frozenset(cube.neighbors(9))

    def test_partial_neighbourhood(self):
        cube = Hypercube(6)
        faults = neighborhood_faults(cube, center=9, count=3)
        assert len(faults) == 3
        assert faults.issubset(set(cube.neighbors(9)))

    def test_count_exceeding_degree_rejected(self):
        cube = Hypercube(6)
        with pytest.raises(ValueError):
            neighborhood_faults(cube, center=9, count=7)


class TestSpreadFaults:
    def test_size(self, q7):
        faults = spread_faults(q7, 7, seed=2)
        assert len(faults) == 7

    def test_faults_pairwise_non_adjacent_when_possible(self):
        cube = Hypercube(7)
        faults = spread_faults(cube, 5, seed=0)
        graph = cube.to_networkx()
        assert graph.subgraph(faults).number_of_edges() == 0


class TestScenarioSuite:
    def test_suite_respects_diagnosability(self, q7):
        delta = q7.diagnosability()
        for scenario in scenario_suite(q7, seed=0):
            assert scenario.size <= delta
            assert scenario.name

    def test_suite_contains_all_placements(self, q7):
        names = {s.name.split("-")[0] for s in scenario_suite(q7, seed=0)}
        assert names == {"random", "clustered", "spread", "neighborhood"}

    def test_max_faults_cap(self, q7):
        scenarios = list(scenario_suite(q7, seed=0, max_faults=2))
        assert all(s.size <= 2 for s in scenarios)
