"""Native kernel build: cross-process compile lock and cache behaviour.

Regression: the first-use compile had no inter-process lock, so several
processes starting on a cold cache (a worker pool warming up, parallel test
runs) each ran their own compiler invocation.  ``_build_lock`` serialises
the build-or-wait section; these tests drive real subprocesses against one
cold cache directory and count actual compiler runs.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

import repro.core.native as native

_HAVE_COMPILER = any(shutil.which(c) for c in native._COMPILERS)

#: Child: count every ``_compile`` call into a shared file (O_APPEND writes
#: of one short line are atomic on POSIX), stretch the build window so
#: concurrent children genuinely overlap, then load the kernel.
_CHILD = """
import os, sys, time
import repro.core.native as native

marker = sys.argv[1]
real_compile = native._compile

def counting_compile(source, target):
    with open(marker, "a") as handle:
        handle.write(f"compile:{os.getpid()}\\n")
    time.sleep(0.3)  # widen the race window the lock must close
    return real_compile(source, target)

native._compile = counting_compile
kernel = native.load_stacked_kernel()
print("loaded" if kernel is not None else "missing")
"""


def _spawn_children(tmp_path: Path, count: int):
    marker = tmp_path / "compiles.log"
    marker.touch()
    env = dict(os.environ)
    env["XDG_CACHE_HOME"] = str(tmp_path / "cache")
    env.pop("REPRO_NO_NATIVE", None)
    env["PYTHONPATH"] = str(Path(native.__file__).parents[2])
    children = [
        subprocess.Popen(
            [sys.executable, "-c", _CHILD, str(marker)],
            env=env, stdout=subprocess.PIPE, text=True,
        )
        for _ in range(count)
    ]
    outputs = [child.communicate(timeout=120)[0].strip() for child in children]
    assert all(child.returncode == 0 for child in children)
    return outputs, marker.read_text().splitlines()


@pytest.mark.skipif(not _HAVE_COMPILER, reason="no C compiler available")
@pytest.mark.skipif(native.fcntl is None, reason="no fcntl (non-POSIX)")
def test_concurrent_cold_start_compiles_exactly_once(tmp_path):
    outputs, compiles = _spawn_children(tmp_path, count=4)
    assert outputs == ["loaded"] * 4  # everyone got the kernel
    assert len(compiles) == 1  # one winner built; the rest waited and reused


@pytest.mark.skipif(not _HAVE_COMPILER, reason="no C compiler available")
def test_warm_cache_compiles_zero_times(tmp_path):
    # First process builds; a later process finds the library and never
    # touches the compiler.
    first, compiles_after_first = _spawn_children(tmp_path, count=1)
    assert first == ["loaded"]
    assert len(compiles_after_first) == 1
    second, compiles_after_second = _spawn_children(tmp_path, count=1)
    assert second == ["loaded"]
    assert len(compiles_after_second) == 1  # unchanged: cache hit


@pytest.mark.skipif(native.fcntl is None, reason="no fcntl (non-POSIX)")
def test_build_lock_excludes_a_concurrent_holder(tmp_path):
    import fcntl

    target = tmp_path / "stacked-test.so"
    with native._build_lock(target):
        lock_path = target.with_suffix(".lock")
        assert lock_path.exists()
        with open(lock_path, "w") as probe:
            with pytest.raises(BlockingIOError):
                fcntl.flock(probe, fcntl.LOCK_EX | fcntl.LOCK_NB)
    # Released on exit: a new holder acquires immediately.
    with open(lock_path, "w") as probe:
        fcntl.flock(probe, fcntl.LOCK_EX | fcntl.LOCK_NB)
        fcntl.flock(probe, fcntl.LOCK_UN)


def test_build_lock_degrades_without_fcntl(tmp_path, monkeypatch):
    monkeypatch.setattr(native, "fcntl", None)
    target = tmp_path / "stacked-test.so"
    with native._build_lock(target):
        pass  # lock-free fallback: context manager is a no-op
    assert not target.with_suffix(".lock").exists()
