"""Tests for the partition-probing utilities (and the certificate-threshold gap)."""

from __future__ import annotations

import pytest

from repro.core.partitions import (
    class_certifies_when_fault_free,
    minimal_certifying_level,
    probe_plan,
)
from repro.networks import Hypercube


class TestProbePlan:
    def test_at_most_delta_plus_one_classes(self):
        cube = Hypercube(9)
        plan = probe_plan(cube)
        assert len(plan) <= cube.diagnosability() + 1

    def test_classes_are_distinct(self):
        cube = Hypercube(9)
        plan = probe_plan(cube)
        representatives = [cls.representative for cls in plan]
        assert len(set(representatives)) == len(representatives)

    def test_max_probes_override(self):
        cube = Hypercube(9)
        assert len(probe_plan(cube, max_probes=3)) == 3


class TestCertificateThreshold:
    @pytest.mark.parametrize("n", [7, 9, 12])
    def test_paper_choice_does_not_certify(self, n):
        """DESIGN.md §4.5: the paper's minimal sub-cube (2^m > n) never reaches
        the contributor certificate — its fault-free Set_Builder tree has only
        2^(m-1) ≤ n internal nodes."""
        cube = Hypercube(n)
        cls = cube.partition_scheme(0).first(1)[0]
        assert cls.size <= 2 * n  # the paper's minimal choice
        assert not class_certifies_when_fault_free(cube, cls)

    @pytest.mark.parametrize("n", [7, 9, 12])
    def test_one_level_coarser_certifies(self, n):
        """Doubling the sub-cube (2^m > 2n) restores the certificate."""
        cube = Hypercube(n)
        level = minimal_certifying_level(cube)
        assert level == 1
        cls = cube.partition_scheme(level).first(1)[0]
        assert class_certifies_when_fault_free(cube, cls)

    def test_fault_free_subcube_contributors_are_half_the_class(self):
        """On a fault-free sub-cube the builder tree has exactly 2^(m-1) internal nodes."""
        from repro.core.set_builder import set_builder
        from repro.core.syndrome import LazySyndrome

        cube = Hypercube(10)
        for level in (0, 1, 2):
            cls = cube.partition_scheme(level).first(1)[0]
            result = set_builder(
                cube, LazySyndrome(cube, frozenset()), cls.representative,
                restrict=cls.contains,
            )
            assert len(result.contributors) == cls.size // 2

    def test_minimal_certifying_level_none_when_impossible(self):
        # SQ_6's only admissible classes have 4 nodes < δ = 6: never certifies.
        from repro.networks import ShuffleCube

        assert minimal_certifying_level(ShuffleCube(6)) is None

    @pytest.mark.parametrize("family", ["star", "pancake", "nk_star"])
    def test_permutation_families_certify_at_level0(self, family):
        from ..conftest import cached_network

        network = cached_network(family, "small")
        cls = network.partition_scheme(0).first(1)[0]
        assert class_certifies_when_fault_free(network, cls)
