"""Tests for the ``Set_Builder`` procedure (paper Section 4.1)."""

from __future__ import annotations

import pytest

from repro.core.set_builder import certificate_node_budget, set_builder
from repro.core.syndrome import LazySyndrome, generate_syndrome
from repro.networks import Hypercube, StarGraph


def healthy_syndrome(network):
    return LazySyndrome(network, frozenset())


class TestFaultFreeGrowth:
    def test_covers_whole_hypercube(self, q7):
        result = set_builder(q7, healthy_syndrome(q7), 0)
        assert result.nodes == set(range(q7.num_nodes))
        assert result.all_healthy
        assert not result.truncated

    def test_tree_is_spanning_and_acyclic(self, q5):
        result = set_builder(q5, healthy_syndrome(q5), 0)
        # Every node except the root has exactly one parent, and following
        # parents always reaches the root: a spanning tree.
        assert set(result.parent) == set(range(1, q5.num_nodes))
        for v in range(1, q5.num_nodes):
            assert result.depth_of(v) >= 1
        assert result.depth_of(0) == 0

    def test_tree_edges_are_graph_edges(self, q5):
        result = set_builder(q5, healthy_syndrome(q5), 0)
        for parent, child in result.tree_edges():
            assert q5.has_edge(parent, child)

    def test_bfs_like_depths(self, q5):
        # On a fault-free hypercube the tree is a BFS tree: the depth of a
        # node equals its Hamming distance from the root.
        result = set_builder(q5, healthy_syndrome(q5), 0)
        for v in range(q5.num_nodes):
            assert result.depth_of(v) == q5.hamming_distance(0, v)

    def test_contributors_are_internal_nodes(self, q5):
        result = set_builder(q5, healthy_syndrome(q5), 0)
        internal = set(result.parent.values())
        assert result.contributors == internal

    def test_rounds_equal_eccentricity(self, q5):
        result = set_builder(q5, healthy_syndrome(q5), 0)
        assert result.rounds == 5  # eccentricity of a node in Q_5

    def test_works_from_any_root(self, q5):
        for root in (1, 17, 31):
            result = set_builder(q5, healthy_syndrome(q5), root)
            assert result.nodes == set(range(q5.num_nodes))
            assert result.root == root


class TestWithFaults:
    def test_healthy_root_never_collects_faulty_nodes(self, q7):
        faults = frozenset({1, 2, 64, 100, 40, 77, 13})
        syndrome = generate_syndrome(q7, faults, seed=0)
        result = set_builder(q7, syndrome, 0, diagnosability=7)
        assert result.nodes.isdisjoint(faults)

    def test_grown_set_contains_reachable_healthy_nodes(self, q7):
        faults = frozenset({1, 2, 64, 100, 40, 77, 13})
        syndrome = generate_syndrome(q7, faults, seed=0)
        result = set_builder(q7, syndrome, 0, diagnosability=7)
        # The healthy part of Q_7 minus 7 faults is still connected for this
        # fault set, so U_r is exactly the complement of the fault set.
        assert result.nodes == set(range(q7.num_nodes)) - faults

    @pytest.mark.parametrize("behavior", ["random", "all_zero", "all_one", "mimic", "anti_mimic"])
    def test_certificate_soundness(self, q7, behavior):
        """If all_healthy fires, the grown set truly contains no fault."""
        from repro.core.faults import random_faults

        for seed in range(5):
            faults = random_faults(q7, 7, seed=seed)
            syndrome = generate_syndrome(q7, faults, behavior=behavior, seed=seed)
            for root in (0, 3, 97):
                result = set_builder(q7, syndrome, root, diagnosability=7)
                if result.all_healthy:
                    assert result.nodes.isdisjoint(faults)

    def test_run_from_faulty_root_with_quiet_tester(self, q5):
        # A faulty root that always answers 0 invites all its neighbours, but
        # the certificate must not fire unless > δ contributors appear —
        # and if it fires, the grown set must be healthy (soundness).
        faults = frozenset({0, 1, 2})
        syndrome = generate_syndrome(q5, faults, behavior="all_zero", seed=0)
        result = set_builder(q5, syndrome, 0, diagnosability=5)
        if result.all_healthy:
            assert result.nodes.isdisjoint(faults)

    def test_surrounded_root_stays_alone(self, q5):
        # All neighbours of the root are faulty: U_1 may contain the (faulty)
        # neighbours only if some test returned 0; with honest "all one"
        # answers U_r = {root}.
        faults = frozenset(q5.neighbors(0))
        syndrome = generate_syndrome(q5, faults, behavior="all_one", seed=0)
        result = set_builder(q5, syndrome, 0, diagnosability=5)
        assert result.nodes == {0}
        assert not result.all_healthy


class TestRestriction:
    def test_restricted_run_stays_inside_class(self, q7):
        scheme = q7.partition_scheme()
        cls = scheme.first(1)[0]
        syndrome = healthy_syndrome(q7)
        result = set_builder(q7, syndrome, cls.representative, restrict=cls.contains)
        members = set(cls.members(q7))
        assert result.nodes == members

    def test_root_outside_restriction_rejected(self, q7):
        scheme = q7.partition_scheme()
        cls = scheme.first(2)[1]
        with pytest.raises(ValueError, match="must belong"):
            set_builder(q7, healthy_syndrome(q7), 0, restrict=cls.contains)

    def test_restricted_lookups_bounded_by_class(self, q7):
        scheme = q7.partition_scheme()
        cls = scheme.first(1)[0]
        syndrome = healthy_syndrome(q7)
        result = set_builder(q7, syndrome, cls.representative, restrict=cls.contains)
        delta = q7.max_degree
        assert result.lookups <= (delta - 1) * (delta / 2 + result.size - 1) + delta**2


class TestControls:
    def test_max_nodes_budget(self, q7):
        syndrome = healthy_syndrome(q7)
        result = set_builder(q7, syndrome, 0, max_nodes=20)
        assert result.size <= 20
        assert result.truncated

    def test_stop_on_certificate(self, q7):
        syndrome = healthy_syndrome(q7)
        full = set_builder(q7, syndrome, 0)
        early = set_builder(q7, healthy_syndrome(q7), 0, stop_on_certificate=True)
        assert early.all_healthy
        assert early.size <= full.size

    def test_certificate_budget_guarantees_certificate(self, q7):
        budget = certificate_node_budget(7, 7)
        result = set_builder(q7, healthy_syndrome(q7), 0, max_nodes=budget)
        assert result.all_healthy

    def test_invalid_root_rejected(self, q5):
        with pytest.raises(ValueError):
            set_builder(q5, healthy_syndrome(q5), q5.num_nodes + 3)

    def test_default_diagnosability_taken_from_network(self, q7):
        result = set_builder(q7, healthy_syndrome(q7), 0)
        assert result.all_healthy  # δ defaulted to 7 and the certificate fired

    def test_lookups_counted_per_run(self, q7):
        syndrome = healthy_syndrome(q7)
        first = set_builder(q7, syndrome, 0)
        second = set_builder(q7, syndrome, 1)
        assert first.lookups > 0
        assert second.lookups > 0
        assert syndrome.lookups == first.lookups + second.lookups


class TestLookupAccounting:
    def test_section6_lookup_bound_on_hypercubes(self):
        """Measured lookups respect (Δ-1)(Δ/2 + |U_r| - 1) + Δ(Δ-1)/2."""
        for n in (6, 7, 8):
            cube = Hypercube(n)
            syndrome = healthy_syndrome(cube)
            result = set_builder(cube, syndrome, 0, diagnosability=n)
            bound = (n - 1) * (n / 2 + result.size - 1) + n * (n - 1) / 2
            assert result.lookups <= bound

    def test_lookup_bound_on_star_graph(self):
        star = StarGraph(5)
        syndrome = healthy_syndrome(star)
        result = set_builder(star, syndrome, 0, diagnosability=4)
        delta = star.max_degree
        bound = (delta - 1) * (delta / 2 + result.size - 1) + delta * (delta - 1) / 2
        assert result.lookups <= bound

    def test_far_fewer_lookups_than_full_table(self, q7):
        from repro.core.syndrome import syndrome_table_size

        syndrome = healthy_syndrome(q7)
        result = set_builder(q7, syndrome, 0)
        assert result.lookups < syndrome_table_size(q7) / 2
