"""Unit tests for the stacked ``set_builder_many`` kernel.

The exhaustive cross-family agreement checks live in
``tests/differential/test_stacked_kernel.py``; this module pins the kernel's
contract edges — input validation, width 0/1, duplicate syndromes in one
batch, the ``materialize=False`` light mode, and ``boundary_many``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.array_syndrome import ArraySyndrome
from repro.backend.csr import compile_network
from repro.core.faults import random_faults
from repro.core.set_builder import set_builder, set_builder_many


def _syndrome(network, seed: int) -> ArraySyndrome:
    csr = compile_network(network)
    faults = random_faults(network, network.diagnosability(), seed=seed)
    return ArraySyndrome.from_faults(csr, faults, seed=seed)


def _signature(result):
    return (
        result.root,
        frozenset(result.nodes),
        dict(result.parent),
        frozenset(result.contributors),
        result.rounds,
        result.lookups,
        result.all_healthy,
        result.truncated,
    )


class TestInputValidation:
    def test_empty_batch_returns_empty_list(self, q5):
        assert set_builder_many(q5, [], []) == []

    def test_mismatched_lengths_rejected(self, q5):
        syndrome = _syndrome(q5, 0)
        with pytest.raises(ValueError, match="one start node per syndrome"):
            set_builder_many(q5, [syndrome], [0, 1])

    def test_foreign_syndrome_rejected(self, q5, q7):
        """Every syndrome must be an ArraySyndrome over *this* compiled CSR."""
        with pytest.raises(ValueError, match="compiled topology"):
            set_builder_many(q5, [_syndrome(q7, 0)], [0])
        with pytest.raises(ValueError, match="compiled topology"):
            set_builder_many(q5, [_syndrome(q5, 0).to_table()], [0])

    def test_out_of_range_root_rejected(self, q5):
        syndrome = _syndrome(q5, 0)
        with pytest.raises(ValueError, match="not a node"):
            set_builder_many(q5, [syndrome], [q5.num_nodes])


class TestAgreement:
    def test_width_one_matches_vectorized_path(self, q5):
        reference = set_builder(q5, _syndrome(q5, 3), 0)
        [stacked] = set_builder_many(q5, [_syndrome(q5, 3)], [0])
        assert _signature(stacked) == _signature(reference)
        assert np.array_equal(stacked.member_mask, reference.member_mask)

    def test_duplicate_syndromes_in_one_batch(self, q5):
        """The same syndrome object twice: both rows agree, lookups add up."""
        syndrome = _syndrome(q5, 5)
        reference = set_builder(q5, _syndrome(q5, 5), 0)
        first, second = set_builder_many(q5, [syndrome, syndrome], [0, 0])
        assert _signature(first) == _signature(reference)
        assert _signature(second) == _signature(reference)
        # the shared counter saw both rows' lookups
        assert syndrome.lookups == 2 * reference.lookups

    def test_mixed_roots_over_one_syndrome_buffer(self, q5):
        buffers = [_syndrome(q5, 7) for _ in range(3)]
        roots = [0, 9, 21]
        stacked = set_builder_many(q5, buffers, roots)
        for root, result in zip(roots, stacked):
            reference = set_builder(q5, _syndrome(q5, 7), root)
            assert _signature(result) == _signature(reference)


class TestLightMode:
    def test_materialize_false_keeps_mask_and_counters(self, q5):
        reference = set_builder(q5, _syndrome(q5, 11), 0)
        [light] = set_builder_many(
            q5, [_syndrome(q5, 11)], [0], materialize=False
        )
        assert light.nodes == set() and light.parent == {}
        assert light.contributors == set()
        assert np.array_equal(light.member_mask, reference.member_mask)
        assert light.rounds == reference.rounds
        assert light.lookups == reference.lookups
        assert light.all_healthy == reference.all_healthy


class TestBoundaryMany:
    def test_matches_per_row_boundary(self, q5):
        csr = compile_network(q5)
        masks = []
        for seed in range(3):
            result = set_builder(q5, _syndrome(q5, seed), 0)
            masks.append(result.member_mask)
        stacked = csr.boundary_many(np.stack(masks))
        for mask, boundary in zip(masks, stacked):
            assert boundary == csr.boundary(mask)

    def test_empty_and_full_rows(self, q5):
        csr = compile_network(q5)
        rows = np.zeros((2, csr.num_nodes), dtype=bool)
        rows[1, :] = True
        assert csr.boundary_many(rows) == [set(), set()]

    def test_shape_validation(self, q5):
        csr = compile_network(q5)
        with pytest.raises(ValueError, match="boolean stack"):
            csr.boundary_many(np.zeros(csr.num_nodes, dtype=bool))
        with pytest.raises(ValueError, match="boolean stack"):
            csr.boundary_many(np.zeros((2, csr.num_nodes + 1), dtype=bool))


class TestZeroCopyAdoption:
    def test_copy_false_adopts_array(self, q5):
        csr = compile_network(q5)
        values = _syndrome(q5, 2).values_array.copy()
        syndrome = ArraySyndrome(csr, values, copy=False)
        assert syndrome.buffer is values  # no duplication
        values[0] ^= 1
        assert syndrome.values_array[0] == values[0]  # same storage

    def test_copy_false_validates_dtype_and_shape(self, q5):
        csr = compile_network(q5)
        with pytest.raises(ValueError, match="uint8"):
            ArraySyndrome(
                csr, np.zeros(csr.num_pairs, dtype=np.int64), copy=False
            )
        with pytest.raises(ValueError, match="uint8"):
            ArraySyndrome(
                csr,
                np.zeros((1, csr.num_pairs), dtype=np.uint8),
                copy=False,
            )

    def test_copy_false_still_checks_length(self, q5):
        csr = compile_network(q5)
        with pytest.raises(ValueError, match="test results"):
            ArraySyndrome(csr, np.zeros(3, dtype=np.uint8), copy=False)

    def test_adopted_buffer_diagnoses_identically(self, q5):
        csr = compile_network(q5)
        reference = set_builder(q5, _syndrome(q5, 4), 0)
        adopted = ArraySyndrome(
            csr, _syndrome(q5, 4).values_array.copy(), copy=False
        )
        assert _signature(set_builder(q5, adopted, 0)) == _signature(reference)


class TestNativeKernel:
    """The optional C inner loop and its pure-numpy fallback are the same
    kernel: every output field agrees exactly, and losing the compiler (or
    setting ``REPRO_NO_NATIVE``) degrades silently to the numpy rounds."""

    def test_forced_off_disables_native(self, monkeypatch):
        from repro.core import native

        monkeypatch.setattr(native, "_forced_off", True)
        assert native.load_stacked_kernel() is None
        assert native.native_kernel_active() is False

    def test_missing_source_degrades_to_none(self, monkeypatch, tmp_path):
        from repro.core import native

        monkeypatch.setattr(native, "_kernel", "unset")
        monkeypatch.setattr(native, "_SOURCE", tmp_path / "nope.c")
        assert native.load_stacked_kernel() is None

    def test_loaded_kernel_is_memoized(self):
        from repro.core import native

        first = native.load_stacked_kernel()
        if first is None:
            pytest.skip("no C compiler available in this environment")
        assert native.load_stacked_kernel() is first

    def test_native_and_numpy_paths_agree_exactly(self, q7, monkeypatch):
        from repro.core import native

        if not native.native_kernel_active():
            pytest.skip("no C compiler available in this environment")
        csr = compile_network(q7)
        seeds, roots = [3, 5, 8, 13], [0, 9, 40, 77]
        with_native = set_builder_many(
            q7, [_syndrome(q7, s) for s in seeds], roots
        )
        monkeypatch.setattr(native, "_forced_off", True)
        with_numpy = set_builder_many(
            q7, [_syndrome(q7, s) for s in seeds], roots
        )
        for a, b in zip(with_native, with_numpy):
            assert _signature(a) == _signature(b)
            assert np.array_equal(a.member_mask, b.member_mask)
