"""Tests for the MM-model syndrome machinery."""

from __future__ import annotations

import pytest

from repro.core.syndrome import (
    FaultyTesterBehavior,
    LazySyndrome,
    TableSyndrome,
    generate_syndrome,
    syndrome_table_size,
)
from repro.core.verification import assert_mm_semantics
from repro.networks import Hypercube, StarGraph


class TestFaultyTesterBehavior:
    def test_known_names(self):
        for name in FaultyTesterBehavior.NAMES:
            assert FaultyTesterBehavior(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown faulty-tester behaviour"):
            FaultyTesterBehavior("chaotic")

    def test_fixed_behaviours(self):
        import random

        rng = random.Random(0)
        assert FaultyTesterBehavior("all_zero").result(0, 1, 2, 1, rng) == 0
        assert FaultyTesterBehavior("all_one").result(0, 1, 2, 0, rng) == 1
        assert FaultyTesterBehavior("mimic").result(0, 1, 2, 1, rng) == 1
        assert FaultyTesterBehavior("anti_mimic").result(0, 1, 2, 1, rng) == 0

    def test_random_behaviour_in_range(self):
        import random

        rng = random.Random(0)
        behaviour = FaultyTesterBehavior("random")
        values = {behaviour.result(0, 1, 2, 0, rng) for _ in range(64)}
        assert values == {0, 1}


class TestLazySyndrome:
    def test_healthy_tester_reports_faulty_neighbours(self):
        cube = Hypercube(5)
        faults = {1, 3}
        syndrome = LazySyndrome(cube, faults)
        # Node 0 is healthy; its neighbours include 1 (faulty), 2 and 4 (healthy).
        assert syndrome.lookup(0, 1, 2) == 1
        assert syndrome.lookup(0, 2, 4) == 0

    def test_symmetric_in_the_tested_pair(self):
        cube = Hypercube(5)
        syndrome = LazySyndrome(cube, {1}, behavior="random", seed=3)
        assert syndrome.lookup(0, 1, 2) == syndrome.lookup(0, 2, 1)
        assert syndrome.lookup(7, 3, 5) == syndrome.lookup(7, 5, 3)

    def test_faulty_tester_results_are_cached(self):
        cube = Hypercube(5)
        syndrome = LazySyndrome(cube, {0}, behavior="random", seed=11)
        first = [syndrome.lookup(0, 1, 2), syndrome.lookup(0, 1, 4), syndrome.lookup(0, 2, 4)]
        second = [syndrome.lookup(0, 1, 2), syndrome.lookup(0, 1, 4), syndrome.lookup(0, 2, 4)]
        assert first == second

    def test_rejects_identical_pair(self):
        cube = Hypercube(5)
        syndrome = LazySyndrome(cube, set())
        with pytest.raises(ValueError):
            syndrome.lookup(0, 1, 1)

    def test_rejects_fault_outside_network(self):
        cube = Hypercube(5)
        with pytest.raises(ValueError):
            LazySyndrome(cube, {999})

    def test_lookup_counter(self):
        cube = Hypercube(5)
        syndrome = LazySyndrome(cube, {1})
        assert syndrome.lookups == 0
        syndrome.lookup(0, 1, 2)
        syndrome.lookup(0, 2, 4)
        assert syndrome.lookups == 2
        syndrome.reset_lookups()
        assert syndrome.lookups == 0

    def test_s_alias(self):
        cube = Hypercube(5)
        syndrome = LazySyndrome(cube, set())
        assert syndrome.s(0, 1, 2) == 0

    @pytest.mark.parametrize("behavior", FaultyTesterBehavior.NAMES)
    def test_healthy_testers_unaffected_by_behavior(self, behavior):
        cube = Hypercube(5)
        faults = {5, 9, 20}
        syndrome = LazySyndrome(cube, faults, behavior=behavior, seed=2)
        assert_mm_semantics(cube, syndrome, faults)

    def test_all_healthy_syndrome_is_all_zero(self):
        cube = Hypercube(4)
        syndrome = LazySyndrome(cube, set())
        for u in range(cube.num_nodes):
            neigh = sorted(cube.neighbors(u))
            for i, v in enumerate(neigh):
                for w in neigh[i + 1:]:
                    assert syndrome.lookup(u, v, w) == 0


class TestTableSyndrome:
    def test_materialised_table_matches_lazy(self):
        cube = Hypercube(5)
        faults = {2, 17}
        lazy = LazySyndrome(cube, faults, behavior="random", seed=5)
        table = lazy.materialize()
        for u in range(cube.num_nodes):
            neigh = sorted(cube.neighbors(u))
            for i, v in enumerate(neigh):
                for w in neigh[i + 1:]:
                    assert table.lookup(u, v, w) == lazy.lookup(u, v, w)

    def test_table_size_formula(self):
        cube = Hypercube(5)
        table = LazySyndrome(cube, set()).materialize()
        assert len(table) == syndrome_table_size(cube)
        assert len(table) == 32 * 5 * 4 // 2

    def test_table_size_formula_irregular(self):
        star = StarGraph(4)
        assert syndrome_table_size(star) == 24 * 3 * 2 // 2

    def test_with_overrides(self):
        cube = Hypercube(4)
        table = LazySyndrome(cube, set()).materialize()
        modified = table.with_overrides({(0, 1, 2): 1})
        assert modified.lookup(0, 2, 1) == 1
        assert table.lookup(0, 2, 1) == 0

    def test_missing_entry_raises(self):
        table = TableSyndrome({(0, 1, 2): 0})
        with pytest.raises(KeyError):
            table.lookup(5, 6, 7)

    def test_items_iteration(self):
        table = TableSyndrome({(0, 2, 1): 1, (3, 4, 5): 0})
        entries = dict(table.items())
        assert entries[(0, 1, 2)] == 1
        assert entries[(3, 4, 5)] == 0


class TestGenerateSyndrome:
    def test_lazy_by_default(self):
        cube = Hypercube(5)
        syndrome = generate_syndrome(cube, {1})
        assert isinstance(syndrome, LazySyndrome)

    def test_full_table_option(self):
        cube = Hypercube(5)
        syndrome = generate_syndrome(cube, {1}, full_table=True)
        assert isinstance(syndrome, TableSyndrome)
        assert len(syndrome) == syndrome_table_size(cube)

    def test_seed_reproducibility(self):
        cube = Hypercube(5)
        faults = {0, 7}
        a = generate_syndrome(cube, faults, seed=42, full_table=True)
        b = generate_syndrome(cube, faults, seed=42, full_table=True)
        assert dict(a.items()) == dict(b.items())

    def test_different_seeds_differ(self):
        cube = Hypercube(6)
        faults = {0, 7, 13}
        a = generate_syndrome(cube, faults, seed=1, full_table=True)
        b = generate_syndrome(cube, faults, seed=2, full_table=True)
        assert dict(a.items()) != dict(b.items())
