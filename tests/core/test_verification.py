"""Tests for syndrome/fault-set consistency checking."""

from __future__ import annotations

import pytest

from repro.core.syndrome import generate_syndrome
from repro.core.verification import (
    assert_mm_semantics,
    consistent_fault_sets,
    is_consistent_fault_set,
)
from repro.networks import Hypercube


class TestConsistency:
    def test_true_fault_set_is_consistent(self):
        cube = Hypercube(5)
        faults = {3, 17}
        syndrome = generate_syndrome(cube, faults, seed=0)
        assert is_consistent_fault_set(cube, syndrome, faults)

    def test_wrong_fault_set_is_inconsistent(self):
        cube = Hypercube(5)
        faults = {3, 17}
        syndrome = generate_syndrome(cube, faults, seed=0)
        assert not is_consistent_fault_set(cube, syndrome, {3})
        assert not is_consistent_fault_set(cube, syndrome, {3, 18})
        assert not is_consistent_fault_set(cube, syndrome, set())

    def test_empty_fault_set_consistent_with_healthy_syndrome(self):
        cube = Hypercube(5)
        syndrome = generate_syndrome(cube, frozenset())
        assert is_consistent_fault_set(cube, syndrome, set())

    def test_consistent_fault_sets_unique_within_diagnosability(self):
        cube = Hypercube(5)
        faults = frozenset({3, 17})
        syndrome = generate_syndrome(cube, faults, seed=1)
        candidates = consistent_fault_sets(cube, syndrome, 2)
        assert candidates == [faults]

    def test_consistent_fault_sets_ambiguous_beyond_diagnosability(self):
        # The classical Section 2 construction: N(u) and N(u) ∪ {u} are both
        # consistent when the size bound allows the larger set.
        cube = Hypercube(5)
        center = 0
        faults = frozenset(cube.neighbors(center))
        syndrome = generate_syndrome(cube, faults, behavior="mimic", seed=0)
        candidates = consistent_fault_sets(cube, syndrome, len(faults) + 1)
        assert frozenset(faults) in candidates
        assert frozenset(faults | {center}) in candidates

    def test_assert_mm_semantics_accepts_valid(self):
        cube = Hypercube(5)
        faults = {1, 2, 3}
        syndrome = generate_syndrome(cube, faults, seed=0)
        assert_mm_semantics(cube, syndrome, faults)

    def test_assert_mm_semantics_rejects_tampered_syndrome(self):
        cube = Hypercube(5)
        faults = {1, 2, 3}
        table = generate_syndrome(cube, faults, seed=0, full_table=True)
        # Flip one healthy tester's result.
        healthy_u = 16
        v, w = sorted(cube.neighbors(healthy_u))[:2]
        correct = table.lookup(healthy_u, v, w)
        tampered = table.with_overrides({(healthy_u, v, w): 1 - correct})
        with pytest.raises(AssertionError):
            assert_mm_semantics(cube, tampered, faults)
