"""Tests for the diagnosability bounds and the Chang et al. condition."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.diagnosability import (
    chang_condition,
    indistinguishable_witness,
    min_degree_upper_bound,
)
from repro.diagnosability.search import are_indistinguishable
from repro.networks import ExplicitNetwork, Hypercube, StarGraph


class TestMinDegreeBound:
    def test_hypercube(self):
        assert min_degree_upper_bound(Hypercube(7)) == 7

    def test_star_graph(self):
        assert min_degree_upper_bound(StarGraph(5)) == 4

    def test_irregular_graph(self):
        net = ExplicitNetwork.from_networkx(nx.path_graph(4))
        assert min_degree_upper_bound(net) == 1

    def test_quoted_diagnosability_never_exceeds_bound(self, small_network):
        assert small_network.diagnosability() <= min_degree_upper_bound(small_network)


class TestIndistinguishableWitness:
    def test_witness_sets_differ_by_center(self):
        cube = Hypercube(5)
        without, with_center = indistinguishable_witness(cube, center=0)
        assert with_center - without == {0}
        assert without == frozenset(cube.neighbors(0))

    def test_witness_sets_are_indistinguishable(self):
        cube = Hypercube(4)
        without, with_center = indistinguishable_witness(cube, center=3)
        assert are_indistinguishable(cube, without, with_center)

    def test_default_center_has_minimum_degree(self):
        net = ExplicitNetwork.from_networkx(nx.star_graph(4))  # hub 0, leaves 1..4
        without, with_center = indistinguishable_witness(net)
        assert len(without) == 1  # the neighbourhood of a leaf is just the hub


class TestChangCondition:
    def test_applies_to_hypercube(self):
        report = chang_condition(Hypercube(7))
        assert report.applies
        assert report.implied_diagnosability == 7

    def test_applies_to_star_graph(self):
        report = chang_condition(StarGraph(5))
        assert report.applies
        assert report.implied_diagnosability == 4

    def test_rejects_too_small_graph(self):
        # K_4 is 3-regular with connectivity 3 but has only 4 < 2*3+3 nodes.
        net = ExplicitNetwork.from_networkx(nx.complete_graph(4))
        report = chang_condition(net, connectivity=3)
        assert not report.applies
        assert report.implied_diagnosability is None

    def test_rejects_irregular_graph(self):
        net = ExplicitNetwork.from_networkx(nx.path_graph(10))
        report = chang_condition(net, connectivity=1)
        assert not report.applies

    def test_condition_matches_quoted_values_for_regular_families(self, small_network):
        """Whenever Chang et al. applies, it yields exactly the quoted diagnosability."""
        report = chang_condition(small_network)
        if report.applies:
            assert report.implied_diagnosability == small_network.diagnosability()

    def test_bool_conversion(self):
        assert bool(chang_condition(Hypercube(7)))
