"""Tests for exact diagnosability search on small graphs."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.diagnosability import are_indistinguishable, exact_diagnosability, is_t_diagnosable
from repro.networks import ExplicitNetwork, Hypercube


def explicit(graph: nx.Graph) -> ExplicitNetwork:
    return ExplicitNetwork.from_networkx(graph)


class TestIndistinguishability:
    def test_identical_sets_indistinguishable(self):
        net = explicit(nx.cycle_graph(6))
        assert are_indistinguishable(net, {1, 2}, {1, 2})

    def test_neighbourhood_construction(self):
        cube = Hypercube(4)
        neighborhood = frozenset(cube.neighbors(0))
        assert are_indistinguishable(cube, neighborhood, neighborhood | {0})

    def test_disjoint_singletons_distinguishable_in_cube(self):
        cube = Hypercube(4)
        assert not are_indistinguishable(cube, {0}, {5})

    def test_symmetry(self):
        cube = Hypercube(4)
        a, b = frozenset({1, 2}), frozenset({1, 4})
        assert are_indistinguishable(cube, a, b) == are_indistinguishable(cube, b, a)


class TestExactDiagnosability:
    def test_four_cycle_is_not_1_diagnosable(self):
        # In C_4 a single fault cannot be told apart from a fault at the
        # antipodal node: both testers adjacent to either candidate see the
        # other candidate as their second neighbour.
        net = explicit(nx.cycle_graph(4))
        assert not is_t_diagnosable(net, 1)
        assert exact_diagnosability(net) == 0

    def test_long_cycle_is_1_but_not_2_diagnosable(self):
        # C_8 localises a single fault, but two faults can hide each other
        # (the minimum-degree bound of 2 is not attained).
        net = explicit(nx.cycle_graph(8))
        assert is_t_diagnosable(net, 1)
        assert exact_diagnosability(net) == 1

    def test_complete_graph_diagnosability(self):
        # K_7: 6-regular, connectivity 6, but only 7 < 2*6+3 nodes, so the
        # Chang bound does not apply; brute force gives the true value.
        net = explicit(nx.complete_graph(7))
        value = exact_diagnosability(net, upper_limit=3)
        assert value >= 2

    def test_q3_diagnosability_is_small(self):
        # Q_3 has only 8 = 2*3+2 < 2*3+3 nodes: diagnosability is below 3.
        net = explicit(nx.hypercube_graph(3))
        assert exact_diagnosability(net, upper_limit=3) < 3

    def test_petersen_graph_is_3_diagnosable(self):
        # The Petersen graph is 3-regular, 3-connected, with 10 ≥ 2*3+3 nodes,
        # so Chang et al. give diagnosability exactly 3; verify by search.
        net = explicit(nx.petersen_graph())
        assert is_t_diagnosable(net, 3)
        assert exact_diagnosability(net) == 3

    def test_diagnosability_monotone_in_t(self):
        net = explicit(nx.petersen_graph())
        assert is_t_diagnosable(net, 1)
        assert is_t_diagnosable(net, 2)

    def test_upper_limit_respected(self):
        net = explicit(nx.petersen_graph())
        assert exact_diagnosability(net, upper_limit=2) == 2
