"""Cross-backend differential harness.

For every network family in the registry, this suite generates seeded
(topology, fault set, syndrome) triples and runs the *same* ``Set_Builder``
procedure through every execution backend the codebase has grown:

* the original object path (``compiled=False`` — the reference
  implementation, transcribed from the paper);
* the compiled-rows path (compiled adjacency, abstract syndrome oracle);
* the scalar flat-array path (byte-mask membership, pair-indexed buffer);
* the vectorised whole-frontier path;
* the shard-aware builder (:class:`repro.parallel.ShardedSetBuilder`) at
  shard counts 1, 2 and 4 — in-process and, for a spot check, over a real
  shared-memory worker pool.

Every backend must agree **exactly** — grown sets, tree parents,
contributors, round counts, the ``all_healthy`` certificate, the syndrome
lookup count, and the accusation set ``N(U_r) \\ U_r`` the diagnosis layer
derives from the run.  Faulty-rooted runs are included deliberately: the
procedure is well-defined from any start node, and backends must agree there
too, even though only healthy-rooted runs feed Theorem 1.

The seeds derive positionally from the family name via ``SeedSequence``, so
the triples are stable across runs and machines without hand-maintained
fixtures.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.backend.array_syndrome import ArraySyndrome
from repro.backend.csr import compile_network
from repro.core.diagnosis import GeneralDiagnoser
from repro.core.faults import clustered_faults, random_faults
from repro.core.set_builder import SetBuilderResult, set_builder
from repro.parallel import ShardedSetBuilder, WorkerPool, spawn_seeds

SHARD_COUNTS = (1, 2, 4)
BEHAVIORS = ("random", "all_zero")


def _family_seeds(network, count: int = 2) -> list[int]:
    """Stable per-family seeds (derived, not hand-picked)."""
    base = sum(ord(c) for c in network.family)
    return list(spawn_seeds(base, count))


def _triples(network):
    """Seeded (faults, syndrome) triples over one topology."""
    csr = compile_network(network)
    delta = network.diagnosability()
    for seed in _family_seeds(network):
        for behavior in BEHAVIORS:
            for placement in (random_faults, clustered_faults):
                faults = placement(network, delta, seed=seed)
                syndrome = ArraySyndrome.from_faults(
                    csr, faults, behavior=behavior, seed=seed
                )
                yield faults, syndrome


def _roots(network, faults):
    """One healthy and (when possible) one faulty start node."""
    healthy = next(v for v in range(network.num_nodes) if v not in faults)
    roots = [healthy]
    if faults:
        roots.append(min(faults))
    return roots


def _signature(network, result: SetBuilderResult) -> dict:
    """Everything a backend must reproduce, including the accusation set."""
    csr = compile_network(network)
    return {
        "root": result.root,
        "nodes": frozenset(result.nodes),
        "parent": dict(result.parent),
        "contributors": frozenset(result.contributors),
        "rounds": result.rounds,
        "lookups": result.lookups,
        "all_healthy": result.all_healthy,
        "truncated": result.truncated,
        "accusations": frozenset(csr.boundary(result.nodes)),
    }


def _all_backends(network, syndrome: ArraySyndrome, root: int) -> dict[str, dict]:
    """Run one triple through every backend; key → signature."""
    table = syndrome.to_table()
    runs = {
        "object": set_builder(network, table, root, compiled=False),
        "rows": set_builder(network, table, root, compiled=True),
        # An unreachable budget routes to the scalar array path without
        # changing semantics (the run is never truncated).
        "array-scalar": set_builder(
            network, syndrome, root, max_nodes=network.num_nodes + 1
        ),
        "array-vectorized": set_builder(network, syndrome, root),
    }
    for shards in SHARD_COUNTS:
        runs[f"sharded-{shards}"] = ShardedSetBuilder(
            network, num_shards=shards
        ).run(syndrome, root)
    return {name: _signature(network, result) for name, result in runs.items()}


class TestSetBuilderDifferential:
    def test_every_backend_agrees_on_every_family(self, tiny_network):
        """The harness headline: 7 backends, all registry families, seeded triples."""
        checked = 0
        for faults, syndrome in _triples(tiny_network):
            for root in _roots(tiny_network, faults):
                signatures = _all_backends(tiny_network, syndrome, root)
                reference = signatures.pop("object")
                for name, signature in signatures.items():
                    assert signature == reference, (
                        f"{tiny_network.family}: backend {name!r} diverged from the "
                        f"object reference on faults={sorted(faults)} root={root}"
                    )
                checked += 1
        assert checked >= 8  # 2 seeds x 2 behaviors x 2 placements (x roots)

    def test_sharded_matches_vectorized_on_a_larger_instance(self):
        """Spot check well beyond tiny sizes (Q_10: 1024 nodes, 45 rounds-ish)."""
        from repro.networks.registry import compiled_network

        network, csr = compiled_network("hypercube", dimension=10)
        faults = random_faults(network, 10, seed=1234)
        syndrome = ArraySyndrome.from_faults(csr, faults, seed=1234)
        root = next(v for v in range(network.num_nodes) if v not in faults)
        reference = _signature(network, set_builder(network, syndrome, root))
        for shards in SHARD_COUNTS:
            sharded = ShardedSetBuilder(network, num_shards=shards).run(syndrome, root)
            assert _signature(network, sharded) == reference

    def test_pooled_shards_match_in_process_shards(self):
        """The pool changes where shards run, never what they compute."""
        from repro.networks.registry import compiled_network

        network, csr = compiled_network("hypercube", dimension=8)
        with WorkerPool(max_workers=2) as pool:
            for seed in spawn_seeds(88, 2):
                faults = random_faults(network, 8, seed=seed)
                syndrome = ArraySyndrome.from_faults(csr, faults, seed=seed)
                root = next(v for v in range(network.num_nodes) if v not in faults)
                local = ShardedSetBuilder(network, num_shards=4).run(syndrome, root)
                pooled = ShardedSetBuilder(
                    network, num_shards=4, pool=pool
                ).run(syndrome, root)
                assert _signature(network, pooled) == _signature(network, local)


class TestDiagnosisDifferential:
    """Full-pipeline agreement: the accusation sets of whole diagnoses."""

    def test_sharded_final_run_preserves_the_diagnosis(self, tiny_network):
        from repro.core.diagnosis import DiagnosisError

        csr = compile_network(tiny_network)
        delta = tiny_network.diagnosability()
        for seed in _family_seeds(tiny_network):
            faults = random_faults(tiny_network, delta, seed=seed)
            syndrome = ArraySyndrome.from_faults(csr, faults, seed=seed)
            try:
                plain = GeneralDiagnoser(tiny_network).diagnose(syndrome)
            except DiagnosisError:
                # A full-δ fault load can overwhelm a tiny instance (the
                # healthy component shrinks below any certificate); backends
                # must then agree on the *failure* too.
                for shards in SHARD_COUNTS:
                    sharder = ShardedSetBuilder(tiny_network, num_shards=shards)
                    with pytest.raises(DiagnosisError):
                        GeneralDiagnoser(
                            tiny_network, sharder=sharder
                        ).diagnose(syndrome)
                continue
            for shards in SHARD_COUNTS:
                sharder = ShardedSetBuilder(tiny_network, num_shards=shards)
                sharded = GeneralDiagnoser(
                    tiny_network, sharder=sharder
                ).diagnose(syndrome)
                assert sharded.faulty == plain.faulty
                assert sharded.healthy_root == plain.healthy_root
                assert sharded.healthy_nodes == plain.healthy_nodes
                assert sharded.lookups == plain.lookups

    def test_compiled_and_object_diagnoses_accuse_identically(self, tiny_network):
        csr = compile_network(tiny_network)
        delta = tiny_network.diagnosability()
        for seed in _family_seeds(tiny_network, count=1):
            faults = random_faults(tiny_network, delta, seed=seed)
            syndrome = ArraySyndrome.from_faults(csr, faults, seed=seed)
            compiled = GeneralDiagnoser(tiny_network).diagnose(syndrome)
            reference = GeneralDiagnoser(
                tiny_network, compiled=False
            ).diagnose(syndrome)
            assert compiled.faulty == reference.faulty


class TestHarnessInternals:
    def test_signatures_detect_divergence(self, q5):
        """The harness itself must not pass vacuously."""
        csr = compile_network(q5)
        faults = random_faults(q5, 3, seed=0)
        syndrome = ArraySyndrome.from_faults(csr, faults, seed=0)
        result = set_builder(q5, syndrome, _roots(q5, faults)[0])
        mutated = dataclasses.replace(result, rounds=result.rounds + 1)
        assert _signature(q5, mutated) != _signature(q5, result)

    def test_seeds_are_stable(self, q5):
        assert _family_seeds(q5) == _family_seeds(q5)

    def test_sharded_rejects_foreign_syndromes(self, q5):
        other = ArraySyndrome.from_faults(
            compile_network(q5), frozenset({1}), seed=0
        ).to_table()
        with pytest.raises(ValueError):
            ShardedSetBuilder(q5, num_shards=2).run(other, 0)
