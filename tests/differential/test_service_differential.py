"""Service-vs-direct differential suite.

The serving layer reorders, batches, caches and remembers — it must never
*change* an answer.  For every registry family this suite submits seeded
request mixes through :class:`~repro.service.DiagnosisService` (coalesced
in-process, naive, and — for a spot check — over a real shared-memory worker
pool) and pins every response bit-identical to the direct
:class:`~repro.core.diagnosis.GeneralDiagnoser` pipeline: accusation set,
healthy root, syndrome lookup count, syndrome digest, and the agreed
``DiagnosisError`` failures.
"""

from __future__ import annotations

import asyncio

from repro.parallel import WorkerPool, spawn_seeds
from repro.service import DiagnosisRequest, DiagnosisService, ResultStore
from repro.service.executor import run_direct
from tests.conftest import TINY_PARAMS

PLACEMENTS = ("random", "clustered")


def _family_requests(network) -> list[DiagnosisRequest]:
    """Seeded request mix over one family (repeats included deliberately)."""
    base = sum(ord(c) for c in network.family)
    params = TINY_PARAMS[network.family]
    requests = [
        DiagnosisRequest.seeded(
            network.family, params, placement=placement, seed=seed
        )
        for seed in spawn_seeds(base, 2)
        for placement in PLACEMENTS
    ]
    return requests + requests[:2]  # repeats exercise coalescing/store paths


def _serve(service: DiagnosisService, requests):
    async def run():
        async with service:
            return await service.submit_many(requests)

    return asyncio.run(run())


def _assert_matches_direct(network, requests, responses):
    csr = getattr(network, "_csr_adjacency", None)
    for request, response in zip(requests, responses):
        direct = run_direct(request, network=network, csr=csr)
        assert (
            response.faulty,
            response.healthy_root,
            response.lookups,
            response.syndrome_digest,
            response.error,
        ) == (
            direct.faulty,
            direct.healthy_root,
            direct.lookups,
            direct.syndrome_digest,
            direct.error,
        ), (
            f"{network.family}: served response diverged from the direct "
            f"pipeline on {request.describe()} (source={response.source})"
        )


class TestServiceDifferential:
    def test_coalesced_service_matches_direct_on_every_family(self, tiny_network):
        requests = _family_requests(tiny_network)
        service = DiagnosisService(store=ResultStore())
        responses = _serve(service, requests)
        _assert_matches_direct(tiny_network, requests, responses)
        stats = service.stats()
        assert stats["worker_compiles"] == 0
        assert stats["coalesced_batches"] >= 1  # the mix shares topologies

    def test_naive_service_matches_direct_on_every_family(self, tiny_network):
        requests = _family_requests(tiny_network)[:4]
        responses = _serve(
            DiagnosisService(coalesce=False, topology_cache_capacity=0), requests
        )
        _assert_matches_direct(tiny_network, requests, responses)

    def test_pooled_service_matches_direct_spot_check(self):
        from repro.networks.registry import compiled_network

        network, _ = compiled_network("hypercube", dimension=8)
        requests = [
            DiagnosisRequest.seeded(
                "hypercube", {"dimension": 8}, placement=placement, seed=seed
            )
            for seed in spawn_seeds(88, 3)
            for placement in PLACEMENTS
        ]
        with WorkerPool(max_workers=2) as pool:
            service = DiagnosisService(pool=pool)
            responses = _serve(service, requests)
            stats = service.stats()
        _assert_matches_direct(network, requests, responses)
        assert stats["worker_compiles"] == 0
        assert stats["worker_pair_builds"] == 0

    def test_http_transport_matches_direct_on_every_family(self, tiny_network):
        """The full wire path — JSON encode, HTTP frame, parse, serve,
        serialise, parse back — must not change a single answer."""
        from repro.service import HttpClient, HttpFrontend

        requests = _family_requests(tiny_network)

        async def over_the_wire():
            service = DiagnosisService(store=ResultStore())
            async with HttpFrontend(service) as frontend:
                async with HttpClient(frontend.host, frontend.port) as client:
                    responses = []
                    for request in requests:
                        status, response = await client.diagnose(request)
                        assert status == 200, (tiny_network.family, status)
                        responses.append(response)
            await service.close()
            return responses

        responses = asyncio.run(over_the_wire())
        _assert_matches_direct(tiny_network, requests, responses)

    def test_store_served_repeats_stay_identical(self, q5):
        request = DiagnosisRequest.seeded("hypercube", {"dimension": 5}, seed=17)
        store = ResultStore()
        first = _serve(DiagnosisService(store=store), [request])[0]
        second = _serve(DiagnosisService(store=store), [request])[0]
        assert second.source == "store"
        assert (second.faulty, second.healthy_root, second.lookups) == (
            first.faulty, first.healthy_root, first.lookups
        )
        _assert_matches_direct(q5, [request], [second])
