"""Stacked-kernel differential suite.

``GeneralDiagnoser.diagnose_many`` runs a whole batch of syndromes through
one array pass of the final ``Set_Builder`` — it must be a pure throughput
optimisation.  For every registry family this suite builds seeded syndrome
batches at widths 1, 2, 7 and 16 and pins every stacked outcome
bit-identical to the per-syndrome :meth:`GeneralDiagnoser.diagnose`
reference: accusation set, healthy root, grown set, tree parents, probe
records, partition level and syndrome lookup count — and, for items that
fail, the exact exception ``diagnose`` raises.  Mixed batches with
guaranteed-``DiagnosisError`` members prove per-item isolation, and a
wider-than-``max_batch_size`` run through the service proves slicing
changes nothing either.

This is the load-bearing verification: the serving path (``run_direct``
included) now routes through the stacked kernel, so served-vs-direct
comparisons alone would be stacked-vs-stacked.  Here the reference is the
sequential pipeline the cross-backend suite pins all the way down to the
paper's object-level transcription.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.backend.array_syndrome import ArraySyndrome
from repro.backend.csr import compile_network
from repro.core.diagnosis import DiagnosisError, GeneralDiagnoser
from repro.core.faults import clustered_faults, random_faults
from repro.parallel import spawn_seeds

WIDTHS = (1, 2, 7, 16)
PLACEMENTS = (random_faults, clustered_faults)


def _specs(network, count: int):
    """``count`` stable (faults, behavior, seed) specs for one family."""
    base = sum(ord(c) for c in network.family)
    delta = network.diagnosability()
    specs = []
    for seed in spawn_seeds(base, (count + 3) // 4 + 1):
        for behavior in ("random", "all_zero"):
            for placement in PLACEMENTS:
                faults = placement(network, delta, seed=seed)
                specs.append((faults, behavior, seed))
    return specs[:count]


def _build(csr, spec) -> ArraySyndrome:
    """A fresh syndrome per call — lookup counters mutate, so the stacked
    batch and the sequential reference each get their own instance."""
    faults, behavior, seed = spec
    return ArraySyndrome.from_faults(csr, faults, behavior=behavior, seed=seed)


def _doomed(csr) -> ArraySyndrome:
    """All-ones syndrome: every test disagrees, no contributor certificate
    at any partition level → ``find_healthy_root`` raises DiagnosisError,
    deterministically."""
    return ArraySyndrome(csr, bytes([1]) * csr.num_pairs)


def _outcome_signature(outcome):
    if isinstance(outcome, Exception):
        return ("error", type(outcome).__name__, str(outcome))
    return (
        outcome.faulty,
        outcome.healthy_root,
        outcome.healthy_nodes,
        dict(outcome.tree_parent),
        list(outcome.probes),
        outcome.partition_level,
        outcome.lookups,
    )


def _reference(diagnoser, spec_or_none, csr):
    syndrome = _doomed(csr) if spec_or_none is None else _build(csr, spec_or_none)
    try:
        return _outcome_signature(diagnoser.diagnose(syndrome))
    except DiagnosisError as exc:
        return _outcome_signature(exc)


class TestStackedKernelDifferential:
    def test_every_width_matches_per_syndrome_diagnose(self, tiny_network):
        """The headline: all registry families, widths 1/2/7/16, exact."""
        csr = compile_network(tiny_network)
        diagnoser = GeneralDiagnoser(tiny_network)
        specs = _specs(tiny_network, max(WIDTHS))
        references = [_reference(diagnoser, spec, csr) for spec in specs]
        for width in WIDTHS:
            batch = [_build(csr, spec) for spec in specs[:width]]
            outcomes = diagnoser.diagnose_many(batch)
            for i, outcome in enumerate(outcomes):
                assert _outcome_signature(outcome) == references[i], (
                    f"{tiny_network.family}: stacked kernel diverged from "
                    f"diagnose at width {width}, item {i}"
                )

    def test_error_items_are_isolated_and_exact(self, tiny_network):
        """A DiagnosisError member neither poisons its batch mates nor
        changes its own failure (same exception type and message)."""
        csr = compile_network(tiny_network)
        diagnoser = GeneralDiagnoser(tiny_network)
        specs = _specs(tiny_network, 4)
        # doomed items interleaved at the edges and the middle
        layout = [None, specs[0], specs[1], None, specs[2], specs[3], None]
        references = [_reference(diagnoser, slot, csr) for slot in layout]
        batch = [
            _doomed(csr) if slot is None else _build(csr, slot)
            for slot in layout
        ]
        outcomes = diagnoser.diagnose_many(batch)
        for i, outcome in enumerate(outcomes):
            assert _outcome_signature(outcome) == references[i], (
                f"{tiny_network.family}: mixed batch item {i} diverged"
            )
            if layout[i] is None:
                assert isinstance(outcome, DiagnosisError)

    def test_light_mode_matches_on_accusations_and_counters(self, tiny_network):
        csr = compile_network(tiny_network)
        diagnoser = GeneralDiagnoser(tiny_network)
        specs = _specs(tiny_network, 4)
        references = [_reference(diagnoser, spec, csr) for spec in specs]
        outcomes = diagnoser.diagnose_many(
            [_build(csr, spec) for spec in specs], include_sets=False
        )
        for outcome, reference in zip(outcomes, references):
            if reference[0] == "error":  # a seeded spec that genuinely fails
                assert _outcome_signature(outcome) == reference
                continue
            faulty, root, _, _, probes, level, lookups = reference
            assert outcome.faulty == faulty
            assert outcome.healthy_root == root
            assert list(outcome.probes) == probes
            assert outcome.partition_level == level
            assert outcome.lookups == lookups
            assert outcome.healthy_nodes == frozenset()
            assert outcome.tree_parent == {}


class TestSlicingParity:
    def test_batches_wider_than_max_batch_slice_without_divergence(self):
        """10 coalesced requests over max_batch_size=4 → kernel widths
        4/4/2; every response still equals the sequential reference."""
        from repro.networks.registry import compiled_network
        from repro.service import DiagnosisRequest, DiagnosisService

        network, csr = compiled_network("hypercube", dimension=6)
        diagnoser = GeneralDiagnoser(network)
        requests = [
            DiagnosisRequest.seeded("hypercube", {"dimension": 6}, seed=seed)
            for seed in range(10)
        ]
        service = DiagnosisService(max_batch_size=4)

        async def run():
            async with service:
                return await service.submit_many(requests)

        responses = asyncio.run(run())
        delta = network.diagnosability()
        for seed, response in zip(range(10), responses):
            faults = random_faults(network, delta, seed=seed)
            reference = diagnoser.diagnose(
                ArraySyndrome.from_faults(csr, faults, seed=seed)
            )
            assert response.faulty_set == reference.faulty, seed
            assert response.healthy_root == reference.healthy_root, seed
            assert response.lookups == reference.lookups, seed
        stats = service.stats()
        assert stats["batches"] == 3
        assert stats["batch_size"]["max"] == 4.0
