"""Regenerate the golden engine traces under ``tests/distributed/golden/``.

Run only when a deliberate protocol change invalidates the checked-in logs:

    PYTHONPATH=src python tests/distributed/make_golden.py

The cases must stay in lockstep with ``TestGoldenTraces.CASES`` in
``test_engine.py`` (this script imports them from there).
"""

from __future__ import annotations

from pathlib import Path
import sys

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from distributed.test_engine import GOLDEN_DIR, TestGoldenTraces  # noqa: E402


def main() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    harness = TestGoldenTraces()
    for name in sorted(TestGoldenTraces.CASES):
        outcome = harness._run(name)
        path = GOLDEN_DIR / name
        path.write_text(outcome.trace.to_text())
        print(f"wrote {path} ({len(outcome.trace)} events)")


if __name__ == "__main__":
    main()
