"""Tests for the event-driven distributed protocol engine.

Three layers:

* **property tests** (seeded random): on the default channel — unit latency,
  no loss, a single root — the engine's tree, round count and message count
  must be *identical* to the legacy analytical model
  (:func:`repro.distributed.simulator.derived_run_stats`) across network
  families (including non-bipartite ones, which exercise the same-round
  collision rule), fault sets and seeds;
* **fault-injection tests**: under message loss the engine still terminates
  (the ARQ sublayer is bounded) and never accuses a fault-free node;
  concurrent-root merges never double-count contributors;
* **golden traces** (see ``test_golden_traces`` and the files under
  ``tests/distributed/golden/``): byte-for-byte replay stability.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.backend.array_syndrome import ArraySyndrome
from repro.backend.csr import compile_network
from repro.core.faults import random_faults
from repro.core.set_builder import set_builder
from repro.distributed import (
    ChannelConfig,
    DistributedSetBuilder,
    ProtocolEngine,
    derived_run_stats,
    extended_star_gossip_cost,
    replay_stats,
)
from repro.networks.registry import cached_network

GOLDEN_DIR = Path(__file__).parent / "golden"

#: (family, params, fault budget, explicit δ for the sequential reference).
#: kary k=3 and the arrangement graphs are non-bipartite, so same-round
#: mutual invitations (the collision-coalescing rule) actually occur.
PROPERTY_INSTANCES = [
    ("hypercube", {"dimension": 5}, 5, None),
    ("hypercube", {"dimension": 6}, 6, None),
    ("crossed_cube", {"dimension": 5}, 5, None),
    ("kary_ncube", {"n": 3, "k": 3}, 4, 4),
    ("arrangement", {"n": 5, "k": 2}, 3, None),
    ("pancake", {"n": 5}, 3, None),
    ("star", {"n": 5}, 3, None),
]


def _instance(family, params, fault_count, seed):
    network = cached_network(family, **params)
    csr = compile_network(network)
    faults = random_faults(network, fault_count, seed=seed)
    syndrome = ArraySyndrome.from_faults(csr, faults, seed=seed)
    return network, csr, faults, syndrome


class TestLegacyEquivalence:
    """Zero latency / zero loss / single root ≡ the legacy derived stats."""

    @pytest.mark.parametrize("family,params,budget,delta", PROPERTY_INSTANCES)
    def test_stats_identical_across_random_runs(self, family, params, budget, delta):
        rng = random.Random(f"{family}-{params}")
        for trial in range(6):
            fault_count = rng.randint(0, budget)
            seed = rng.randrange(10_000)
            network, csr, faults, syndrome = _instance(family, params, fault_count, seed)
            healthy = [v for v in range(network.num_nodes) if v not in faults]
            root = rng.choice(healthy)
            legacy = derived_run_stats(network, syndrome, root, diagnosability=delta)
            outcome = ProtocolEngine(csr).run_set_builder(syndrome, root)
            engine_row = (outcome.rounds, outcome.messages, outcome.tree_size,
                          outcome.tree_depth, outcome.faults_found)
            assert engine_row == legacy.as_row(), (
                f"{family} {params} seed={seed} faults={sorted(faults)} root={root}"
            )

    @pytest.mark.parametrize("family,params,budget,delta", PROPERTY_INSTANCES)
    def test_tree_identical_to_sequential_set_builder(self, family, params, budget, delta):
        rng = random.Random(f"tree-{family}-{params}")
        for trial in range(4):
            seed = rng.randrange(10_000)
            network, csr, faults, syndrome = _instance(family, params, budget, seed)
            healthy = [v for v in range(network.num_nodes) if v not in faults]
            root = rng.choice(healthy)
            reference = set_builder(network, syndrome, root,
                                    diagnosability=delta or network.diagnosability())
            outcome = ProtocolEngine(csr).run_set_builder(syndrome, root)
            assert outcome.parent == reference.parent
            assert outcome.members == reference.nodes
            assert outcome.contributors == len(reference.contributors)

    def test_fault_free_run_covers_network(self):
        network, csr, _, syndrome = _instance("hypercube", {"dimension": 6}, 0, 0)
        legacy = derived_run_stats(network, syndrome, 0)
        outcome = ProtocolEngine(csr).run_set_builder(syndrome, 0)
        assert outcome.tree_size == network.num_nodes == legacy.tree_size
        assert outcome.rounds == legacy.rounds
        assert outcome.messages == legacy.messages

    def test_isolated_root_still_charges_two_rounds(self):
        """A root whose neighbours are all faulty grows nothing: 2 rounds, 0 messages."""
        network = cached_network("hypercube", dimension=3)
        csr = compile_network(network)
        faults = frozenset(int(v) for v in csr.neighbors(0))
        syndrome = ArraySyndrome.from_faults(csr, faults, seed=0)
        legacy = derived_run_stats(network, syndrome, 0, diagnosability=3)
        outcome = ProtocolEngine(csr).run_set_builder(syndrome, 0)
        assert (outcome.rounds, outcome.messages) == (2, 0) == (legacy.rounds, legacy.messages)
        assert outcome.faults_found == len(faults) == legacy.faults_found

    def test_shim_returns_engine_numbers(self):
        network, csr, faults, syndrome = _instance("hypercube", {"dimension": 6}, 6, 3)
        root = next(v for v in range(network.num_nodes) if v not in faults)
        stats = DistributedSetBuilder(network).run(syndrome, root)
        outcome = ProtocolEngine(csr).run_set_builder(syndrome, root)
        assert stats.as_row() == (outcome.rounds, outcome.messages, outcome.tree_size,
                                  outcome.tree_depth, outcome.faults_found)


class TestFaultInjection:
    """Message loss: bounded termination, no false accusations."""

    @pytest.mark.parametrize("loss_rate", [0.05, 0.2, 0.5])
    def test_lossy_runs_terminate_without_false_positives(self, loss_rate):
        network, csr, faults, syndrome = _instance("hypercube", {"dimension": 6}, 6, 2)
        root = next(v for v in range(network.num_nodes) if v not in faults)
        baseline = ProtocolEngine(csr).run_set_builder(syndrome, root)
        assert baseline.faulty == faults  # sanity: instance diagnoses exactly
        for seed in range(3):
            cfg = ChannelConfig(loss_rate=loss_rate, seed=seed)
            outcome = ProtocolEngine(csr, config=cfg).run_set_builder(syndrome, root)
            assert not outcome.faulty - faults, "a fault-free node was accused"
            assert outcome.members <= baseline.members
            assert outcome.drops > 0 or loss_rate == 0.0

    def test_retries_bounded_and_counted(self):
        network, csr, faults, syndrome = _instance("hypercube", {"dimension": 5}, 5, 4)
        root = next(v for v in range(network.num_nodes) if v not in faults)
        cfg = ChannelConfig(loss_rate=0.3, seed=1, max_retries=2, timeout=2)
        outcome = ProtocolEngine(csr, config=cfg).run_set_builder(syndrome, root)
        assert outcome.retries > 0
        assert outcome.rounds < 10_000  # quiesced far below the engine guard

    def test_duplicate_delivery_is_idempotent(self):
        network, csr, faults, syndrome = _instance("hypercube", {"dimension": 5}, 5, 6)
        root = next(v for v in range(network.num_nodes) if v not in faults)
        baseline = ProtocolEngine(csr).run_set_builder(syndrome, root)
        cfg = ChannelConfig(duplicate_rate=0.3, seed=2)
        outcome = ProtocolEngine(csr, config=cfg).run_set_builder(syndrome, root)
        assert outcome.duplicates > 0
        assert outcome.members == baseline.members
        assert outcome.faulty == baseline.faulty

    def test_latency_delays_but_does_not_change_the_diagnosis(self):
        network, csr, faults, syndrome = _instance("hypercube", {"dimension": 5}, 5, 8)
        root = next(v for v in range(network.num_nodes) if v not in faults)
        baseline = ProtocolEngine(csr).run_set_builder(syndrome, root)
        cfg = ChannelConfig(latency="uniform:2:4", seed=3)
        outcome = ProtocolEngine(csr, config=cfg).run_set_builder(syndrome, root)
        assert outcome.members == baseline.members
        assert outcome.faulty == baseline.faulty
        assert outcome.rounds > baseline.rounds


class TestConcurrentRoots:
    def _multi(self, root_count, *, dimension=6, seed=2, config=None):
        network, csr, faults, syndrome = _instance(
            "hypercube", {"dimension": dimension}, dimension, seed)
        healthy = [v for v in range(network.num_nodes) if v not in faults]
        step = len(healthy) // root_count
        roots = tuple(healthy[i * step] for i in range(root_count))
        engine = ProtocolEngine(csr, config=config)
        return faults, engine.run_set_builder(syndrome, roots), roots

    @pytest.mark.parametrize("root_count", [2, 3, 4])
    def test_trees_partition_and_cover(self, root_count):
        faults, outcome, roots = self._multi(root_count)
        single = self._multi(1)[1]
        assert outcome.members == single.members  # same healthy region covered
        assert sum(outcome.per_root_sizes.values()) == outcome.tree_size
        assert set(outcome.root_of.values()) <= set(roots)
        assert outcome.faulty == single.faulty

    @pytest.mark.parametrize("root_count", [2, 3])
    def test_merges_never_double_count_contributors(self, root_count):
        _, outcome, _ = self._multi(root_count)
        truth = len(set(outcome.parent.values()))
        assert outcome.contributors == truth
        assert sum(outcome.per_root_contributors.values()) == outcome.contributors

    def test_adjacent_roots_record_merges(self):
        network, csr, faults, syndrome = _instance("hypercube", {"dimension": 6}, 6, 2)
        healthy = [v for v in range(network.num_nodes) if v not in faults]
        outcome = ProtocolEngine(csr).run_set_builder(syndrome, (healthy[0], healthy[1]))
        assert outcome.merges > 0

    def test_lossy_concurrent_roots_stay_sound(self):
        cfg = ChannelConfig(loss_rate=0.2, seed=5)
        faults, outcome, _ = self._multi(2, config=cfg)
        assert not outcome.faulty - faults

    def test_root_validation(self):
        network, csr, _, syndrome = _instance("hypercube", {"dimension": 4}, 0, 0)
        engine = ProtocolEngine(csr)
        with pytest.raises(ValueError):
            engine.run_set_builder(syndrome, ())
        with pytest.raises(ValueError):
            engine.run_set_builder(syndrome, (0, network.num_nodes))


class TestGossipOnEngine:
    def test_reliable_flood_matches_closed_form(self):
        for family, params in [("hypercube", {"dimension": 6}), ("star", {"n": 5})]:
            network = cached_network(family, **params)
            engine = ProtocolEngine(compile_network(network))
            rounds, messages = extended_star_gossip_cost(network, radius=3)
            measured = extended_star_gossip_cost(network, radius=3, engine=engine)
            assert measured == (rounds, messages)

    def test_lossy_flood_terminates_open_loop(self):
        network = cached_network("hypercube", dimension=6)
        engine = ProtocolEngine(compile_network(network),
                                config=ChannelConfig(loss_rate=0.2, seed=4))
        outcome = engine.run_gossip(3)
        assert outcome.messages == 2 * 3 * network.num_edges()  # open loop: no retries
        assert outcome.drops > 0
        assert outcome.rounds >= 3

    def test_radius_validation(self):
        engine = ProtocolEngine(compile_network(cached_network("hypercube", dimension=4)))
        with pytest.raises(ValueError):
            engine.run_gossip(0)


class TestGoldenTraces:
    """Checked-in canonical event logs: byte-for-byte replay stability."""

    CASES = {
        # Q_3, one fault, default reliable channel, single root.
        "q3_baseline.log": ("hypercube", {"dimension": 3}, frozenset({5}),
                            ChannelConfig(), (0,)),
        # Star_4, two faults, lossy channel (exercises DROP/retry/DECLINE
        # lines), two concurrent roots.
        "star4_lossy.log": ("star", {"n": 4}, frozenset({3, 17}),
                            ChannelConfig(loss_rate=0.15, seed=9), (0, 12)),
    }

    def _run(self, name):
        family, params, faults, config, roots = self.CASES[name]
        network = cached_network(family, **params)
        csr = compile_network(network)
        syndrome = ArraySyndrome.from_faults(csr, faults, seed=0)
        engine = ProtocolEngine(csr, config=config)
        return engine.run_set_builder(syndrome, roots, trace=True)

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_trace_matches_checked_in_golden(self, name):
        outcome = self._run(name)
        golden = (GOLDEN_DIR / name).read_text()
        assert outcome.trace.to_text() == golden, (
            f"{name} drifted; regenerate with tests/distributed/make_golden.py "
            "only if the protocol change is intentional"
        )

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_rerun_is_byte_identical(self, name):
        first = self._run(name).trace.to_text()
        second = self._run(name).trace.to_text()
        assert first == second

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_golden_replays_to_engine_stats(self, name):
        outcome = self._run(name)
        replayed = replay_stats((GOLDEN_DIR / name).read_text())
        assert replayed.rounds == outcome.rounds
        assert replayed.messages == outcome.messages
        assert replayed.tree_size == outcome.tree_size
        assert replayed.faults_found == outcome.faults_found
