"""Tests for the message/channel/trace layer of the protocol engine."""

from __future__ import annotations

import pytest

from repro.backend.array_syndrome import ArraySyndrome
from repro.backend.csr import compile_network
from repro.core.faults import random_faults
from repro.distributed import ChannelConfig, ProtocolEngine, replay_stats
from repro.distributed.events import (
    EventLog,
    LatencyModel,
    LossModel,
    Message,
)
from repro.networks import Hypercube


class TestChannelConfig:
    def test_defaults_are_reliable(self):
        cfg = ChannelConfig()
        assert cfg.reliable
        assert cfg.latency == "fixed:1"

    def test_any_fault_model_is_unreliable(self):
        assert not ChannelConfig(loss_rate=0.1).reliable
        assert not ChannelConfig(duplicate_rate=0.1).reliable

    @pytest.mark.parametrize("kwargs", [
        {"loss_rate": 1.0},
        {"loss_rate": -0.1},
        {"duplicate_rate": 1.5},
        {"timeout": 0},
        {"max_retries": -1},
        {"latency": "fixed:0"},
        {"latency": "uniform:3:1"},
        {"latency": "gaussian:1:2"},
        {"latency": "uniform:a:b"},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ChannelConfig(**kwargs)

    def test_describe_mentions_every_knob(self):
        text = ChannelConfig(loss_rate=0.25, seed=7).describe()
        assert "loss=0.25" in text and "seed=7" in text


class TestLatencyModel:
    def test_fixed_spec(self):
        model = LatencyModel.from_spec("fixed:2")
        links = model.sample_links([(0, 1), (1, 2)], seed=0)
        assert links == {(0, 1): 2, (1, 2): 2}

    def test_uniform_spec_bounds_and_determinism(self):
        edges = [(u, u + 1) for u in range(100)]
        a = LatencyModel.from_spec("uniform:1:3").sample_links(edges, seed=5)
        b = LatencyModel.from_spec("uniform:1:3").sample_links(edges, seed=5)
        assert a == b
        assert all(1 <= lat <= 3 for lat in a.values())
        assert len(set(a.values())) > 1  # actually a distribution

    def test_different_seeds_differ(self):
        edges = [(u, u + 1) for u in range(100)]
        a = LatencyModel.from_spec("uniform:1:5").sample_links(edges, seed=1)
        b = LatencyModel.from_spec("uniform:1:5").sample_links(edges, seed=2)
        assert a != b


class TestLossModel:
    def test_zero_rates_never_fire_nor_consume_rng(self):
        model = LossModel(ChannelConfig())
        state = model._rng.getstate()
        assert not any(model.dropped() for _ in range(50))
        assert not any(model.duplicated() for _ in range(50))
        assert model._rng.getstate() == state

    def test_seeded_draw_sequence_is_deterministic(self):
        cfg = ChannelConfig(loss_rate=0.3, seed=11)
        m1, m2 = LossModel(cfg), LossModel(cfg)
        draws1 = [m1.dropped() for _ in range(200)]
        draws2 = [m2.dropped() for _ in range(200)]
        assert draws1 == draws2
        assert any(draws1) and not all(draws1)


class TestEventLog:
    def test_lines_are_canonical(self):
        log = EventLog()
        msg = Message("INVITE", 3, 5, 0, 17)
        log.send(2, msg)
        log.deliver(3, msg)
        log.join(3, 5, 3, 0)
        log.stats(rounds=5, messages=1, tree_size=2, tree_depth=1,
                  faults_found=0, roots=1, contributors=1, drops=0, retries=0)
        text = log.to_text()
        assert "R0002 SEND INVITE 3->5 tree=0 seq=17" in text
        assert "R0003 DELIVER INVITE 3->5 tree=0 seq=17" in text
        assert "R0003 JOIN 5 parent=3 tree=0" in text
        assert text.rstrip().splitlines()[-1].startswith("STATS ")

    def test_retry_tag(self):
        log = EventLog()
        log.send(4, Message("INVITE", 0, 1, 0, 2), retry=2)
        assert "retry=2" in log.lines[0]


class TestReplayStats:
    def _trace(self, **config_kwargs) -> tuple:
        cube = Hypercube(4)
        csr = compile_network(cube)
        faults = random_faults(cube, 3, seed=1)
        syndrome = ArraySyndrome.from_faults(csr, faults, seed=1)
        root = next(v for v in range(cube.num_nodes) if v not in faults)
        engine = ProtocolEngine(csr, config=ChannelConfig(**config_kwargs))
        outcome = engine.run_set_builder(syndrome, root, trace=True)
        return outcome, outcome.trace.to_text()

    def test_replay_matches_engine_stats(self):
        outcome, text = self._trace()
        replayed = replay_stats(text)
        assert replayed.rounds == outcome.rounds
        assert replayed.messages == outcome.messages
        assert replayed.tree_size == outcome.tree_size
        assert replayed.tree_depth == outcome.tree_depth
        assert replayed.faults_found == outcome.faults_found
        assert replayed.joins == outcome.tree_size - 1  # single root

    def test_replay_matches_lossy_engine_stats(self):
        outcome, text = self._trace(loss_rate=0.2, seed=5)
        replayed = replay_stats(text)
        assert replayed.messages == outcome.messages
        assert replayed.drops == outcome.drops
        assert replayed.drops > 0

    def test_missing_stats_line_rejected(self):
        with pytest.raises(ValueError, match="no STATS"):
            replay_stats("R0001 SEND INVITE 0->1 tree=0 seq=1\n")

    def test_tampered_trace_rejected(self):
        _, text = self._trace()
        lines = text.splitlines()
        sans_send = [ln for ln in lines if not ln.startswith("R0001 SEND")]
        assert len(sans_send) < len(lines)
        with pytest.raises(ValueError, match="inconsistent"):
            replay_stats("\n".join(sans_send) + "\n")
