"""Tests for the legacy simulator API (now a shim over the protocol engine).

The behavioural contract of :class:`DistributedSetBuilder` is unchanged —
these tests predate the engine and keep passing through the shim — plus a few
checks that the shim and the preserved analytical model
(:func:`derived_run_stats`) stay in agreement.
"""

from __future__ import annotations

import pytest

from repro.core.faults import random_faults
from repro.core.syndrome import generate_syndrome, syndrome_table_size
from repro.distributed import (
    DistributedSetBuilder,
    derived_run_stats,
    extended_star_gossip_cost,
)
from repro.networks import Hypercube, KAryNCube


class TestDistributedSetBuilder:
    def test_fault_free_run_covers_network(self):
        cube = Hypercube(7)
        syndrome = generate_syndrome(cube, frozenset())
        stats = DistributedSetBuilder(cube).run(syndrome, root=0)
        assert stats.tree_size == cube.num_nodes
        assert stats.tree_depth == 7
        assert stats.faults_found == 0

    def test_rounds_scale_with_depth_not_size(self):
        cube = Hypercube(9)
        syndrome = generate_syndrome(cube, frozenset())
        stats = DistributedSetBuilder(cube).run(syndrome, root=0)
        # 2 rounds per growth phase + depth rounds of convergecast.
        assert stats.rounds <= 3 * 9 + 2
        assert stats.rounds < cube.num_nodes

    def test_messages_linear_in_edges(self):
        cube = Hypercube(8)
        syndrome = generate_syndrome(cube, frozenset())
        stats = DistributedSetBuilder(cube).run(syndrome, root=0)
        assert stats.messages <= 4 * cube.num_edges()

    def test_faults_found_matches_injection(self):
        cube = Hypercube(8)
        faults = random_faults(cube, 8, seed=3)
        syndrome = generate_syndrome(cube, faults, seed=3)
        # Root 0 is healthy for this seed (otherwise pick another).
        root = next(v for v in range(cube.num_nodes) if v not in faults)
        stats = DistributedSetBuilder(cube).run(syndrome, root=root)
        assert stats.faults_found == len(faults)

    def test_works_on_kary_ncube(self):
        net = KAryNCube(3, 5)
        faults = random_faults(net, 6, seed=1)
        syndrome = generate_syndrome(net, faults, seed=1)
        root = next(v for v in range(net.num_nodes) if v not in faults)
        stats = DistributedSetBuilder(net).run(syndrome, root=root)
        assert stats.faults_found == len(faults)
        assert stats.rounds > 0

    def test_as_row(self):
        cube = Hypercube(7)
        syndrome = generate_syndrome(cube, frozenset())
        stats = DistributedSetBuilder(cube).run(syndrome, root=0)
        assert len(stats.as_row()) == 5


class TestShimAgainstAnalyticalModel:
    def test_shim_reproduces_derived_stats(self):
        """The engine-backed shim and the legacy derivation agree exactly."""
        cube = Hypercube(7)
        faults = random_faults(cube, 7, seed=5)
        syndrome = generate_syndrome(cube, faults, seed=5, backend="array")
        root = next(v for v in range(cube.num_nodes) if v not in faults)
        assert DistributedSetBuilder(cube).run(syndrome, root) == \
            derived_run_stats(cube, syndrome, root)

    def test_module_advertises_the_deprecation(self):
        from repro.distributed import simulator

        assert "deprecated" in simulator.__doc__.lower()
        assert "derived_run_stats" in simulator.__all__
        assert "engine" in simulator.__doc__


class TestGossipCost:
    def test_rounds_equal_radius(self):
        rounds, _ = extended_star_gossip_cost(Hypercube(8), radius=3)
        assert rounds == 3

    def test_messages_proportional_to_edges(self):
        cube = Hypercube(8)
        _, messages = extended_star_gossip_cost(cube, radius=3)
        assert messages == 2 * 3 * cube.num_edges()

    def test_distributed_set_builder_cheaper_than_gossip(self):
        """The paper's closing claim: its distributed form beats Chiang & Tan's."""
        cube = Hypercube(9)
        syndrome = generate_syndrome(cube, frozenset())
        stats = DistributedSetBuilder(cube).run(syndrome, root=0)
        _, gossip_messages = extended_star_gossip_cost(cube, radius=3)
        assert stats.messages < gossip_messages
