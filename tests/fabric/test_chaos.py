"""Chaos campaign: SIGKILL a real worker subprocess mid-batch.

The coordinator (plus service and store) runs in this process; workers are
genuine ``python -m repro.cli worker`` subprocesses on localhost.  The
victim worker is configured with a large injected result delay so its
leases are reliably in flight when ``SIGKILL`` lands — an abrupt process
death the kernel announces only through the closed socket.  Every request
must still complete via requeue onto the survivor, results must be
bit-identical to the direct pipeline, and the store must hold exactly one
row per unique request (no losses, no double commits).  The campaign runs
once over a clean survivor link and once with the survivor itself behind a
drop/duplicate/delay channel.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.fabric import FabricCoordinator
from repro.parallel import spawn_seeds
from repro.service import DiagnosisRequest, DiagnosisService, ResultStore
from repro.service.executor import run_direct
from tests.conftest import TINY_PARAMS

#: The victim delays every result by (300-1) * 5ms ~= 1.5s: long enough
#: that SIGKILL beats the result onto the wire, short enough for CI.
VICTIM_FLAGS = ["--latency", "fixed:300", "--delay-unit-ms", "5"]

SURVIVOR_FLAGS = {
    "clean": [],
    "faulty": ["--loss-rate", "0.3", "--duplicate-rate", "0.3",
               "--latency", "fixed:3", "--delay-unit-ms", "5",
               "--fault-seed", "13"],
}


def _spawn_worker(port: int, worker_id: str, ready_file, extra_flags):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker",
         "--connect", f"127.0.0.1:{port}",
         "--id", worker_id,
         "--ready-file", str(ready_file),
         *extra_flags],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30
    while not ready_file.exists():
        if process.poll() is not None:
            raise AssertionError(
                f"worker {worker_id} exited with {process.returncode} "
                f"before joining"
            )
        if time.monotonic() > deadline:
            process.kill()
            raise AssertionError(f"worker {worker_id} never joined")
        time.sleep(0.05)
    payload = json.loads(ready_file.read_text())
    assert payload["worker"] == worker_id
    assert payload["pid"] == process.pid
    return process


def _requests():
    """Two topologies -> two independently leased batches in flight."""
    requests = []
    for family in ("hypercube", "star"):
        params = TINY_PARAMS[family]
        base = sum(ord(c) for c in family)
        requests.extend(
            DiagnosisRequest.seeded(family, params, seed=seed)
            for seed in spawn_seeds(base, 4)
        )
    return requests + requests[:2]  # repeats: the store dedups them


@pytest.mark.parametrize("survivor_channel", sorted(SURVIVOR_FLAGS))
def test_sigkill_mid_batch_completes_via_requeue(tmp_path, survivor_channel):
    requests = _requests()
    processes = []

    async def scenario():
        store = ResultStore()
        coordinator = FabricCoordinator(
            port=0, heartbeat_interval=0.2, lease_timeout=8.0,
            backoff_base=0.01, backoff_cap=0.1,
        )
        await coordinator.start()
        service = DiagnosisService(
            remote=coordinator, batch_delay=0.005, store=store
        )
        loop = asyncio.get_running_loop()
        try:
            victim = await loop.run_in_executor(None, _spawn_worker,
                coordinator.port, "victim", tmp_path / "victim.json",
                VICTIM_FLAGS)
            processes.append(victim)

            submission = asyncio.create_task(service.submit_many(requests))
            # Both leases in flight on the (only, slow) victim worker.
            deadline = loop.time() + 30
            while coordinator.stats()["outstanding_leases"] < 2:
                assert loop.time() < deadline, "leases never dispatched"
                await asyncio.sleep(0.02)

            survivor = await loop.run_in_executor(None, _spawn_worker,
                coordinator.port, "survivor", tmp_path / "survivor.json",
                SURVIVOR_FLAGS[survivor_channel])
            processes.append(survivor)

            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)

            responses = await asyncio.wait_for(submission, 120)

            # 1. Every request completed, bit-identical to direct.
            assert len(responses) == len(requests)
            for request, response in zip(requests, responses):
                direct = run_direct(request)
                assert (
                    response.faulty,
                    response.healthy_root,
                    response.lookups,
                    response.syndrome_digest,
                    response.error,
                ) == (
                    direct.faulty,
                    direct.healthy_root,
                    direct.lookups,
                    direct.syndrome_digest,
                    direct.error,
                ), f"chaos run diverged on {request.describe()}"

            # 2. Zero duplicates in the store: one row per unique request.
            unique = len({r.key for r in requests})
            assert len(store) == unique
            assert store.request_count() == unique

            # 3. The death was seen and recovered from, on the record.
            snapshot = service.stats()
            rows = snapshot["workers"]
            assert rows["victim"]["requeued"] >= 1
            assert rows["victim"]["evictions"] == 1
            assert rows["survivor"]["completed"] >= 2
            assert not coordinator.registry.is_live("victim")
            assert coordinator.stats()["outstanding_leases"] == 0
        finally:
            await service.close()
            await coordinator.close()

    try:
        asyncio.run(scenario())
    finally:
        for process in processes:
            if process.poll() is None:
                process.terminate()
                try:
                    process.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()
